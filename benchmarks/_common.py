"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it measures the
relevant costs on the instance families the paper's proofs use, fits the
growth class, and prints a paper-claimed vs measured table.  Absolute
numbers are not expected to match the paper (there are none to match —
the results are asymptotic); the *shape* is the reproduction target.

The sweeps themselves are declarative :class:`repro.exec.sweep.SweepSpec`
objects executed by the sweep orchestrator.  Two environment knobs:

* ``REPRO_BENCH_BACKEND`` — execution backend for every sweep
  (``serial`` default; ``process`` / ``process:N`` / ``batch``);
* ``REPRO_SWEEP_CACHE`` — directory for on-disk sweep result caching
  (off when unset, so benches always re-measure by default).
"""

from __future__ import annotations

import os
from typing import List, Sequence

import repro.suites as suites
from repro.exec.backends import get_backend
from repro.exec.sweep import (
    InstanceFamily,
    SweepResult,
    SweepSpec,
    cache_from_env,
    run_sweeps,
)
from repro.suites import DIST_CANDIDATES, VOL_CANDIDATES

BACKEND = get_backend(os.environ.get("REPRO_BENCH_BACKEND"))
CACHE = cache_from_env()
VERBOSE = bool(os.environ.get("REPRO_BENCH_PROGRESS"))


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def report_sweeps(specs: Sequence[SweepSpec]) -> List[SweepResult]:
    """Run a batch of sweeps on the configured backend and print rows."""
    progress = print if VERBOSE else None
    results = run_sweeps(specs, BACKEND, cache=CACHE, progress=progress)
    for result in results:
        print(result.format_row())
    return results


def run_suite(name: str) -> List[SweepResult]:
    """Run a named :mod:`repro.suites` suite on the configured backend.

    The same suite (same specs, families, seeds) is what
    ``repro sweep <name>`` executes, so the table scripts and the CLI
    share one code path.
    """
    return suites.run_suite(
        name,
        backend=BACKEND,
        cache=CACHE,
        progress=print if VERBOSE else None,
    )


def once(benchmark, fn):
    """Run a measurement exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


__all__ = [
    "BACKEND",
    "CACHE",
    "DIST_CANDIDATES",
    "VOL_CANDIDATES",
    "InstanceFamily",
    "SweepSpec",
    "banner",
    "once",
    "report_sweeps",
    "run_suite",
]
