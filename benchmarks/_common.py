"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it measures the
relevant costs on the instance families the paper's proofs use, fits the
growth class, and prints a paper-claimed vs measured table.  Absolute
numbers are not expected to match the paper (there are none to match —
the results are asymptotic); the *shape* is the reproduction target.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional, Sequence

from repro.analysis.complexity_fit import (
    FitResult,
    SweepMeasurement,
    fit_growth,
    format_sweep_row,
)
from repro.model.runner import run_algorithm


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def report_sweep(
    label: str,
    claimed: str,
    ns: Sequence[int],
    costs: Sequence[float],
    candidates: Optional[Sequence[str]] = None,
) -> SweepMeasurement:
    sweep = SweepMeasurement(
        label=label, ns=list(ns), costs=list(costs), claimed=claimed
    )
    fit = sweep.fitted(candidates)
    print(format_sweep_row(sweep, fit))
    return sweep


def measure_cost(
    instance,
    algorithm,
    metric: str,
    nodes: Optional[Iterable[int]] = None,
    seed: int = 0,
    max_volume: Optional[int] = None,
) -> float:
    """Worst per-node cost (max over started executions) of one metric."""
    result = run_algorithm(
        instance, algorithm, seed=seed, nodes=nodes, max_volume=max_volume
    )
    if metric == "distance":
        return result.max_distance
    if metric == "volume":
        return result.max_volume
    if metric == "queries":
        return result.max_queries
    raise ValueError(f"unknown metric {metric!r}")


def once(benchmark, fn):
    """Run a measurement exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
