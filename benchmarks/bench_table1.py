"""E1 — Table 1: the four complexities of all five constructions.

Each construction's four sweeps (family, algorithms, seeds, start nodes,
candidate growth classes) live as a *named suite* in
:mod:`repro.suites`, built from the component registry; this script is a
thin wrapper that executes the suites under pytest-benchmark timing.
``repro sweep table1/<name>`` runs the identical specs from the command
line.  Set ``REPRO_BENCH_BACKEND=process:4`` to fan each sweep's start
nodes out over a worker pool.

D-VOL rows: the Θ̃(n) lower bounds are adversarial (Props 3.13 / 4.9 /
5.20 — see bench_prop313/49/520); the suites report the matching O(n)
upper bound (full gather) so the fitted class is the claimed one.
"""

from _common import once, run_suite


def test_table1_leaf_coloring(benchmark):
    once(benchmark, lambda: run_suite("table1/leaf-coloring"))


def test_table1_balanced_tree(benchmark):
    once(benchmark, lambda: run_suite("table1/balanced-tree"))


def test_table1_hierarchical_thc(benchmark):
    once(benchmark, lambda: run_suite("table1/hierarchical-thc"))


def test_table1_hybrid_thc(benchmark):
    once(benchmark, lambda: run_suite("table1/hybrid-thc"))


def test_table1_hh_thc(benchmark):
    once(benchmark, lambda: run_suite("table1/hh-thc"))
