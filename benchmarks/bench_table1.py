"""E1 — Table 1: the four complexities of all five constructions.

For each problem we declare one :class:`InstanceFamily` over the hard
sizes its proofs use plus a :class:`SweepSpec` per Table-1 row, and hand
the batch to the sweep orchestrator (which fits the growth class and
prints claimed vs measured).  Set ``REPRO_BENCH_BACKEND=process:4`` to
fan each sweep's start nodes out over a worker pool.

D-VOL rows: the Θ̃(n) lower bounds are adversarial (Props 3.13 / 4.9 /
5.20 — see bench_prop313/49/520); here we report the matching O(n)
upper bound (full gather) so the fitted class is the claimed one.
"""

import random

from _common import (
    DIST_CANDIDATES,
    VOL_CANDIDATES,
    InstanceFamily,
    SweepSpec,
    banner,
    once,
    report_sweeps,
)

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.algorithms.hh_algs import HHDistanceSolver, HHFullGather, HHWaypointSolver
from repro.algorithms.hierarchical_algs import (
    HierarchicalFullGather,
    RecursiveHTHC,
    WaypointHTHC,
)
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridFullGather,
    HybridWaypointSolver,
)
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
)


def root_only(instance, param):
    return [instance.meta["root"]]


def test_table1_leaf_coloring(benchmark):
    family = InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        [4, 5, 6, 7, 8],
    )

    def run():
        banner("Table 1 — LeafColoring (§3): claims log n, log n, log n, n")
        report_sweeps([
            SweepSpec("LeafColoring R-DIST", "Θ(log n)", family, "distance",
                      LeafColoringDistanceSolver, candidates=DIST_CANDIDATES),
            SweepSpec("LeafColoring D-DIST", "Θ(log n)", family, "distance",
                      LeafColoringDistanceSolver, candidates=DIST_CANDIDATES),
            SweepSpec("LeafColoring R-VOL", "Θ(log n)", family, "volume",
                      RWtoLeaf, seed=7, candidates=VOL_CANDIDATES),
            SweepSpec("LeafColoring D-VOL", "Θ(n)", family, "volume",
                      LeafColoringFullGather, nodes=root_only,
                      candidates=VOL_CANDIDATES),
        ])

    once(benchmark, run)


def test_table1_balanced_tree(benchmark):
    family = InstanceFamily(
        "balanced-tree",
        lambda d: balanced_tree_instance(d, rng=random.Random(d)),
        [3, 4, 5, 6, 7, 8],
    )

    def run():
        banner("Table 1 — BalancedTree (§4): claims log n, log n, n, n")
        report_sweeps([
            SweepSpec("BalancedTree R-DIST", "Θ(log n)", family, "distance",
                      BalancedTreeDistanceSolver, candidates=DIST_CANDIDATES),
            SweepSpec("BalancedTree D-DIST", "Θ(log n)", family, "distance",
                      BalancedTreeDistanceSolver, candidates=DIST_CANDIDATES),
            SweepSpec("BalancedTree R-VOL", "Θ(n)", family, "volume",
                      BalancedTreeFullGather, nodes=root_only,
                      candidates=VOL_CANDIDATES),
            SweepSpec("BalancedTree D-VOL", "Θ(n)", family, "volume",
                      BalancedTreeFullGather, nodes=root_only,
                      candidates=VOL_CANDIDATES),
        ])

    once(benchmark, run)


def test_table1_hierarchical_thc(benchmark):
    family = InstanceFamily(
        "hierarchical-thc-2",
        lambda m: hierarchical_thc_instance(2, m, rng=random.Random(m)),
        [4, 8, 12, 16, 24],
    )

    def backbone_probes(instance, m):
        # Top backbone ends + the last node of the instance.
        return [1, m // 2 + 1, m, instance.graph.num_nodes]

    def run():
        banner(
            "Table 1 — Hierarchical-THC(2) (§5): claims n^1/2, n^1/2, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        report_sweeps([
            SweepSpec("Hierarchical-THC(2) R-DIST", "Θ(n^{1/2})", family,
                      "distance", lambda: RecursiveHTHC(2),
                      nodes=backbone_probes, candidates=DIST_CANDIDATES),
            SweepSpec("Hierarchical-THC(2) D-DIST", "Θ(n^{1/2})", family,
                      "distance", lambda: RecursiveHTHC(2),
                      nodes=backbone_probes, candidates=DIST_CANDIDATES),
            SweepSpec("Hierarchical-THC(2) R-VOL", "Θ̃(n^{1/2})", family,
                      "volume", lambda: WaypointHTHC(2), seed=3,
                      nodes=backbone_probes, candidates=VOL_CANDIDATES),
            SweepSpec("Hierarchical-THC(2) D-VOL", "Θ̃(n)", family,
                      "volume", lambda: HierarchicalFullGather(2),
                      nodes=lambda inst, m: [1], candidates=VOL_CANDIDATES),
        ])
        print(
            "  (D-VOL lower bound is adversarial: see bench_prop520; the "
            "row above is the matching O(n) upper bound)"
        )

    once(benchmark, run)


def test_table1_hybrid_thc(benchmark):
    family = InstanceFamily(
        "hybrid-thc-2",
        lambda shape: hybrid_thc_instance(
            2, shape[0], shape[1], rng=random.Random(shape[0])
        ),
        [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7)],
    )

    def waypoint_probes(instance, shape):
        return [instance.meta["root"]] + instance.meta["bt_roots"][:2]

    def run():
        banner(
            "Table 1 — Hybrid-THC(2) (§6): claims log n, log n, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        report_sweeps([
            SweepSpec("Hybrid-THC(2) R-DIST", "Θ(log n)", family, "distance",
                      lambda: HybridDistanceSolver(2),
                      candidates=DIST_CANDIDATES),
            SweepSpec("Hybrid-THC(2) D-DIST", "Θ(log n)", family, "distance",
                      lambda: HybridDistanceSolver(2),
                      candidates=DIST_CANDIDATES),
            SweepSpec("Hybrid-THC(2) R-VOL", "Θ̃(n^{1/2})", family, "volume",
                      lambda: HybridWaypointSolver(2), seed=5,
                      nodes=waypoint_probes, candidates=VOL_CANDIDATES),
            SweepSpec("Hybrid-THC(2) D-VOL", "Θ̃(n)", family, "volume",
                      lambda: HybridFullGather(2), nodes=root_only,
                      candidates=VOL_CANDIDATES),
        ])

    once(benchmark, run)


def test_table1_hh_thc(benchmark):
    # Both populations scaled to comparable sizes so the combined-n
    # exponents are meaningful: hierarchical part m0 ≈ n^{1/3},
    # hybrid BalancedTree components ≈ n^{1/2}.
    family = InstanceFamily(
        "hh-thc-2-3",
        lambda shape: hh_thc_instance(
            2, 3, shape[0], shape[1], shape[2], rng=random.Random(shape[0])
        ),
        [(5, 4, 3), (6, 8, 3), (8, 8, 4), (10, 16, 4), (12, 16, 5)],
    )

    def hh_probes(instance, shape):
        from repro.graphs.tree_structure import (
            InstanceTopology,
            right_child_node,
        )

        topo = InstanceTopology(instance)
        hybrid_root = instance.meta["hybrid_root"]
        # A BalancedTree component root: its own answer requires the
        # Θ(√n)-sized component gather, the R-VOL-dominant cost.
        bt_probe = right_child_node(topo, hybrid_root)
        return [instance.meta["hierarchical_root"], hybrid_root, bt_probe]

    def run():
        banner(
            "Table 1 — HH-THC(2,3) (§6.1): claims n^1/3, n^1/3, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        report_sweeps([
            SweepSpec("HH-THC(2,3) R-DIST", "Θ(n^{1/3})", family, "distance",
                      lambda: HHDistanceSolver(2, 3), nodes=hh_probes,
                      candidates=DIST_CANDIDATES),
            SweepSpec("HH-THC(2,3) D-DIST", "Θ(n^{1/3})", family, "distance",
                      lambda: HHDistanceSolver(2, 3), nodes=hh_probes,
                      candidates=DIST_CANDIDATES),
            SweepSpec("HH-THC(2,3) R-VOL", "Θ̃(n^{1/2})", family, "volume",
                      lambda: HHWaypointSolver(2, 3), seed=2, nodes=hh_probes,
                      candidates=VOL_CANDIDATES),
            SweepSpec("HH-THC(2,3) D-VOL", "Θ̃(n)", family, "volume",
                      lambda: HHFullGather(2, 3), nodes=hh_probes,
                      candidates=VOL_CANDIDATES),
        ])

    once(benchmark, run)
