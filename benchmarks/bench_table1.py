"""E1 — Table 1: the four complexities of all five constructions.

For each problem we sweep instance sizes over the hard families its
proofs use, measure the worst per-node cost of the paper's own algorithm
for each row, fit the growth class, and print claimed vs measured.

D-VOL rows: the Θ̃(n) lower bounds are adversarial (Props 3.13 / 4.9 /
5.20 — see bench_prop313/49/520); here we report the matching O(n)
upper bound (full gather) so the fitted class is the claimed one.
"""

import random

from _common import banner, measure_cost, once, report_sweep

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.algorithms.hh_algs import HHDistanceSolver, HHFullGather, HHWaypointSolver
from repro.algorithms.hierarchical_algs import (
    HierarchicalFullGather,
    RecursiveHTHC,
    WaypointHTHC,
)
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridFullGather,
    HybridWaypointSolver,
)
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
)

DIST_CANDIDATES = ["log log n", "log n", "n^{1/3}", "n^{1/2}", "n"]
VOL_CANDIDATES = [
    "log n",
    "log^2 n",
    "n^{1/3}",
    "n^{1/2}",
    "n^{1/2} log n",
    "n",
]


def test_table1_leaf_coloring(benchmark):
    def run():
        banner("Table 1 — LeafColoring (§3): claims log n, log n, log n, n")
        depths = [4, 5, 6, 7, 8]
        insts = [
            leaf_coloring_instance(d, rng=random.Random(d)) for d in depths
        ]
        ns = [i.graph.num_nodes for i in insts]
        d_dist = [
            measure_cost(i, LeafColoringDistanceSolver(), "distance")
            for i in insts
        ]
        r_vol = [
            measure_cost(i, RWtoLeaf(), "volume", seed=7) for i in insts
        ]
        d_vol = [
            measure_cost(
                i, LeafColoringFullGather(), "volume", nodes=[i.meta["root"]]
            )
            for i in insts
        ]
        report_sweep("LeafColoring R-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("LeafColoring D-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("LeafColoring R-VOL", "Θ(log n)", ns, r_vol, VOL_CANDIDATES)
        report_sweep("LeafColoring D-VOL", "Θ(n)", ns, d_vol, VOL_CANDIDATES)

    once(benchmark, run)


def test_table1_balanced_tree(benchmark):
    def run():
        banner("Table 1 — BalancedTree (§4): claims log n, log n, n, n")
        depths = [3, 4, 5, 6, 7, 8]
        insts = [
            balanced_tree_instance(d, rng=random.Random(d)) for d in depths
        ]
        ns = [i.graph.num_nodes for i in insts]
        d_dist = [
            measure_cost(i, BalancedTreeDistanceSolver(), "distance")
            for i in insts
        ]
        vol = [
            measure_cost(
                i, BalancedTreeFullGather(), "volume", nodes=[i.meta["root"]]
            )
            for i in insts
        ]
        report_sweep("BalancedTree R-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("BalancedTree D-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("BalancedTree R-VOL", "Θ(n)", ns, vol, VOL_CANDIDATES)
        report_sweep("BalancedTree D-VOL", "Θ(n)", ns, vol, VOL_CANDIDATES)

    once(benchmark, run)


def test_table1_hierarchical_thc(benchmark):
    def run():
        banner(
            "Table 1 — Hierarchical-THC(2) (§5): claims n^1/2, n^1/2, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        ms = [4, 8, 12, 16, 24]
        insts = [
            hierarchical_thc_instance(2, m, rng=random.Random(m)) for m in ms
        ]
        ns = [i.graph.num_nodes for i in insts]
        probes = [
            [1, m // 2 + 1, m] + [ns[idx]]  # top backbone ends + last node
            for idx, m in enumerate(ms)
        ]
        d_dist = [
            measure_cost(i, RecursiveHTHC(2), "distance", nodes=p)
            for i, p in zip(insts, probes)
        ]
        r_vol = [
            measure_cost(i, WaypointHTHC(2), "volume", nodes=p, seed=3)
            for i, p in zip(insts, probes)
        ]
        d_vol = [
            measure_cost(i, HierarchicalFullGather(2), "volume", nodes=[1])
            for i in insts
        ]
        report_sweep(
            "Hierarchical-THC(2) R-DIST", "Θ(n^{1/2})", ns, d_dist, DIST_CANDIDATES
        )
        report_sweep(
            "Hierarchical-THC(2) D-DIST", "Θ(n^{1/2})", ns, d_dist, DIST_CANDIDATES
        )
        report_sweep(
            "Hierarchical-THC(2) R-VOL", "Θ̃(n^{1/2})", ns, r_vol, VOL_CANDIDATES
        )
        report_sweep(
            "Hierarchical-THC(2) D-VOL", "Θ̃(n)", ns, d_vol, VOL_CANDIDATES
        )
        print(
            "  (D-VOL lower bound is adversarial: see bench_prop520; the "
            "row above is the matching O(n) upper bound)"
        )

    once(benchmark, run)


def test_table1_hybrid_thc(benchmark):
    def run():
        banner(
            "Table 1 — Hybrid-THC(2) (§6): claims log n, log n, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        shapes = [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7)]
        insts = [
            hybrid_thc_instance(2, m, d, rng=random.Random(m))
            for m, d in shapes
        ]
        ns = [i.graph.num_nodes for i in insts]
        d_dist = [
            measure_cost(i, HybridDistanceSolver(2), "distance")
            for i in insts
        ]
        r_vol = []
        for inst in insts:
            probes = [inst.meta["root"]] + inst.meta["bt_roots"][:2]
            r_vol.append(
                measure_cost(
                    inst, HybridWaypointSolver(2), "volume", nodes=probes,
                    seed=5,
                )
            )
        d_vol = [
            measure_cost(
                i, HybridFullGather(2), "volume", nodes=[i.meta["root"]]
            )
            for i in insts
        ]
        report_sweep("Hybrid-THC(2) R-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("Hybrid-THC(2) D-DIST", "Θ(log n)", ns, d_dist, DIST_CANDIDATES)
        report_sweep("Hybrid-THC(2) R-VOL", "Θ̃(n^{1/2})", ns, r_vol, VOL_CANDIDATES)
        report_sweep("Hybrid-THC(2) D-VOL", "Θ̃(n)", ns, d_vol, VOL_CANDIDATES)

    once(benchmark, run)


def test_table1_hh_thc(benchmark):
    def run():
        banner(
            "Table 1 — HH-THC(2,3) (§6.1): claims n^1/3, n^1/3, "
            "Θ̃(n^1/2), Θ̃(n)"
        )
        # Both populations scaled to comparable sizes so the combined-n
        # exponents are meaningful: hierarchical part m0 ≈ n^{1/3},
        # hybrid BalancedTree components ≈ n^{1/2}.
        shapes = [(5, 4, 3), (6, 8, 3), (8, 8, 4), (10, 16, 4), (12, 16, 5)]
        insts = [
            hh_thc_instance(2, 3, m0, m2, d, rng=random.Random(m0))
            for m0, m2, d in shapes
        ]
        ns = [i.graph.num_nodes for i in insts]
        d_dist = []
        r_vol = []
        d_vol = []
        for inst in insts:
            from repro.graphs.tree_structure import (
                InstanceTopology,
                right_child_node,
            )

            topo = InstanceTopology(inst)
            hybrid_root = inst.meta["hybrid_root"]
            # A BalancedTree component root: its own answer requires the
            # Θ(√n)-sized component gather, the R-VOL-dominant cost.
            bt_probe = right_child_node(topo, hybrid_root)
            probes = [inst.meta["hierarchical_root"], hybrid_root, bt_probe]
            d_dist.append(
                measure_cost(inst, HHDistanceSolver(2, 3), "distance",
                             nodes=probes)
            )
            r_vol.append(
                measure_cost(inst, HHWaypointSolver(2, 3), "volume",
                             nodes=probes, seed=2)
            )
            d_vol.append(
                measure_cost(inst, HHFullGather(2, 3), "volume", nodes=probes)
            )
        report_sweep("HH-THC(2,3) R-DIST", "Θ(n^{1/3})", ns, d_dist, DIST_CANDIDATES)
        report_sweep("HH-THC(2,3) D-DIST", "Θ(n^{1/3})", ns, d_dist, DIST_CANDIDATES)
        report_sweep("HH-THC(2,3) R-VOL", "Θ̃(n^{1/2})", ns, r_vol, VOL_CANDIDATES)
        report_sweep("HH-THC(2,3) D-VOL", "Θ̃(n)", ns, d_vol, VOL_CANDIDATES)

    once(benchmark, run)
