"""E5/E6/E7 — Lemma 2.5 sandwich, Prop 3.12, and the three lower bounds.

* Lemma 2.5: DIST ≤ VOL ≤ Δ^DIST + 1 on every execution.
* Prop 3.12: success probability ≈ 1/2 below the hard-instance depth.
* Prop 3.13: the adversary defeats (or budget-starves) every
  deterministic LeafColoring algorithm under n/3 queries.
* Prop 4.9: two-party disjointness bits grow linearly in N.
* Prop 5.20: the phased adversary defeats deterministic H-THC solvers.

The sweep-shaped experiments (Prop 4.9) run through the sweep
orchestrator with custom ``measure`` callables sharing one memoized
simulation per instance size; the adversarial duels are inherently
sequential games and keep their explicit loops.
"""

import random

from _common import (
    BACKEND,
    InstanceFamily,
    SweepSpec,
    banner,
    once,
    report_sweeps,
)

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    RWtoLeaf,
)
from repro.algorithms.hierarchical_algs import RecursiveHTHC
from repro.graphs.generators import (
    balanced_tree_instance,
    disjointness_embedding,
    leaf_coloring_instance,
)
from repro.adversary.disjointness import simulate_two_party
from repro.adversary.hierarchical import duel_hierarchical
from repro.adversary.leaf_coloring import duel_leaf_coloring
from repro.lower_bounds.yao_experiments import (
    HorizonLimitedLeafColoring,
    horizon_sweep,
)
from repro.model.runner import run_algorithm


def test_lemma25_sandwich(benchmark):
    def run():
        banner("Lemma 2.5 — DIST ≤ VOL ≤ Δ^DIST + 1 on every execution")
        cases = [
            (leaf_coloring_instance(6, rng=random.Random(0)),
             LeafColoringDistanceSolver(), 3),
            (leaf_coloring_instance(6, rng=random.Random(1)), RWtoLeaf(), 3),
            (balanced_tree_instance(4, rng=random.Random(2)),
             BalancedTreeDistanceSolver(), 5),
        ]
        for inst, algo, delta in cases:
            result = run_algorithm(inst, algo, seed=9, backend=BACKEND)
            violations = 0
            for profile in result.profiles.values():
                if not (
                    profile.distance
                    <= profile.volume
                    <= delta**max(1, profile.distance) + 1
                ):
                    violations += 1
            print(
                f"{algo.name:<34} n={inst.graph.num_nodes:<5} "
                f"max DIST={result.max_distance:<4} "
                f"max VOL={result.max_volume:<6} sandwich violations: "
                f"{violations}"
            )
            assert violations == 0

    once(benchmark, run)


def test_prop312_distance_lower_bound(benchmark):
    def run():
        banner(
            "Prop 3.12 — hard distribution: success ≈ 1/2 below depth, "
            "1 at depth"
        )
        depth = 7
        points = horizon_sweep(
            depth=depth, horizons=[1, 3, 5, 7], trials=60, base_seed=4,
            backend=BACKEND,
        )
        for point in points:
            verdict = (
                "≈ 1/2 (blind)" if point.horizon < depth else "1 (sees leaves)"
            )
            print(
                f"horizon {point.horizon}/{depth}: measured success "
                f"{point.success_probability:.2f}   paper: {verdict}"
            )

    once(benchmark, run)


def test_prop313_adversary(benchmark):
    def run():
        banner("Prop 3.13 — adversary vs deterministic algorithms, n sweep")
        for n in (60, 120, 240, 480):
            for algo_factory, label in [
                (lambda: HorizonLimitedLeafColoring(3), "horizon-3"),
                (lambda: LeafColoringDistanceSolver(), "prop-3.9 solver"),
            ]:
                outcome = duel_leaf_coloring(algo_factory(), n=n)
                fate = (
                    "DEFEATED"
                    if outcome.defeated
                    else ("needs > n/3 queries" if outcome.exceeded_budget
                          else "survived?!")
                )
                print(
                    f"n={n:<5} {label:<18} queries={outcome.queries_used:<5} "
                    f"→ {fate}"
                )
                assert outcome.defeated or outcome.exceeded_budget

    once(benchmark, run)


def test_prop49_disjointness_bits(benchmark):
    rnd = random.Random(0)

    def embedding(log_n):
        n = 2**log_n
        a = [rnd.randint(0, 1) for _ in range(n)]
        b = [rnd.randint(0, 1) for _ in range(n)]
        return disjointness_embedding(a, b)

    family = InstanceFamily("disjointness", embedding, [3, 4, 5, 6, 7])

    # One simulation per size, shared by the bits and the queries sweep.
    simulations = {}

    def simulate(instance, log_n):
        if log_n not in simulations:
            a = instance.meta["a"]
            b = instance.meta["b"]
            run_ = simulate_two_party(BalancedTreeFullGather(), a, b)
            assert run_.correct
            simulations[log_n] = run_
        return simulations[log_n]

    def run():
        banner(
            "Prop 4.9 — two-party simulation: bits (≥ queries·B lower "
            "bounds) grow linearly in N"
        )
        bits, queries = report_sweeps([
            SweepSpec(
                "disjointness bits", "Θ(N)", family,
                measure=lambda inst, p: simulate(inst, p).bits_exchanged,
                candidates=["log n", "n"],
            ),
            SweepSpec(
                "solver queries", "Ω(N)", family,
                measure=lambda inst, p: simulate(inst, p).queries,
                candidates=["log n", "n"],
            ),
        ])
        print("  Theorem 2.9: queries ≥ bits/2 on every run: "
              + str(all(q >= b / 2
                        for q, b in zip(queries.costs, bits.costs))))

    once(benchmark, run)


def test_prop520_adversary(benchmark):
    def run():
        banner("Prop 5.20 — phased adversary vs RecursiveHTHC(k)")
        for k in (1, 2, 3):
            for budget in (30, 60):
                outcome = duel_hierarchical(
                    RecursiveHTHC(k), k=k, volume_budget=budget
                )
                n = outcome.instance.graph.num_nodes
                print(
                    f"k={k} budget={budget:<4} simulations="
                    f"{outcome.simulations:<3} final n={n:<6} "
                    f"→ {'DEFEATED' if outcome.defeated else 'survived?!'}"
                )
                assert outcome.defeated

    once(benchmark, run)
