"""Hot-path microbenchmarks: the compiled instance fast path vs reference.

The probe engine's inner loop is multiplied by ``n x queries`` on every
sweep (the runner starts the algorithm from *all* n nodes), so this bench
times exactly the three layers PR 3 compiled:

* ``oracle_queries`` — raw oracle throughput: ``resolve`` + ``node_info``
  over every (node, port) of an instance, :class:`StaticOracle` (dict-of-
  dict walk, per-call ``NodeInfo`` rebuild) vs :class:`CompiledOracle`
  (precomputed tables over a frozen CSR graph);
* ``full_gather`` — a full-gather ``run_algorithm`` from every node of a
  line and a complete-tree instance (n >= 512), compiled path vs the
  uncompiled reference path — the acceptance gate expects >= 3x here;
* ``dist_maintenance`` — an exploration that polls ``distance_cost()``
  after every query, incremental labels vs BFS-per-invalidation.

``--quick`` (the CI perf-smoke mode) runs reduced repeats and writes the
timing artifact; the process exits non-zero if the compiled path ever
falls behind the reference path on the ``oracle_queries`` throughput
microbench, which is the regression CI gates on.

Outputs are cross-checked compiled-vs-reference inside the bench, on top
of the property suite in ``tests/perf/test_compiled_equivalence.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from _common import banner

from repro.cli.bench import git_sha
from repro.exec.backends import SerialBackend
from repro.graphs.builders import complete_binary_tree, path_graph
from repro.graphs.labelings import Instance, Labeling
from repro.model.oracle import CompiledOracle, StaticOracle
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.model.runner import run_algorithm
from repro.model.views import gather_ball

SCHEMA_NAME = "repro-bench-hotpath"
SCHEMA_VERSION = 1


def line_instance(n: int) -> Instance:
    """An unlabeled path on ``n`` nodes (ids 1..n, ports 1/2)."""
    return Instance(
        graph=path_graph(n), labeling=Labeling(), name=f"line-{n}"
    )


def tree_instance(depth: int) -> Instance:
    """An unlabeled complete binary tree of the given depth."""
    topo = complete_binary_tree(depth)
    return Instance(
        graph=topo.graph,
        labeling=Labeling(),
        name=f"tree-{topo.graph.num_nodes}",
    )


class PureGatherAlgorithm(ProbeAlgorithm):
    """Gather the whole component and summarize it: the pure hot path.

    Unlike :class:`~repro.algorithms.generic.FullGatherAlgorithm` there
    is no instance reconstruction or reference solve afterwards, so the
    measured time is the engine + oracle loop and nothing else.
    """

    name = "pure-gather"

    def run(self, view: ProbeView):
        ball = gather_ball(view, max(1, view.n))
        return (len(ball.distance), max(ball.distance.values()))


def best_of(repeats: int, fn: Callable[[], float]) -> float:
    """The minimum wall time over ``repeats`` runs (noise-robust)."""
    return min(fn() for _ in range(repeats))


def timed(fn: Callable[[], object]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# 1. oracle query throughput
# ----------------------------------------------------------------------
def bench_oracle_queries(repeats: int, rounds: int) -> Dict[str, object]:
    instance = tree_instance(9)  # n = 1023
    graph = instance.graph
    pairs = [
        (node, port)
        for node in graph.nodes()
        for port in range(1, graph.num_ports(node) + 1)
    ]

    def sweep(oracle) -> None:
        resolve = oracle.resolve
        node_info = oracle.node_info
        for _ in range(rounds):
            for node, port in pairs:
                endpoint = resolve(node, port)
                if endpoint is not None:
                    node_info(endpoint)

    static = StaticOracle(instance)
    compiled = CompiledOracle(instance)
    # Cross-check before timing: same answers on every (node, port).
    for node, port in pairs:
        assert static.resolve(node, port) == compiled.resolve(node, port)
        assert static.node_info(node) == compiled.node_info(node)
    reference_s = best_of(repeats, lambda: timed(lambda: sweep(static)))
    compiled_s = best_of(repeats, lambda: timed(lambda: sweep(compiled)))
    queries = len(pairs) * rounds
    return {
        "name": "oracle_queries",
        "params": {"n": graph.num_nodes, "queries": queries},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "reference_qps": queries / reference_s,
        "compiled_qps": queries / compiled_s,
        "speedup": reference_s / compiled_s,
    }


# ----------------------------------------------------------------------
# 2. full-gather whole-instance run
# ----------------------------------------------------------------------
def bench_full_gather(instance: Instance, repeats: int) -> Dict[str, object]:
    algorithm = PureGatherAlgorithm()
    reference_backend = SerialBackend(compiled=False)
    compiled_backend = SerialBackend(compiled=True)
    ref_run = run_algorithm(instance, algorithm, backend=reference_backend)
    fast_run = run_algorithm(instance, algorithm, backend=compiled_backend)
    assert fast_run.outputs == ref_run.outputs
    assert fast_run.profiles == ref_run.profiles
    n = instance.graph.num_nodes
    reference_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(
                instance, algorithm, backend=reference_backend
            )
        ),
    )
    compiled_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(
                instance, algorithm, backend=compiled_backend
            )
        ),
    )
    return {
        "name": f"full_gather[{instance.name}]",
        "params": {"n": n, "executions": n},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "reference_eps": n / reference_s,
        "compiled_eps": n / compiled_s,
        "speedup": reference_s / compiled_s,
    }


# ----------------------------------------------------------------------
# 3. DIST maintenance under interleaved cost reads
# ----------------------------------------------------------------------
def _null_context() -> RandomnessContext:
    return RandomnessContext(None, RandomnessModel.DETERMINISTIC, 0)


def bench_dist_maintenance(n: int, repeats: int) -> Dict[str, object]:
    instance = line_instance(n)
    compiled = CompiledOracle(instance)
    start = next(iter(instance.graph.nodes()))

    def explore(distance_mode: str) -> int:
        view = ProbeView(
            compiled, start, _null_context(), distance_mode=distance_mode
        )
        total = 0
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for port in view.info(u).ports:
                    endpoint = view.query(u, port)
                    # The poll after every query is the workload: it
                    # forces the reference path to re-BFS per probe.
                    total += view.distance_cost()
                    if endpoint is not None and endpoint.node_id not in seen:
                        seen.add(endpoint.node_id)
                        nxt.append(endpoint.node_id)
            frontier = nxt
        return total

    def run(distance_mode: str) -> int:
        seen.clear()
        seen.add(start)
        return explore(distance_mode)

    seen: set = {start}
    assert run("incremental") == run("reference")
    reference_s = best_of(repeats, lambda: timed(lambda: run("reference")))
    compiled_s = best_of(repeats, lambda: timed(lambda: run("incremental")))
    return {
        "name": "dist_maintenance",
        "params": {"n": n, "polls_per_query": 1},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "speedup": reference_s / compiled_s,
    }


# ----------------------------------------------------------------------
def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="reduced repeats/sizes (what CI's perf-smoke job runs)",
    )
    mode.add_argument(
        "--full", action="store_true", help="larger sizes, more repeats"
    )
    parser.add_argument("--out", default="bench_hotpath.json")
    args = parser.parse_args(argv)
    full = args.full
    repeats = 5 if full else 3

    banner("Hot-path microbenchmarks: compiled fast path vs reference")
    benches: List[Dict[str, object]] = []

    benches.append(bench_oracle_queries(repeats, rounds=20 if full else 5))
    gather_instances = [line_instance(512), tree_instance(9)]
    if full:
        gather_instances.append(line_instance(2048))
    for instance in gather_instances:
        benches.append(bench_full_gather(instance, repeats))
    benches.append(bench_dist_maintenance(1024 if full else 384, repeats))

    for bench in benches:
        print(
            f"{bench['name']:<28} reference {bench['reference_s']:.4f}s  "
            f"compiled {bench['compiled_s']:.4f}s  "
            f"speedup {bench['speedup']:.2f}x"
        )

    oracle_bench = benches[0]
    gather_speedups = {
        b["name"]: b["speedup"]
        for b in benches
        if b["name"].startswith("full_gather")
    }
    gate_ok = oracle_bench["speedup"] >= 1.0
    artifact = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "full" if full else "quick",
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "repeats": repeats,
        "benches": benches,
        "gate": {
            "query_throughput_speedup": oracle_bench["speedup"],
            "query_throughput_ok": gate_ok,
            "full_gather_speedups": gather_speedups,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=1)
        handle.write("\n")
    print(f"\nartifact -> {args.out}")
    if not gate_ok:
        print(
            "FAIL: compiled oracle fell behind the reference oracle on "
            f"query throughput ({oracle_bench['speedup']:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
