"""Hot-path microbenchmarks: the compiled instance fast path vs reference.

The probe engine's inner loop is multiplied by ``n x queries`` on every
sweep (the runner starts the algorithm from *all* n nodes), so this bench
times the compiled layers PR 3 introduced and the PR 6 execution paths
stacked on top of them:

* ``oracle_queries`` — raw oracle throughput: ``resolve`` + ``node_info``
  over every (node, port) of an instance, :class:`StaticOracle` (dict-of-
  dict walk, per-call ``NodeInfo`` rebuild) vs :class:`CompiledOracle`
  (precomputed tables over a frozen CSR graph);
* ``full_gather`` — a full-gather ``run_algorithm`` from every node of a
  line and a complete-tree instance (n >= 512): uncompiled reference vs
  compiled scalar vs the batched flat-array kernel
  (:mod:`repro.model.batched`);
* ``dist_maintenance`` — an exploration that polls ``distance_cost()``
  after every query, incremental labels vs BFS-per-invalidation;
* ``parallel_scaling`` — the batched full-gather run fanned out over
  :class:`~repro.exec.backends.ProcessPoolBackend` at 1/2/4 workers with
  the shared-memory and pickle transports, including the one-off
  publish+attach overhead the shared-memory path pays;
* ``trial_batch`` — a fixed-instance Monte-Carlo trial batch on the
  serial backend vs both process-pool transports;
* ``fault_recovery`` — the cost of the PR 8 supervision layer: the same
  pooled workload with supervision off vs on (gated: < 5% overhead when
  nothing fails) and the wall-time of recovering from one injected
  worker kill, cross-checked bitwise against the serial run.

Speedup conventions: every row's ``speedup`` is measured against the
*compiled scalar serial* run of the same workload (the pre-PR-6 state of
the repo), so the gated numbers capture what this PR's batched kernel +
zero-copy fan-out actually buy; ``parallel_scaling`` rows additionally
report ``speedup_vs_serial_batched`` (pure dispatch efficiency, which on
a single-core CI box hovers near or below 1.0 by construction).

``--quick`` (the CI perf-smoke mode) runs reduced repeats and writes the
timing artifact; the process exits non-zero if the compiled path falls
behind the reference oracle on query throughput, if the 2-worker
shared-memory row drops below 1.3x over compiled scalar serial, or if
any shared-memory segment leaks (``/dev/shm`` is scanned before/after).

Outputs are cross-checked across engines inside the bench, on top of the
property suites in ``tests/perf`` / ``tests/model`` / ``tests/exec``.
``REPRO_BENCH_BACKEND`` (the sweep benches' env knob) is deliberately
ignored here: every section pins its own backends, because the
backend-vs-backend comparison *is* the measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from _common import banner

from repro.cli.bench import git_sha
from repro.exec import shm
from repro.exec.backends import (
    FixedInstanceFactory,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.graphs.builders import complete_binary_tree, path_graph
from repro.graphs.labelings import Instance, Labeling
from repro.model.batched import gather_kernel
from repro.model.oracle import CompiledOracle, StaticOracle, compile_oracle
from repro.model.probe import CostProfile, ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.model.runner import run_algorithm
from repro.model.views import gather_ball

SCHEMA_NAME = "repro-bench-hotpath"
SCHEMA_VERSION = 3


def load_hotpath_artifact(source) -> Dict[str, object]:
    """Read a hot-path artifact, upgrading schema v1 payloads in place.

    ``source`` is a path or an already-parsed dict.  Version 1 artifacts
    (PR 3-5) predate the ``parallel_scaling`` / ``trial_batch`` sections
    and the parallel gate keys; version 2 (PR 6-7) predates the
    ``fault_recovery`` section and its supervision gate keys.  The shim
    fills the missing pieces with empty/None values and stamps
    ``upgraded_from`` so v3 consumers (CI scripts, analysis notebooks)
    can read any committed artifact uniformly.
    """
    if isinstance(source, dict):
        artifact = source
    else:
        with open(source) as fh:
            artifact = json.load(fh)
    if artifact.get("schema") != SCHEMA_NAME:
        raise ValueError(f"not a {SCHEMA_NAME} artifact: {source!r}")
    version = artifact.get("schema_version")
    if version == SCHEMA_VERSION:
        return artifact
    if version not in (1, 2):
        raise ValueError(f"unsupported {SCHEMA_NAME} schema_version "
                         f"{version!r}")
    artifact = dict(artifact)
    artifact["schema_version"] = SCHEMA_VERSION
    artifact["upgraded_from"] = version
    gate = dict(artifact.get("gate", {}))
    if version == 1:
        artifact.setdefault("parallel_scaling", [])
        artifact.setdefault("trial_batch", [])
        gate.setdefault("parallel_speedup_2w_shm", None)
        gate.setdefault("parallel_ok", True)  # nothing measured =>
        gate.setdefault("shm_leak_free", True)  # nothing failed
    artifact.setdefault("fault_recovery", None)
    gate.setdefault("supervision_overhead", None)
    gate.setdefault("supervision_ok", True)
    gate.setdefault("fault_recovery_ok", True)
    artifact["gate"] = gate
    return artifact


def line_instance(n: int) -> Instance:
    """An unlabeled path on ``n`` nodes (ids 1..n, ports 1/2)."""
    return Instance(
        graph=path_graph(n), labeling=Labeling(), name=f"line-{n}"
    )


def tree_instance(depth: int) -> Instance:
    """An unlabeled complete binary tree of the given depth."""
    topo = complete_binary_tree(depth)
    return Instance(
        graph=topo.graph,
        labeling=Labeling(),
        name=f"tree-{topo.graph.num_nodes}",
    )


class PureGatherAlgorithm(ProbeAlgorithm):
    """Gather the whole component and summarize it: the pure hot path.

    Unlike :class:`~repro.algorithms.generic.FullGatherAlgorithm` there
    is no instance reconstruction or reference solve afterwards, so the
    measured time is the engine + oracle loop and nothing else.  This
    class is deliberately scalar-only (no ``run_node_batch``): it is the
    pre-PR-6 compiled baseline every ``speedup`` column divides by.
    """

    name = "pure-gather"

    def run(self, view: ProbeView):
        ball = gather_ball(view, max(1, view.n))
        return (len(ball.distance), max(ball.distance.values()))


class BatchedGatherAlgorithm(PureGatherAlgorithm):
    """The same workload through the flat-array CSR kernel.

    ``summarize`` returns exactly the scalar run's ``(size, depth)``
    output and cost surface (the kernel suite pins this), so timing the
    two algorithms side by side isolates the batched kernel's win.
    """

    name = "pure-gather-batched"

    def run_node_batch(self, oracle, nodes):
        kernel = gather_kernel(oracle)
        if kernel is None:
            return None
        radius = max(1, oracle.n)
        out = []
        for node in nodes:
            size, depth, queries = kernel.summarize(node, radius)
            profile = CostProfile(
                volume=size, distance=depth, queries=queries, random_bits=0
            )
            out.append((node, (size, depth), profile))
        return out


def best_of(repeats: int, fn: Callable[[], float]) -> float:
    """The minimum wall time over ``repeats`` runs (noise-robust)."""
    return min(fn() for _ in range(repeats))


def timed(fn: Callable[[], object]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# 1. oracle query throughput
# ----------------------------------------------------------------------
def bench_oracle_queries(repeats: int, rounds: int) -> Dict[str, object]:
    instance = tree_instance(9)  # n = 1023
    graph = instance.graph
    pairs = [
        (node, port)
        for node in graph.nodes()
        for port in range(1, graph.num_ports(node) + 1)
    ]

    def sweep(oracle) -> None:
        resolve = oracle.resolve
        node_info = oracle.node_info
        for _ in range(rounds):
            for node, port in pairs:
                endpoint = resolve(node, port)
                if endpoint is not None:
                    node_info(endpoint)

    static = StaticOracle(instance)
    compiled = CompiledOracle(instance)
    # Cross-check before timing: same answers on every (node, port).
    for node, port in pairs:
        assert static.resolve(node, port) == compiled.resolve(node, port)
        assert static.node_info(node) == compiled.node_info(node)
    reference_s = best_of(repeats, lambda: timed(lambda: sweep(static)))
    compiled_s = best_of(repeats, lambda: timed(lambda: sweep(compiled)))
    queries = len(pairs) * rounds
    return {
        "name": "oracle_queries",
        "params": {"n": graph.num_nodes, "queries": queries},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "reference_qps": queries / reference_s,
        "compiled_qps": queries / compiled_s,
        "speedup": reference_s / compiled_s,
    }


# ----------------------------------------------------------------------
# 2. full-gather whole-instance run
# ----------------------------------------------------------------------
def bench_full_gather(instance: Instance, repeats: int) -> Dict[str, object]:
    scalar = PureGatherAlgorithm()
    batched = BatchedGatherAlgorithm()
    reference_backend = SerialBackend(compiled=False)
    compiled_backend = SerialBackend(compiled=True)
    ref_run = run_algorithm(instance, scalar, backend=reference_backend)
    fast_run = run_algorithm(instance, scalar, backend=compiled_backend)
    batched_run = run_algorithm(instance, batched, backend=compiled_backend)
    assert fast_run.outputs == ref_run.outputs == batched_run.outputs
    assert fast_run.profiles == ref_run.profiles == batched_run.profiles
    n = instance.graph.num_nodes
    reference_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(
                instance, scalar, backend=reference_backend
            )
        ),
    )
    compiled_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(
                instance, scalar, backend=compiled_backend
            )
        ),
    )
    batched_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(
                instance, batched, backend=compiled_backend
            )
        ),
    )
    return {
        "name": f"full_gather[{instance.name}]",
        "params": {"n": n, "executions": n},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "batched_s": batched_s,
        "reference_eps": n / reference_s,
        "compiled_eps": n / compiled_s,
        "batched_eps": n / batched_s,
        # `speedup` keeps its v1 meaning (reference vs compiled scalar);
        # the kernel's own win is reported against the scalar baseline.
        "speedup": reference_s / compiled_s,
        "batched_speedup_vs_scalar": compiled_s / batched_s,
    }


# ----------------------------------------------------------------------
# 3. DIST maintenance under interleaved cost reads
# ----------------------------------------------------------------------
def _null_context() -> RandomnessContext:
    return RandomnessContext(None, RandomnessModel.DETERMINISTIC, 0)


def bench_dist_maintenance(n: int, repeats: int) -> Dict[str, object]:
    instance = line_instance(n)
    compiled = CompiledOracle(instance)
    start = next(iter(instance.graph.nodes()))

    def explore(distance_mode: str) -> int:
        view = ProbeView(
            compiled, start, _null_context(), distance_mode=distance_mode
        )
        total = 0
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for port in view.info(u).ports:
                    endpoint = view.query(u, port)
                    # The poll after every query is the workload: it
                    # forces the reference path to re-BFS per probe.
                    total += view.distance_cost()
                    if endpoint is not None and endpoint.node_id not in seen:
                        seen.add(endpoint.node_id)
                        nxt.append(endpoint.node_id)
            frontier = nxt
        return total

    def run(distance_mode: str) -> int:
        seen.clear()
        seen.add(start)
        return explore(distance_mode)

    seen: set = {start}
    assert run("incremental") == run("reference")
    reference_s = best_of(repeats, lambda: timed(lambda: run("reference")))
    compiled_s = best_of(repeats, lambda: timed(lambda: run("incremental")))
    return {
        "name": "dist_maintenance",
        "params": {"n": n, "polls_per_query": 1},
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "speedup": reference_s / compiled_s,
    }


# ----------------------------------------------------------------------
# 4. parallel scaling: batched full-gather over the process pool
# ----------------------------------------------------------------------
def _measure_attach_overhead(instance: Instance, transport: str) -> float:
    """One worker's per-run instance acquisition cost for a transport.

    Shared memory: publish + zero-copy attach + oracle compile (paid once
    per worker per run).  Pickle: serialize + deserialize + oracle compile
    (paid once per *chunk* on the legacy path — the per-run number shown
    here is its lower bound).
    """
    if transport == "shm":
        started = time.perf_counter()
        handle = shm.publish_instance(instance)
        attachment = shm.attach_instance(handle)
        elapsed = time.perf_counter() - started
        attachment.close()
        shm.unpublish(handle)
        return elapsed
    started = time.perf_counter()
    payload = pickle.dumps(instance)
    clone = pickle.loads(payload)
    compile_oracle(clone)
    return time.perf_counter() - started


def bench_parallel_scaling(
    instance: Instance,
    repeats: int,
    workers_grid: List[int],
) -> List[Dict[str, object]]:
    """Batched full-gather fan-out: workers x transport grid.

    Baselines are measured in-process: ``scalar_serial_s`` (compiled
    scalar engine — the pre-PR-6 state every ``speedup`` divides by) and
    ``serial_batched_s`` (the batched kernel without any pool).
    """
    scalar = PureGatherAlgorithm()
    batched = BatchedGatherAlgorithm()
    serial = SerialBackend(compiled=True)
    baseline_run = run_algorithm(instance, scalar, backend=serial)
    scalar_serial_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(instance, scalar, backend=serial)
        ),
    )
    serial_batched_s = best_of(
        repeats,
        lambda: timed(
            lambda: run_algorithm(instance, batched, backend=serial)
        ),
    )
    rows: List[Dict[str, object]] = []
    n = instance.graph.num_nodes
    for transport in ("shm", "pickle"):
        attach_overhead_s = _measure_attach_overhead(instance, transport)
        for workers in workers_grid:
            with ProcessPoolBackend(
                workers=workers, shared_memory=(transport == "shm")
            ) as pool:
                pooled = run_algorithm(instance, batched, backend=pool)
                assert pooled.outputs == baseline_run.outputs
                assert pooled.profiles == baseline_run.profiles
                elapsed = best_of(
                    repeats,
                    lambda: timed(
                        lambda: run_algorithm(
                            instance, batched, backend=pool
                        )
                    ),
                )
            rows.append(
                {
                    "name": f"full_gather[{instance.name}]",
                    "workers": workers,
                    "transport": transport,
                    "params": {"n": n, "executions": n},
                    "time_s": elapsed,
                    "scalar_serial_s": scalar_serial_s,
                    "serial_batched_s": serial_batched_s,
                    "attach_overhead_s": attach_overhead_s,
                    "speedup": scalar_serial_s / elapsed,
                    "speedup_vs_serial_batched": serial_batched_s / elapsed,
                }
            )
    return rows


# ----------------------------------------------------------------------
# 5. fixed-instance trial batches: serial vs pool transports
# ----------------------------------------------------------------------
def bench_trial_batch(trials: int, repeats: int) -> List[Dict[str, object]]:
    """A fixed-instance Monte-Carlo batch across dispatch strategies."""
    import random

    from repro.algorithms.leaf_coloring_algs import RWtoLeaf
    from repro.graphs.generators import leaf_coloring_instance
    from repro.problems.leaf_coloring import LeafColoring

    instance = leaf_coloring_instance(5, rng=random.Random(11))
    problem = LeafColoring()
    factory = FixedInstanceFactory(instance)

    def batch(backend) -> List[object]:
        return backend.run_trial_batch(
            problem, factory, RWtoLeaf(), range(trials), base_seed=7
        )

    serial = SerialBackend(compiled=True)
    baseline = batch(serial)
    serial_s = best_of(repeats, lambda: timed(lambda: batch(serial)))
    rows: List[Dict[str, object]] = [
        {
            "name": f"trial_batch[{instance.name}]",
            "backend": "serial",
            "transport": None,
            "params": {"trials": trials, "n": instance.n},
            "time_s": serial_s,
            "speedup": 1.0,
        }
    ]
    for transport in ("shm", "pickle"):
        with ProcessPoolBackend(
            workers=2, shared_memory=(transport == "shm")
        ) as pool:
            assert batch(pool) == baseline
            elapsed = best_of(repeats, lambda: timed(lambda: batch(pool)))
        rows.append(
            {
                "name": f"trial_batch[{instance.name}]",
                "backend": "process:2",
                "transport": transport,
                "params": {"trials": trials, "n": instance.n},
                "time_s": elapsed,
                "speedup": serial_s / elapsed,
            }
        )
    return rows


# ----------------------------------------------------------------------
# 6. fault tolerance: supervision overhead + one-kill recovery
# ----------------------------------------------------------------------
def bench_fault_recovery(repeats: int) -> Dict[str, object]:
    """What supervision costs when nothing fails, and when one thing does.

    The supervised dispatch loop (per-chunk timeouts, failure
    classification, retry bookkeeping) wraps every pooled run since
    PR 8, so its no-fault overhead is gated below 5% of the
    unsupervised path on the same workload.  The recovery row then
    injects exactly one ``kill-worker`` fault and reports the wall-time
    of detecting the dead pool, respawning it, and re-dispatching only
    the lost chunks — cross-checked bitwise against the serial run.
    """
    import random

    from repro.algorithms.leaf_coloring_algs import RWtoLeaf
    from repro.faults.plan import FaultInjector, FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.graphs.generators import leaf_coloring_instance

    # Big enough that a run takes tens of milliseconds: the overhead
    # gate compares two wall-times whose difference is microseconds of
    # bookkeeping per chunk, so short runs drown it in dispatch noise.
    instance = leaf_coloring_instance(9, rng=random.Random(11))
    algorithm = RWtoLeaf()
    repeats = max(5, repeats)
    serial_run = run_algorithm(instance, algorithm, seed=7)

    def pooled(supervised: bool, injector=None):
        return ProcessPoolBackend(
            workers=2,
            shared_memory=True,
            supervised=supervised,
            fault_injector=injector,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05),
        )

    with pooled(supervised=False) as pool:
        baseline = run_algorithm(instance, algorithm, seed=7, backend=pool)
        assert baseline.outputs == serial_run.outputs
        unsupervised_s = best_of(
            repeats,
            lambda: timed(
                lambda: run_algorithm(
                    instance, algorithm, seed=7, backend=pool
                )
            ),
        )
    with pooled(supervised=True) as pool:
        clean = run_algorithm(instance, algorithm, seed=7, backend=pool)
        assert clean.outputs == serial_run.outputs
        assert len(pool.fault_log) == 0
        supervised_s = best_of(
            repeats,
            lambda: timed(
                lambda: run_algorithm(
                    instance, algorithm, seed=7, backend=pool
                )
            ),
        )
    overhead = supervised_s / unsupervised_s - 1.0

    # One injected worker kill on the first dispatch of the first chunk:
    # the pool breaks, the supervisor respawns it and re-runs only what
    # was lost.  A fresh backend per repeat so every measurement pays
    # the kill (the injector budget is per-backend-lifetime).
    one_kill = FaultPlan(
        seed=1, kinds=("kill-worker",), rate=1.0, max_faults=1,
        max_attempt=0,
    )

    def killed_run() -> Dict[str, object]:
        with pooled(
            supervised=True, injector=FaultInjector(one_kill)
        ) as pool:
            result = run_algorithm(
                instance, algorithm, seed=7, backend=pool
            )
            return result, len(pool.fault_log)

    result, events = killed_run()
    recovery_equal = (
        result.outputs == serial_run.outputs
        and result.profiles == serial_run.profiles
    )
    recovery_s = best_of(
        max(2, repeats - 1), lambda: timed(killed_run)
    )
    return {
        "name": f"fault_recovery[{instance.name}]",
        "params": {"n": instance.n, "workers": 2, "transport": "shm"},
        "unsupervised_s": unsupervised_s,
        "supervised_s": supervised_s,
        "supervision_overhead": overhead,
        "recovery_s": recovery_s,
        "recovery_fault_events": events,
        "recovery_equal": recovery_equal,
        "plan": one_kill.describe(),
    }


def _shm_segments() -> List[str]:
    """``psm_*`` files in /dev/shm (empty on non-POSIX-shm hosts)."""
    try:
        return sorted(
            f for f in os.listdir("/dev/shm") if f.startswith("psm_")
        )
    except FileNotFoundError:
        return []


# ----------------------------------------------------------------------
def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="reduced repeats/sizes (what CI's perf-smoke job runs)",
    )
    mode.add_argument(
        "--full", action="store_true", help="larger sizes, more repeats"
    )
    parser.add_argument("--out", default="bench_hotpath.json")
    args = parser.parse_args(argv)
    full = args.full
    repeats = 5 if full else 3

    banner("Hot-path microbenchmarks: compiled fast path vs reference")
    shm_before = _shm_segments()
    benches: List[Dict[str, object]] = []

    benches.append(bench_oracle_queries(repeats, rounds=20 if full else 5))
    gather_instances = [line_instance(512), tree_instance(9)]
    if full:
        gather_instances.append(line_instance(2048))
    for instance in gather_instances:
        benches.append(bench_full_gather(instance, repeats))
    benches.append(bench_dist_maintenance(1024 if full else 384, repeats))

    for bench in benches:
        extra = ""
        if "batched_s" in bench:
            extra = (
                f"  batched {bench['batched_s']:.4f}s "
                f"({bench['batched_speedup_vs_scalar']:.2f}x over scalar)"
            )
        print(
            f"{bench['name']:<28} reference {bench['reference_s']:.4f}s  "
            f"compiled {bench['compiled_s']:.4f}s  "
            f"speedup {bench['speedup']:.2f}x{extra}"
        )

    parallel_rows = bench_parallel_scaling(
        tree_instance(9),
        max(2, repeats - 1),
        workers_grid=[1, 2, 4],
    )
    for row in parallel_rows:
        print(
            f"{row['name']:<28} workers={row['workers']} "
            f"{row['transport']:<6} {row['time_s']:.4f}s  "
            f"speedup {row['speedup']:.2f}x "
            f"(vs serial-batched {row['speedup_vs_serial_batched']:.2f}x, "
            f"attach {row['attach_overhead_s'] * 1e3:.1f}ms)"
        )

    trial_rows = bench_trial_batch(
        trials=96 if full else 32, repeats=max(2, repeats - 1)
    )
    for row in trial_rows:
        transport = row["transport"] or "-"
        print(
            f"{row['name']:<28} {row['backend']:<10} {transport:<6} "
            f"{row['time_s']:.4f}s  speedup {row['speedup']:.2f}x"
        )

    fault_recovery = bench_fault_recovery(max(2, repeats - 1))
    print(
        f"{fault_recovery['name']:<28} supervised "
        f"{fault_recovery['supervised_s']:.4f}s vs unsupervised "
        f"{fault_recovery['unsupervised_s']:.4f}s "
        f"(overhead {fault_recovery['supervision_overhead'] * 100:+.1f}%)  "
        f"1-kill recovery {fault_recovery['recovery_s']:.4f}s "
        f"equal={fault_recovery['recovery_equal']}"
    )

    oracle_bench = benches[0]
    gather_speedups = {
        b["name"]: b["speedup"]
        for b in benches
        if b["name"].startswith("full_gather")
    }
    parallel_2w_shm = next(
        row["speedup"]
        for row in parallel_rows
        if row["workers"] == 2 and row["transport"] == "shm"
    )
    shm_after = _shm_segments()
    leaked = sorted(set(shm_after) - set(shm_before))
    gate = {
        "query_throughput_speedup": oracle_bench["speedup"],
        "query_throughput_ok": oracle_bench["speedup"] >= 1.0,
        "full_gather_speedups": gather_speedups,
        "parallel_speedup_2w_shm": parallel_2w_shm,
        "parallel_ok": parallel_2w_shm >= 1.3,
        "shm_leak_free": not leaked and not shm.published_segments(),
        "supervision_overhead": fault_recovery["supervision_overhead"],
        "supervision_ok": fault_recovery["supervision_overhead"] < 0.05,
        "fault_recovery_ok": bool(fault_recovery["recovery_equal"]),
    }
    artifact = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "full" if full else "quick",
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "repeats": repeats,
        "benches": benches,
        "parallel_scaling": parallel_rows,
        "trial_batch": trial_rows,
        "fault_recovery": fault_recovery,
        "gate": gate,
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=1)
        handle.write("\n")
    print(f"\nartifact -> {args.out}")
    failed = False
    if not gate["query_throughput_ok"]:
        print(
            "FAIL: compiled oracle fell behind the reference oracle on "
            f"query throughput ({oracle_bench['speedup']:.2f}x)"
        )
        failed = True
    if not gate["parallel_ok"]:
        print(
            "FAIL: 2-worker shared-memory fan-out below the 1.3x floor "
            f"over compiled scalar serial ({parallel_2w_shm:.2f}x)"
        )
        failed = True
    if not gate["shm_leak_free"]:
        print(f"FAIL: leaked shared-memory segments: {leaked} "
              f"(published: {shm.published_segments()})")
        failed = True
    if not gate["supervision_ok"]:
        print(
            "FAIL: supervised dispatch costs "
            f"{gate['supervision_overhead'] * 100:.1f}% over the "
            "unsupervised path on a fault-free run (gate: < 5%)"
        )
        failed = True
    if not gate["fault_recovery_ok"]:
        print(
            "FAIL: the run recovered from an injected worker kill with "
            "outputs that differ from the serial baseline"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
