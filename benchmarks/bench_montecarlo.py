"""E6 — streaming Monte Carlo: adaptive early stopping vs fixed counts.

Two views of the :mod:`repro.montecarlo` engine:

* the ``mc/success-rates`` suite (identical to ``repro sweep
  mc/success-rates``): randomized-solver success probabilities with
  streaming confidence intervals over the quick grids;
* a fixed-vs-adaptive comparison over every *randomized* registry cell
  (the same records `repro bench` embeds in the artifact's
  ``monte_carlo`` section): both runs share the trial stream, the
  adaptive one stops once its Wilson interval is inside tolerance, and
  the table reports the trial saving per cell.

Run directly (``python benchmarks/bench_montecarlo.py``) or under
pytest-benchmark timing.  ``REPRO_BENCH_BACKEND`` selects the backend.
"""

from _common import BACKEND, banner, once, run_suite


def mc_comparison_table() -> None:
    from repro.cli.bench import run_mc_cell
    from repro.registry import iter_compatible

    banner("Monte Carlo — fixed (32 trials) vs adaptive early stopping")
    print(f"{'cell':44} {'trials':>8} {'rate':>6} {'stop':>10} {'ok':>4}")
    total_fixed = total_adaptive = 0
    for cell in iter_compatible():
        if not cell.algorithm.randomized:
            continue
        record = run_mc_cell(cell, "quick", BACKEND)
        total_fixed += record["fixed"]["trials"]
        total_adaptive += record["adaptive"]["trials"]
        print(
            f"{record['algorithm'] + ' @ ' + record['family']:44} "
            f"{record['fixed']['trials']:>3}->{record['adaptive']['trials']:<3} "
            f"{record['adaptive']['rate']:>6.3f} "
            f"{record['adaptive']['stopped']:>10} "
            f"{'ok' if record['ok'] else 'FAIL':>4}"
        )
    saved = total_fixed - total_adaptive
    print(
        f"\ntotal trials: {total_fixed} fixed -> {total_adaptive} adaptive "
        f"({saved} saved, {saved / total_fixed:.0%})"
    )


def test_mc_success_rates(benchmark):
    once(benchmark, lambda: run_suite("mc/success-rates"))


def test_mc_comparison(benchmark):
    once(benchmark, mc_comparison_table)


if __name__ == "__main__":
    run_suite("mc/success-rates")
    mc_comparison_table()
