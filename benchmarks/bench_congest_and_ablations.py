"""E8/E9 — Example 7.6 + Observation 7.4, and E10/E11 ablations.

* Example 7.6: probe volume O(log n) vs CONGEST rounds Ω(n/B) on the
  two-trees-with-a-bridge relay.
* Observation 7.4: BalancedTree solved in O(log n) CONGEST rounds while
  its volume is Θ(n) — the opposite separation.
* E10 ablation: waypoint probability multiplier vs volume and validity.
* E11 ablation: private vs secret randomness for RWtoLeaf (§7.4).

The CONGEST-vs-probe comparisons are sweep pairs sharing one memoized
composite measurement per size; the ablations dispatch their repeated
runs through a :class:`BatchBackend` so the instance oracle is built
once, not once per trial.
"""

import math
import random

from _common import (
    BACKEND,
    InstanceFamily,
    SweepSpec,
    banner,
    once,
    report_sweeps,
)

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeCongestFlood,
    BalancedTreeFullGather,
)
from repro.algorithms.classic_algs import RelayCongest, RelayProbeSolver
from repro.algorithms.hierarchical_algs import WaypointHTHC
from repro.algorithms.leaf_coloring_algs import RWtoLeaf, SecretRWtoLeaf
from repro.exec.backends import BatchBackend
from repro.graphs.generators import (
    balanced_tree_instance,
    hard_leaf_coloring_instance,
    hierarchical_thc_instance,
    leaf_coloring_instance,
    relay_instance,
)
from repro.model.congest import run_congest
from repro.model.runner import (
    run_algorithm,
    solve_and_check,
    success_probability,
)
from repro.problems.balanced_tree import BalancedTree
from repro.problems.hierarchical_thc import HierarchicalTHC
from repro.problems.leaf_coloring import LeafColoring


def test_example76_volume_vs_congest(benchmark):
    family = InstanceFamily(
        "relay",
        lambda depth: relay_instance(depth, rng=random.Random(depth)),
        [3, 4, 5, 6],
    )
    records = {}

    def measure(instance, depth):
        if depth not in records:
            n = instance.graph.num_nodes
            id_bits = math.ceil(math.log2(n + 1))
            bandwidth = 2 * (id_bits + 1)
            probe = run_algorithm(
                instance,
                RelayProbeSolver(),
                nodes=instance.meta["left_leaves"][:4],
                backend=BACKEND,
            )
            left = set(instance.meta["left_leaves"])
            congest = run_congest(
                instance,
                RelayCongest(depth, id_bits, bandwidth),
                bandwidth=bandwidth,
                max_rounds=64 * 2**depth,
                done_predicate=lambda outs: all(
                    outs[v] is not None for v in left
                ),
            )
            for u_leaf in instance.meta["left_leaves"]:
                expected = instance.label(
                    instance.meta["pairing"][u_leaf]
                ).bit
                assert congest.outputs[u_leaf] == expected
            records[depth] = (probe.max_volume, congest.rounds)
        return records[depth]

    def run():
        banner(
            "Example 7.6 — relay: probe volume O(log n) vs CONGEST rounds "
            "Ω(n/B)"
        )
        report_sweeps([
            SweepSpec("relay probe volume", "Θ(log n)", family,
                      measure=lambda inst, d: measure(inst, d)[0],
                      candidates=["log n", "n^{1/2}", "n"]),
            # with B = Θ(log n), the Ω(n/B) bottleneck reads Θ(n/log n)
            SweepSpec("relay CONGEST rounds (B≈2 log n)", "Θ(n/B)", family,
                      measure=lambda inst, d: measure(inst, d)[1],
                      candidates=["log n", "n^{1/2}", "n/log n", "n"]),
        ])

    once(benchmark, run)


def test_obs74_balanced_tree_congest(benchmark):
    family = InstanceFamily(
        "balanced-tree",
        lambda depth: balanced_tree_instance(depth, rng=random.Random(depth)),
        [3, 4, 5, 6],
    )
    rounds = {}

    def congest_rounds(instance, depth):
        if depth not in rounds:
            n = instance.graph.num_nodes
            id_bits = max(4, math.ceil(math.log2(n + 1)))
            result = run_congest(
                instance,
                BalancedTreeCongestFlood(id_bits=id_bits),
                bandwidth=16 * id_bits + 80,
                max_rounds=4 * id_bits + 16,
            )
            assert BalancedTree().validate(instance, result.outputs) == []
            rounds[depth] = result.rounds
        return rounds[depth]

    def run():
        banner(
            "Obs 7.4 — BalancedTree: O(log n) CONGEST rounds vs Θ(n) volume"
        )
        report_sweeps([
            SweepSpec("BalancedTree CONGEST rounds", "Θ(log n)", family,
                      measure=congest_rounds,
                      candidates=["log n", "n^{1/2}", "n"]),
            SweepSpec("BalancedTree volume", "Θ(n)", family, "volume",
                      BalancedTreeFullGather,
                      nodes=lambda inst, d: [inst.meta["root"]],
                      candidates=["log n", "n^{1/2}", "n"]),
        ])

    once(benchmark, run)


def test_ablation_waypoint_probability(benchmark):
    def run():
        banner(
            "Ablation E10 — waypoint probability multiplier "
            "(p = factor · 3 log n / √n)"
        )
        m = 12
        inst = hierarchical_thc_instance(
            2, m, rng=random.Random(3), lengths=[m, 8 * m]
        )
        problem = HierarchicalTHC(2)
        probes = list(range(1, 8 * m + 1, 8))
        batch = BatchBackend()  # one oracle for all factor × seed runs
        for factor in (0.01, 0.05, 0.2, 1.0, 2.0):
            failures = 0
            volumes = []
            for seed in range(5):
                algo = WaypointHTHC(2, factor=factor)
                report = solve_and_check(
                    problem, inst, algo, seed=seed, backend=batch
                )
                if not report.valid:
                    failures += 1
                volumes.append(
                    run_algorithm(
                        inst, algo, seed=seed, nodes=probes, backend=batch
                    ).max_volume
                )
            print(
                f"factor {factor:<5} max volume {max(volumes):<6} "
                f"failures {failures}/5"
                + (
                    "   (paper wants c ≥ 3: small factors may fail)"
                    if factor < 1
                    else ""
                )
            )

    once(benchmark, run)


def _promise_instance(trial: int):
    return hard_leaf_coloring_instance(6, rng=random.Random(trial))


def _general_instance(trial: int):
    return leaf_coloring_instance(6, rng=random.Random(100 + trial))


def test_ablation_randomness_models(benchmark):
    def run():
        banner(
            "Ablation E11 — §7.4: private vs secret randomness for RWtoLeaf"
        )
        problem = LeafColoring()
        trials = 8
        promise_ok = {}
        general_ok = {}
        for label, algo_factory in (
            ("private", RWtoLeaf),
            ("secret", SecretRWtoLeaf),
        ):
            with BatchBackend() as batch:
                promise_ok[label] = round(trials * success_probability(
                    problem, _promise_instance, algo_factory(), trials,
                    backend=batch,
                ))
                general_ok[label] = round(trials * success_probability(
                    problem, _general_instance, algo_factory(), trials,
                    backend=batch,
                ))
        for label in ("private", "secret"):
            print(
                f"{label:<8} promise instances: {promise_ok[label]}/{trials} "
                f"   general instances: {general_ok[label]}/{trials}"
            )
        print(
            "  paper: private solves both; secret solves the promise "
            "variant only (walks cannot coordinate)"
        )
        assert promise_ok["secret"] == trials
        assert general_ok["private"] == trials
        assert general_ok["secret"] < trials

    once(benchmark, run)


def test_structure_lemmas(benchmark):
    def run():
        banner("E12 — structure lemmas 3.8 / 5.11 measured on random sweeps")
        import math as _math

        from repro.graphs.generators import random_tree_instance
        from repro.graphs import tree_structure as ts

        worst_ratio = 0.0
        for seed in range(10):
            inst = random_tree_instance(200, rng=random.Random(seed))
            t = ts.InstanceTopology(inst)
            n = inst.graph.num_nodes
            limit = int(_math.log2(n)) + 1
            for v in inst.graph.nodes():
                if not ts.is_internal(t, v):
                    continue
                path = ts.descendant_leaf_path(t, v, limit)
                assert path is not None, "Lemma 3.8 violated"
                worst_ratio = max(
                    worst_ratio, (len(path) - 1) / _math.log2(max(2, n))
                )
        print(
            f"Lemma 3.8: nearest-leaf depth ≤ {worst_ratio:.2f}·log n over "
            f"10 random 200-node pseudo-trees (paper bound: 1.00·log n)"
        )

        inst = hierarchical_thc_instance(2, 10, rng=random.Random(1))
        n = inst.graph.num_nodes
        light = n ** (1 / 2)
        backbones = ts.all_backbones(inst, cap=2)
        heavy_children = 0
        for bb in backbones:
            if bb.level != 2:
                continue
            t = ts.InstanceTopology(inst)
            for v in bb.nodes:
                child = ts.hung_subtree_root(t, v, cap=2)
                if child is not None:
                    size = ts.hierarchy_subtree_size(inst, child, cap=2)
                    if size > light:
                        heavy_children += 1
        print(
            f"Lemma 5.11: heavy right children on the light top backbone: "
            f"{heavy_children} (bound: ≤ n^(1/2) = {light:.1f})"
        )
        assert heavy_children <= light

    once(benchmark, run)
