"""Cross-module integration tests: the paper's global invariants.

These exercise full pipelines (generator → solver → checker → costs)
and assert relationships the paper proves *between* results: the Lemma
2.5 sandwich on every execution, checker/locality agreement everywhere,
the volume-vs-distance separations of Theorem 3.6, and reproducibility
of randomized runs.
"""

import math
import random

import pytest

from repro import (
    BalancedTree,
    HierarchicalTHC,
    HybridTHC,
    LeafColoring,
    run_algorithm,
    solve_and_check,
)
from repro.algorithms.balanced_tree_algs import BalancedTreeDistanceSolver
from repro.algorithms.hierarchical_algs import RecursiveHTHC, WaypointHTHC
from repro.algorithms.hybrid_algs import HybridDistanceSolver
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
    random_tree_instance,
)
from repro.lcl.verifier import validate_locally

ALL_PIPELINES = [
    # (problem, instance factory, algorithm factory, delta)
    (
        LeafColoring(),
        lambda seed: leaf_coloring_instance(5, rng=random.Random(seed)),
        LeafColoringDistanceSolver,
        3,
    ),
    (
        LeafColoring(),
        lambda seed: random_tree_instance(60, rng=random.Random(seed)),
        RWtoLeaf,
        3,
    ),
    (
        BalancedTree(),
        lambda seed: balanced_tree_instance(
            4, compatible=seed % 2 == 0, rng=random.Random(seed)
        ),
        BalancedTreeDistanceSolver,
        5,
    ),
    (
        HierarchicalTHC(2),
        lambda seed: hierarchical_thc_instance(2, 4, rng=random.Random(seed)),
        lambda: RecursiveHTHC(2),
        5,
    ),
    (
        HybridTHC(2),
        lambda seed: hybrid_thc_instance(2, 3, 2, rng=random.Random(seed)),
        lambda: HybridDistanceSolver(2),
        5,
    ),
]


@pytest.mark.parametrize("case", range(len(ALL_PIPELINES)))
def test_pipeline_valid_and_sandwiched(case):
    """Every pipeline solves its problem and obeys Lemma 2.5 per node."""
    problem, make_instance, make_algorithm, delta = ALL_PIPELINES[case]
    for seed in range(3):
        instance = make_instance(seed)
        report = solve_and_check(
            problem, instance, make_algorithm(), seed=seed
        )
        assert report.valid, (problem.name, seed, report.violations[:3])
        for node, profile in report.run.profiles.items():
            assert profile.distance <= profile.volume, (problem.name, node)
            assert profile.volume <= delta ** max(1, profile.distance) + 1


@pytest.mark.parametrize("case", range(len(ALL_PIPELINES)))
def test_checker_locality_agreement(case):
    """Definition 2.6 in action: local and global validation agree."""
    problem, make_instance, make_algorithm, _ = ALL_PIPELINES[case]
    instance = make_instance(1)
    report = solve_and_check(problem, instance, make_algorithm(), seed=1)
    local = validate_locally(problem, instance, report.run.outputs)
    glob = problem.validate(instance, report.run.outputs)
    assert {(v.node, v.rule) for v in local} == {
        (v.node, v.rule) for v in glob
    }


class TestTheorem36Separation:
    """The paper's headline phenomenon, end to end on one instance."""

    def test_randomness_beats_determinism_for_volume(self):
        inst = leaf_coloring_instance(9, rng=random.Random(2))  # n = 1023
        n = inst.graph.num_nodes
        root = inst.meta["root"]
        randomized = run_algorithm(inst, RWtoLeaf(), seed=4, nodes=[root])
        deterministic = run_algorithm(
            inst, LeafColoringFullGather(), nodes=[root]
        )
        assert deterministic.max_volume == n
        assert randomized.max_volume <= 6 * math.log2(n)
        # exponential separation on this instance:
        assert randomized.max_volume**2 < deterministic.max_volume

    def test_distance_identical_for_both(self):
        inst = leaf_coloring_instance(7, rng=random.Random(3))
        result = run_algorithm(inst, LeafColoringDistanceSolver())
        assert result.max_distance <= math.log2(inst.graph.num_nodes) + 2


class TestReproducibility:
    def test_randomized_runs_reproduce(self):
        inst = hierarchical_thc_instance(2, 5, rng=random.Random(0))
        a = run_algorithm(inst, WaypointHTHC(2), seed=11)
        b = run_algorithm(inst, WaypointHTHC(2), seed=11)
        assert a.outputs == b.outputs
        assert {v: p.volume for v, p in a.profiles.items()} == {
            v: p.volume for v, p in b.profiles.items()
        }

    def test_generators_reproduce(self):
        a = hybrid_thc_instance(2, 3, 2, rng=random.Random(5))
        b = hybrid_thc_instance(2, 3, 2, rng=random.Random(5))
        assert sorted(a.graph.nodes()) == sorted(b.graph.nodes())
        assert all(
            a.label(v).color == b.label(v).color for v in a.graph.nodes()
        )


class TestHighProbabilityGuarantee:
    def test_rw_to_leaf_success_rate(self):
        """Definition 2.4: randomized solvers succeed with prob 1-O(1/n);
        across 20 seeded runs on n=127 we expect no failures at all."""
        problem = LeafColoring()
        inst = leaf_coloring_instance(6, rng=random.Random(9))
        failures = sum(
            0 if solve_and_check(problem, inst, RWtoLeaf(), seed=s).valid else 1
            for s in range(20)
        )
        assert failures == 0
