"""The compiled fast path must be bitwise-identical to the reference path.

PR 3's contract: ``CompiledOracle`` + ``FrozenPortGraph`` + incremental
``DIST`` may change wall-clock behavior only.  Every registry-enumerated
problem x algorithm x family cell is run on both engines and compared on
the full observable surface: per-node outputs, per-node
:class:`~repro.model.probe.CostProfile` (volume, distance, queries,
random_bits, truncated) — including truncated (Remark 3.11) and
randomized runs, on every backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.backends import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.model.runner import run_algorithm, solve_and_check
from repro.registry import iter_compatible, load_components

load_components()
CELLS = list(iter_compatible())
CELL_IDS = ["{}@{}".format(c.algorithm.name, c.family.name) for c in CELLS]

REFERENCE = SerialBackend(compiled=False)


def _runs_match(reference, candidate):
    """Bitwise comparison of two RunResults over the observable surface."""
    assert candidate.outputs == reference.outputs
    assert candidate.profiles == reference.profiles
    assert list(candidate.outputs) == list(reference.outputs)


def _run(cell, instance, backend, **kwargs):
    return run_algorithm(
        instance,
        cell.algorithm.make(),
        seed=cell.algorithm.seed,
        backend=backend,
        **kwargs,
    )


class TestRegistryMatrix:
    """Every compatible cell, smallest quick grid point, both engines."""

    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_compiled_equals_reference(self, cell):
        param = cell.family.quick[0]
        instance = cell.family.instance(param)
        reference = _run(cell, instance, REFERENCE)
        compiled = _run(cell, instance, SerialBackend())
        _runs_match(reference, compiled)

    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_verdicts_match_on_largest_quick_point(self, cell):
        param = cell.family.quick[-1]
        instance = cell.family.instance(param)
        problem = cell.problem.make()
        ref_report = solve_and_check(
            problem,
            instance,
            cell.algorithm.make(),
            seed=cell.algorithm.seed,
            backend=REFERENCE,
        )
        fast_report = solve_and_check(
            problem,
            instance,
            cell.algorithm.make(),
            seed=cell.algorithm.seed,
            backend=SerialBackend(),
        )
        assert fast_report.valid == ref_report.valid
        _runs_match(ref_report.run, fast_report.run)


class TestPropertyEquivalence:
    """Randomized sweep over cells, grid points, budgets, and backends."""

    @given(data=st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_cell_any_budget(self, data):
        cell = data.draw(st.sampled_from(CELLS), label="cell")
        param = data.draw(
            st.sampled_from(list(cell.family.quick)), label="param"
        )
        seed = data.draw(st.integers(min_value=0, max_value=3), label="seed")
        # Small volume budgets force the Remark 3.11 truncation path;
        # None exercises the unbounded path.
        max_volume = data.draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
            label="max_volume",
        )
        max_queries = data.draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
            label="max_queries",
        )
        fast_backend = data.draw(
            st.sampled_from(["serial", "batch"]), label="backend"
        )
        instance = cell.family.instance(param)
        algorithm = cell.algorithm.make()
        reference = run_algorithm(
            instance,
            algorithm,
            seed=seed,
            max_volume=max_volume,
            max_queries=max_queries,
            backend=REFERENCE,
        )
        compiled = run_algorithm(
            instance,
            algorithm,
            seed=seed,
            max_volume=max_volume,
            max_queries=max_queries,
            backend=get_backend(fast_backend),
        )
        _runs_match(reference, compiled)
        if max_volume is not None or max_queries is not None:
            # Truncation flags are part of the profile comparison above;
            # spot-check they agree as a set too (clearer failure).
            assert compiled.truncated_nodes == reference.truncated_nodes


class TestBackendsShareTheFastPath:
    """The compiled path is identical across dispatch strategies."""

    CASES = [CELLS[0], CELLS[len(CELLS) // 2], CELLS[-1]]

    @pytest.mark.parametrize(
        "cell", CASES, ids=["{}@{}".format(c.algorithm.name, c.family.name)
                            for c in CASES]
    )
    def test_process_pool_matches_reference(self, cell):
        param = cell.family.quick[0]
        instance = cell.family.instance(param)
        reference = _run(cell, instance, REFERENCE)
        with ProcessPoolBackend(workers=2, chunk_size=2) as pool:
            pooled = _run(cell, instance, pool)
        _runs_match(reference, pooled)

    @pytest.mark.parametrize(
        "cell", CASES, ids=["{}@{}".format(c.algorithm.name, c.family.name)
                            for c in CASES]
    )
    @pytest.mark.parametrize("shared", [True, False], ids=["shm", "pickle"])
    def test_process_transport_matches_reference(self, cell, shared):
        """Both pool transports are bitwise-identical to the reference.

        The shared-memory path swaps the instance's transport (published
        CSR segment + O(1) handle) but must never change results; the
        pickle path is today's semantics verbatim.  Leak-freedom is part
        of the contract: every dispatch unlinks its segment.
        """
        from repro.exec import shm

        param = cell.family.quick[0]
        instance = cell.family.instance(param)
        reference = _run(cell, instance, REFERENCE)
        with ProcessPoolBackend(
            workers=2, chunk_size=2, shared_memory=shared
        ) as pool:
            pooled = _run(cell, instance, pool)
            assert shm.published_segments() == []
        _runs_match(reference, pooled)

    def test_batch_backend_caches_compiled_oracle(self):
        cell = CELLS[0]
        instance = cell.family.instance(cell.family.quick[0])
        with BatchBackend() as batch:
            first = _run(cell, instance, batch)
            oracle = batch._oracle_for(instance)
            second = _run(cell, instance, batch)
            assert batch._oracle_for(instance) is oracle
        _runs_match(first, second)

    def test_reference_spec_resolves_to_uncompiled_serial(self):
        backend = get_backend("reference")
        assert isinstance(backend, SerialBackend)
        assert backend.compiled is False
        assert backend.oracle_mode == "reference"
        assert get_backend("serial").oracle_mode == "compiled"


class TestRandomizedTapeReads:
    """Randomized cells read identical tape bits on both engines."""

    RANDOMIZED = [c for c in CELLS if c.algorithm.randomized]

    @pytest.mark.parametrize(
        "cell",
        RANDOMIZED[:4],
        ids=["{}@{}".format(c.algorithm.name, c.family.name)
             for c in RANDOMIZED[:4]],
    )
    def test_random_bits_identical(self, cell):
        instance = cell.family.instance(cell.family.quick[0])
        reference = _run(cell, instance, REFERENCE)
        compiled = _run(cell, instance, SerialBackend())
        assert compiled.total_random_bits == reference.total_random_bits
        for node, profile in reference.profiles.items():
            assert compiled.profiles[node].random_bits == profile.random_bits
