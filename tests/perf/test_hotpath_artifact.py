"""The committed hot-path artifact and its schema reader shims.

``bench_hotpath.json`` at the repo root is a schema-v3 artifact; older
checkouts committed schema v1 (PR 3-5, no parallel sections) or v2
(PR 6-7, no ``fault_recovery`` section).  ``load_hotpath_artifact``
must read all three shapes uniformly so CI scripts and notebooks never
branch on the version themselves.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_hotpath import (  # noqa: E402 - path shim above
    SCHEMA_NAME,
    SCHEMA_VERSION,
    load_hotpath_artifact,
)


def _v1_payload():
    return {
        "schema": SCHEMA_NAME,
        "schema_version": 1,
        "benches": [{"name": "oracle_queries", "speedup": 20.0}],
        "gate": {
            "query_throughput_speedup": 20.0,
            "query_throughput_ok": True,
            "full_gather_speedups": {"full_gather[line-512]": 3.0},
        },
    }


class TestCommittedArtifact:
    def test_loads_as_current_schema(self):
        artifact = load_hotpath_artifact(REPO_ROOT / "bench_hotpath.json")
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert "upgraded_from" not in artifact

    def test_parallel_sections_present_and_gated(self):
        artifact = load_hotpath_artifact(REPO_ROOT / "bench_hotpath.json")
        rows = artifact["parallel_scaling"]
        assert rows, "v2 artifact must carry parallel_scaling rows"
        grid = {(r["workers"], r["transport"]) for r in rows}
        assert grid == {(w, t) for w in (1, 2, 4) for t in ("shm", "pickle")}
        gate = artifact["gate"]
        assert gate["parallel_ok"] is True
        assert gate["parallel_speedup_2w_shm"] >= 1.3
        assert gate["shm_leak_free"] is True
        assert artifact["trial_batch"]

    def test_fault_recovery_section_present_and_gated(self):
        artifact = load_hotpath_artifact(REPO_ROOT / "bench_hotpath.json")
        section = artifact["fault_recovery"]
        assert section["recovery_equal"] is True
        assert section["recovery_fault_events"] > 0
        assert section["supervised_s"] > 0
        gate = artifact["gate"]
        assert gate["supervision_ok"] is True
        assert gate["supervision_overhead"] < 0.05
        assert gate["fault_recovery_ok"] is True


class TestV1Shim:
    def test_v1_is_upgraded_in_memory(self):
        artifact = load_hotpath_artifact(_v1_payload())
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["upgraded_from"] == 1
        assert artifact["parallel_scaling"] == []
        assert artifact["trial_batch"] == []
        gate = artifact["gate"]
        assert gate["parallel_speedup_2w_shm"] is None
        assert gate["parallel_ok"] is True
        assert gate["shm_leak_free"] is True
        assert artifact["fault_recovery"] is None
        assert gate["supervision_overhead"] is None
        assert gate["supervision_ok"] is True
        # v1 content is preserved verbatim.
        assert gate["query_throughput_speedup"] == 20.0
        assert artifact["benches"][0]["name"] == "oracle_queries"

    def test_v2_is_upgraded_in_memory(self):
        payload = {
            "schema": SCHEMA_NAME,
            "schema_version": 2,
            "parallel_scaling": [{"workers": 2}],
            "trial_batch": [{"backend": "serial"}],
            "gate": {"parallel_ok": True, "shm_leak_free": True},
        }
        artifact = load_hotpath_artifact(payload)
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["upgraded_from"] == 2
        assert artifact["fault_recovery"] is None
        gate = artifact["gate"]
        assert gate["supervision_ok"] is True
        assert gate["fault_recovery_ok"] is True
        # v2 content is preserved verbatim.
        assert artifact["parallel_scaling"] == [{"workers": 2}]
        assert gate["parallel_ok"] is True

    def test_current_version_passes_through_unchanged(self):
        payload = {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "parallel_scaling": [{"workers": 2}],
        }
        assert load_hotpath_artifact(payload) is payload

    def test_foreign_schema_rejected(self):
        with pytest.raises(ValueError, match="not a"):
            load_hotpath_artifact({"schema": "something-else"})

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            load_hotpath_artifact({"schema": SCHEMA_NAME,
                                   "schema_version": 99})
