"""The deterministic load harness and its ``repro load`` CLI face."""

import json
import socket

import pytest

from repro.serve.load import (
    LoadConfig,
    PhaseReport,
    build_mix,
    min_param,
    percentile,
    run_load,
)
from repro.serve.service import ServeConfig, ServerThread


class TestBuildMix:
    def test_same_config_is_byte_identical(self):
        first = build_mix(LoadConfig(requests=40))
        second = build_mix(LoadConfig(requests=40))
        assert [r.body() for r in first] == [r.body() for r in second]

    def test_different_seeds_diverge(self):
        left = build_mix(LoadConfig(requests=40, seed=1))
        right = build_mix(LoadConfig(requests=40, seed=2))
        assert [r.body() for r in left] != [r.body() for r in right]

    def test_mix_length_and_endpoints(self):
        mix = build_mix(LoadConfig(requests=200))
        assert len(mix) == 200
        paths = {r.path for r in mix}
        assert paths == {"/solve", "/mc", "/adversary"}

    def test_shares_track_the_config(self):
        mix = build_mix(LoadConfig(
            requests=400, seed=9, adversary_share=0.5, mc_share=0.5
        ))
        counts = {"/solve": 0, "/mc": 0, "/adversary": 0}
        for request in mix:
            counts[request.path] += 1
        assert counts["/solve"] == 0
        assert counts["/adversary"] > 100
        assert counts["/mc"] > 100

    def test_compute_requests_use_the_cheapest_quick_param(self):
        from repro.registry import FAMILIES

        for request in build_mix(LoadConfig(requests=80)):
            if request.path == "/adversary":
                continue
            family = FAMILIES.get(request.payload["family"])
            assert request.payload["param"] == repr(min_param(family))

    def test_adversaries_use_their_smallest_quick_budget(self):
        from repro.registry import ADVERSARIES

        seen = 0
        for request in build_mix(LoadConfig(requests=80)):
            if request.path != "/adversary":
                continue
            seen += 1
            entry = ADVERSARIES.get(request.payload["adversary"])
            assert request.payload["budget"] == min(entry.quick)
        assert seen > 0


class TestPercentile:
    def test_empty_sample_is_none(self):
        assert percentile([], 50) is None

    def test_nearest_rank_never_interpolates(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert percentile(sample, 50) == 2.0
        assert percentile(sample, 75) == 3.0
        assert percentile(sample, 76) == 4.0

    def test_extremes(self):
        sample = [float(i) for i in range(1, 101)]
        assert percentile(sample, 99) == 99.0
        assert percentile(sample, 100) == 100.0
        assert percentile([5.0], 1) == 5.0


class TestPhaseReport:
    def test_payload_shape_and_hit_rate(self):
        report = PhaseReport(
            name="cold", requests=4, duration=2.0,
            statuses={200: 3, 504: 1},
            latencies=[0.010, 0.020, 0.030, 0.040],
            store_hits=2,
        )
        payload = report.to_payload()
        assert payload["rps"] == 2.0
        assert payload["store_hit_rate"] == 0.5
        assert payload["statuses"] == {"200": 3, "504": 1}
        assert payload["latency_ms"]["p50"] == 20.0
        assert payload["latency_ms"]["max"] == 40.0

    def test_empty_phase_has_null_latencies(self):
        report = PhaseReport(
            name="cold", requests=0, duration=0.0, statuses={}
        )
        payload = report.to_payload()
        assert payload["rps"] == 0.0
        assert payload["store_hit_rate"] == 0.0
        assert set(payload["latency_ms"].values()) == {None}


class TestRunLoadValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown load mode"):
            run_load(LoadConfig(mode="bogus"))

    def test_requests_floor(self):
        with pytest.raises(ValueError, match="requests"):
            run_load(LoadConfig(requests=0))

    def test_open_loop_needs_a_positive_rate(self):
        with pytest.raises(ValueError, match="rate"):
            run_load(LoadConfig(mode="open", rate=0.0))


@pytest.fixture(scope="module")
def stored_address(tmp_path_factory):
    """One store-backed server shared by the end-to-end harness tests."""
    store = tmp_path_factory.mktemp("load") / "serve.sqlite"
    with ServerThread(ServeConfig(port=0, store=str(store))) as thread:
        yield thread.address


class TestHarnessEndToEnd:
    def test_closed_loop_cache_gates_hold(self, stored_address):
        host, port = stored_address
        report = run_load(LoadConfig(
            host=host, port=port, requests=8, concurrency=2,
            seed=77, deadline_probes=1, burst_probes=4,
            require_cache=True,
        ))
        assert report.ok, report.failures
        cold, repeat = report.phases
        assert cold.name == "cold" and repeat.name == "repeat"
        assert cold.statuses == {200: 8}
        assert repeat.statuses == {200: 8}
        assert repeat.store_hits == 8
        assert report.repeat_identical is True
        assert report.repeat_executions == 0
        assert report.probes["deadline"]["other"] == 0
        assert report.probes["burst"]["other"] == 0
        assert sum(report.batch_histogram.values()) > 0
        payload = report.to_payload()
        assert payload["ok"] is True
        assert payload["phases"][1]["store_hit_rate"] == 1.0

    def test_open_loop_smoke(self, stored_address):
        host, port = stored_address
        report = run_load(LoadConfig(
            host=host, port=port, requests=6, concurrency=2,
            mode="open", rate=200.0, seed=78,
            deadline_probes=0, burst_probes=0,
        ))
        assert report.phases[0].statuses == {200: 6}
        assert report.phases[1].statuses == {200: 6}

    def test_impossible_gates_fail_loudly(self, stored_address):
        host, port = stored_address
        report = run_load(LoadConfig(
            host=host, port=port, requests=4, concurrency=2,
            seed=79, deadline_probes=0, burst_probes=0,
            p99_gate_ms=1e-9, min_rps=1e9,
        ))
        assert report.ok is False
        assert any("p99" in f for f in report.failures)
        assert any("floor" in f for f in report.failures)


class TestLoadCli:
    def test_load_writes_the_report_and_exits_zero(
        self, stored_address, tmp_path, capsys
    ):
        from repro.cli import main

        host, port = stored_address
        out = tmp_path / "load.json"
        code = main([
            "load", "--host", host, "--port", str(port),
            "--requests", "6", "--concurrency", "2", "--seed", "81",
            "--deadline-probes", "0", "--burst-probes", "0",
            "--require-cache", "--json", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["config"]["requests"] == 6
        printed = json.loads(capsys.readouterr().out)
        assert printed == payload

    def test_failed_gate_exits_one(self, stored_address, capsys):
        from repro.cli import main

        host, port = stored_address
        code = main([
            "load", "--host", host, "--port", str(port),
            "--requests", "4", "--seed", "82",
            "--deadline-probes", "0", "--burst-probes", "0",
            "--min-rps", "1000000000",
        ])
        assert code == 1
        assert "GATE FAILED" in capsys.readouterr().out

    def test_no_server_exits_two(self, capsys):
        from repro.cli import main

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main([
            "load", "--port", str(free_port), "--requests", "2",
            "--deadline-probes", "0", "--burst-probes", "0",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_serve_port_conflict_exits_two(self, capsys):
        from repro.cli import main

        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            taken = holder.getsockname()[1]
            code = main(["serve", "--port", str(taken)])
        assert code == 2
        assert "error" in capsys.readouterr().err
