"""Service behavior: routing, failure surface, 429/504, store, coalescing.

The module-scoped ``server`` fixture (conftest) is store-less, so every
compute request executes fresh; tests that need a store or a tiny
admission queue spin their own configured :class:`ServerThread`.
"""

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.service import ServeConfig, ServerThread

from _client import Client

SOLVE = {"algorithm": "cycle/2-coloring", "family": "cycle", "param": "8"}


def fresh(payload, seed):
    """A unique descriptor: same work, never-seen request key."""
    return {**payload, "seed": seed}


class TestGetEndpoints:
    def test_healthz(self, server):
        status, _, body = server.get("/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_tolerates_query_string(self, server):
        status, _, _ = server.get("/healthz?probe=1")
        assert status == 200

    def test_registry_lists_components(self, server):
        status, _, body = server.get("/registry")
        assert status == 200
        payload = json.loads(body)
        assert any(
            a["name"] == "cycle/2-coloring" for a in payload["algorithms"]
        )
        assert {f["name"] for f in payload["families"]} >= {
            "cycle", "balanced-tree",
        }

    def test_stats_shape(self, server):
        status, _, body = server.get("/stats")
        assert status == 200
        stats = json.loads(body)
        assert {"requests", "responses", "queue", "batches", "store",
                "executions", "coalesced"} <= set(stats)
        assert stats["queue"]["limit"] == 64


class TestFailureSurface:
    def test_unknown_path_404(self, server):
        status, _, body = server.get("/nope")
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_wrong_method_on_get_endpoint_405(self, server):
        assert server.post("/healthz", {})[0] == 405
        assert server.post("/stats", {})[0] == 405

    def test_wrong_method_on_post_endpoint_405(self, server):
        assert server.get("/solve")[0] == 405

    def test_non_json_body_400(self, server):
        status, _, body = server.request("POST", "/solve", payload=None)
        # an empty body parses as {} and then fails resolution
        assert status == 400
        assert "algorithm" in json.loads(body)["error"]

    def test_body_must_be_object_400(self, server):
        conn_status, _, body = server.request("POST", "/solve", payload=[1])
        assert conn_status == 400
        assert "JSON object" in json.loads(body)["error"]

    def test_unknown_algorithm_400(self, server):
        status, _, body = server.post("/solve", {"algorithm": "no/such"})
        assert status == 400

    def test_unknown_adversary_400(self, server):
        status, _, _ = server.post("/adversary", {"adversary": "nope"})
        assert status == 400

    def test_unknown_adversary_victim_400(self, server):
        status, _, _ = server.post("/adversary", {
            "adversary": "prop49/balanced-tree", "algorithm": "no/such",
        })
        assert status == 400

    def test_bad_param_400(self, server):
        status, _, body = server.post(
            "/solve", {**SOLVE, "param": "'junk'"}
        )
        assert status == 400
        assert "rejected param" in json.loads(body)["error"]

    def test_unknown_policy_field_400(self, server):
        status, _, body = server.post("/mc", {
            **SOLVE, "policy": {"trials": 5},
        })
        assert status == 400
        assert "unknown policy fields" in json.loads(body)["error"]

    def test_bad_deadline_400(self, server):
        status, _, body = server.post(
            "/solve", {**SOLVE, "deadline": "soon"}
        )
        assert status == 400
        assert "deadline" in json.loads(body)["error"]

    def test_malformed_http_gets_400_and_close(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"BOGUS\r\n\r\n")
            raw = sock.recv(65536)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"Connection: close" in raw


class TestSolveResponses:
    def test_solve_round_trip_with_provenance_headers(self, server):
        status, headers, payload = server.post_json("/solve", SOLVE)
        assert status == 200
        assert payload["valid"] is True
        assert payload["n"] == 8
        assert payload["endpoint"] == "solve"
        assert len(headers["x-repro-key"]) == 16
        assert headers["x-repro-store"] == "miss"
        assert float(headers["x-repro-elapsed"]) > 0

    def test_repeat_is_bitwise_identical_without_a_store(self, server):
        # Responses are pure functions of the resolved descriptor, so
        # even a re-execution must produce the exact same bytes.
        first = server.post("/solve", SOLVE)
        second = server.post("/solve", SOLVE)
        assert first[0] == second[0] == 200
        assert first[2] == second[2]
        assert first[1]["x-repro-key"] == second[1]["x-repro-key"]

    def test_equivalent_spellings_share_a_key(self, server):
        # Filling a default explicitly must not change the request key.
        _, sparse, _ = server.post("/solve", SOLVE)
        _, explicit, _ = server.post(
            "/solve", {**SOLVE, "problem": "cycle-2-coloring"}
        )
        assert sparse["x-repro-key"] == explicit["x-repro-key"]

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            for _ in range(3):
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                raw = b""
                while b"\r\n\r\n" not in raw:
                    raw += sock.recv(65536)
                head, _, rest = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200 ")
                length = int(
                    [ln for ln in head.split(b"\r\n")
                     if ln.lower().startswith(b"content-length")][0]
                    .split(b":")[1]
                )
                while len(rest) < length:
                    rest += sock.recv(65536)


class TestDeadlines:
    def test_microscopic_deadline_times_out_cleanly(self, server):
        status, headers, body = server.post(
            "/solve", fresh(SOLVE, seed=990001) | {"deadline": 1e-4}
        )
        assert status == 504
        assert "deadline" in json.loads(body)["error"]
        assert len(headers["x-repro-key"]) == 16

    def test_pool_is_healthy_after_a_timeout(self, server):
        server.post("/solve", fresh(SOLVE, seed=990002) | {"deadline": 1e-4})
        assert server.get("/healthz")[0] == 200
        status, _, payload = server.post_json(
            "/solve", fresh(SOLVE, seed=990003)
        )
        assert status == 200 and payload["valid"] is True


class TestCoalescing:
    def test_concurrent_identical_requests_single_flight(self, server):
        # A slow fixed-count MC job keeps the key in flight long enough
        # for the second request to piggyback deterministically.
        payload = {
            **SOLVE,
            "seed": 990010,
            "policy": {
                "quick": False, "min_trials": 300, "max_trials": 300,
                "early_stop": False,
            },
        }
        before = json.loads(server.get("/stats")[2])
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(server.post, "/mc", payload) for _ in range(2)
            ]
            results = [f.result() for f in futures]
        after = json.loads(server.get("/stats")[2])
        assert [r[0] for r in results] == [200, 200]
        assert results[0][2] == results[1][2]  # bitwise identical
        coalesced = [
            r for r in results if r[1].get("x-repro-coalesced") == "1"
        ]
        assert len(coalesced) == 1
        assert after["coalesced"] - before["coalesced"] == 1
        # One execution burst for two requests: 300 trials, not 600.
        assert after["executions"] - before["executions"] == 300


class TestBackpressure:
    def test_saturation_rejects_without_dropping_admitted(self, tmp_path):
        config = ServeConfig(
            port=0, queue_limit=1, max_batch=1, batch_window=0.0
        )
        slow = {
            **SOLVE,
            "policy": {
                "quick": False, "min_trials": 250, "max_trials": 250,
                "early_stop": False,
            },
        }
        with ServerThread(config) as thread:
            client = Client(thread.address)
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(
                        client.post, "/mc", {**slow, "seed": 990100 + i}
                    )
                    for i in range(8)
                ]
                results = [f.result() for f in futures]
            statuses = sorted(r[0] for r in results)
            # Only 200 and 429 may come back; with eight simultaneous
            # ~multi-hundred-ms jobs against a one-slot queue, at least
            # one must have been rejected.
            assert set(statuses) <= {200, 429}
            assert 429 in statuses
            rejected = [r for r in results if r[0] == 429]
            for _, headers, body in rejected:
                assert headers["retry-after"]
                assert "queue full" in json.loads(body)["error"]
            # Every admitted request completed with a real result.
            for status, _, body in results:
                if status == 200:
                    assert json.loads(body)["trials"] == 250
            stats = json.loads(client.get("/stats")[2])
            assert stats["queue"]["rejected"] == len(rejected)


class TestStoreBacked:
    @pytest.fixture()
    def stored_server(self, tmp_path):
        config = ServeConfig(port=0, store=str(tmp_path / "serve.sqlite"))
        with ServerThread(config) as thread:
            yield Client(thread.address)

    def test_repeat_served_from_store_bitwise_with_zero_executions(
        self, stored_server
    ):
        first = stored_server.post("/solve", SOLVE)
        assert first[0] == 200
        assert first[1]["x-repro-store"] == "miss"
        mid = json.loads(stored_server.get("/stats")[2])
        second = stored_server.post("/solve", SOLVE)
        after = json.loads(stored_server.get("/stats")[2])
        assert second[0] == 200
        assert second[1]["x-repro-store"] == "hit"
        assert second[2] == first[2]  # the exact stored bytes
        assert "x-repro-elapsed" not in second[1]
        # The stored repeat executed nothing.
        assert after["executions"] == mid["executions"]
        assert after["store"]["hits"] == mid["store"]["hits"] + 1

    def test_timed_out_response_still_lands_in_the_store(
        self, stored_server
    ):
        # The 504 abandons the response, not the computation: the job
        # finishes on the worker and its body is persisted, so the
        # retry is a pure store hit.
        payload = fresh(SOLVE, seed=990200)
        status, headers, _ = stored_server.post(
            "/solve", payload | {"deadline": 1e-4}
        )
        assert status == 504
        key = headers["x-repro-key"]
        # The write-behind trails the (abandoned) response; poll until
        # the store row lands, then the retry must be a pure hit.
        for _ in range(100):
            retry_status, retry_headers, body = stored_server.post(
                "/solve", payload
            )
            assert retry_status == 200
            assert retry_headers["x-repro-key"] == key
            if retry_headers["x-repro-store"] == "hit":
                break
            time.sleep(0.02)
        assert retry_headers["x-repro-store"] == "hit"
        assert json.loads(body)["valid"] is True
