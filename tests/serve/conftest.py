"""Fixtures for the serve suite: live servers and a tiny sync client."""

import pytest
from _client import Client

from repro.serve.service import ServeConfig, ServerThread


@pytest.fixture(scope="module")
def server():
    """One store-less server per module: every request executes fresh."""
    with ServerThread(ServeConfig(port=0)) as thread:
        yield Client(thread.address)
