"""The hand-rolled HTTP/1.1 layer: parsing, rendering, canonical JSON."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADERS,
    HttpProtocolError,
    Request,
    Response,
    canonical_json,
    error_response,
    json_response,
    read_request,
)


def parse(raw: bytes):
    """Feed raw bytes to the parser exactly as the server would."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        request = parse(
            b"POST /solve HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: 7\r\n"
            b"\r\n"
            b'{"a":1}'
        )
        assert request.method == "POST"
        assert request.path == "/solve"
        assert request.body == b'{"a":1}'
        assert request.json() == {"a": 1}

    def test_header_names_are_lower_cased(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-RePrO-ThInG: Value\r\n\r\n"
        )
        assert request.headers["x-repro-thing"] == "Value"

    def test_query_string_is_split_off_the_path(self):
        request = parse(b"GET /healthz?probe=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/healthz"
        assert request.query == "probe=1"

    def test_method_is_upper_cased(self):
        assert parse(b"get / HTTP/1.1\r\n\r\n").method == "GET"

    def test_keep_alive_is_the_default(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive is True

    def test_connection_close_opts_out(self):
        request = parse(
            b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n"
        )
        assert request.keep_alive is False

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_bare_lf_line_endings_accepted(self):
        request = parse(b"GET / HTTP/1.1\nHost: x\n\n")
        assert request.method == "GET"
        assert request.headers["host"] == "x"

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpProtocolError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_unsupported_protocol_raises(self):
        with pytest.raises(HttpProtocolError, match="protocol"):
            parse(b"GET / HTTP/2\r\n\r\n")

    def test_malformed_header_line_raises(self):
        with pytest.raises(HttpProtocolError, match="header"):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_non_numeric_content_length_raises(self):
        with pytest.raises(HttpProtocolError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_negative_content_length_raises(self):
        with pytest.raises(HttpProtocolError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_oversized_body_raises_413(self):
        with pytest.raises(HttpProtocolError) as exc:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n"
            )
        assert exc.value.status == 413

    def test_chunked_transfer_encoding_rejected(self):
        with pytest.raises(HttpProtocolError, match="chunked"):
            parse(
                b"POST / HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )

    def test_truncated_body_raises(self):
        with pytest.raises(HttpProtocolError, match="truncated"):
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
            )

    def test_too_many_headers_raises(self):
        lines = b"".join(
            b"X-H%d: v\r\n" % i for i in range(MAX_HEADERS + 1)
        )
        with pytest.raises(HttpProtocolError, match="too many"):
            parse(b"GET / HTTP/1.1\r\n" + lines + b"\r\n")


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert Request(method="POST", path="/x").json() == {}

    def test_bad_json_raises_400(self):
        request = Request(method="POST", path="/x", body=b"{nope")
        with pytest.raises(HttpProtocolError) as exc:
            request.json()
        assert exc.value.status == 400


class TestCanonicalJson:
    def test_sorted_compact_with_trailing_newline(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}\n'

    def test_equal_payloads_are_equal_bytes(self):
        left = canonical_json({"x": 1, "y": {"b": 2, "a": 3}})
        right = canonical_json({"y": {"a": 3, "b": 2}, "x": 1})
        assert left == right


class TestResponseEncode:
    def test_status_line_content_length_and_body(self):
        raw = Response(body=b"hi").encode()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert body == b"hi"

    def test_keep_alive_flag_sets_connection_header(self):
        assert b"Connection: keep-alive" in Response().encode(True)
        assert b"Connection: close" in Response().encode(False)

    def test_custom_headers_are_rendered(self):
        raw = Response(headers={"X-Repro-Key": "abc"}).encode()
        assert b"X-Repro-Key: abc\r\n" in raw

    def test_json_response_body_is_canonical(self):
        response = json_response({"b": 1, "a": 2})
        assert response.body == canonical_json({"a": 2, "b": 1})

    def test_error_response_shape(self):
        response = error_response("nope", 404)
        assert response.status == 404
        assert json.loads(response.body) == {"error": "nope", "status": 404}
