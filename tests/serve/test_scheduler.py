"""The micro-batching scheduler: batching, single-flight, store, 429."""

import asyncio
import json
import time

import pytest

from repro.serve.http import canonical_json
from repro.serve.scheduler import (
    Backpressure,
    BatchScheduler,
    SchedulerClosed,
)


class DummyBackend:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def run(coro_fn, **kwargs):
    """Drive one scenario against a live scheduler, then tear it down."""
    backend = kwargs.pop("backend", None) or DummyBackend()

    async def go():
        scheduler = BatchScheduler(backend=backend, **kwargs)
        scheduler.start()
        try:
            return await coro_fn(scheduler)
        finally:
            await scheduler.close()

    return asyncio.run(go())


def job(payload, executions=1):
    return lambda: (payload, executions)


class TestExecution:
    def test_result_is_canonical_json_of_the_payload(self):
        async def scenario(scheduler):
            return await scheduler.submit("k1", "/solve", job({"b": 1, "a": 2}))

        result = run(scenario)
        assert result.body == canonical_json({"a": 2, "b": 1})
        assert result.from_store is False
        assert result.coalesced is False

    def test_execution_counters_accumulate(self):
        async def scenario(scheduler):
            await scheduler.submit("k1", "/mc", job({"v": 1}, executions=7))
            await scheduler.submit("k2", "/mc", job({"v": 2}, executions=3))
            return scheduler.stats

        stats = run(scenario)
        assert stats.jobs_executed == 2
        assert stats.executions == 10

    def test_fn_error_settles_the_future_and_the_lane_survives(self):
        async def scenario(scheduler):
            def explode():
                raise ValueError("boom")

            with pytest.raises(ValueError, match="boom"):
                await scheduler.submit("bad", "/solve", explode)
            result = await scheduler.submit("ok", "/solve", job({"v": 1}))
            return json.loads(result.body)

        assert run(scenario) == {"v": 1}

    def test_constructor_validates_knobs(self):
        backend = DummyBackend()
        with pytest.raises(ValueError, match="queue_limit"):
            BatchScheduler(backend=backend, queue_limit=0)
        with pytest.raises(ValueError, match="max_batch"):
            BatchScheduler(backend=backend, max_batch=0)
        with pytest.raises(ValueError, match="batch_window"):
            BatchScheduler(backend=backend, batch_window=-1)


class TestBatching:
    def test_synchronous_burst_lands_in_one_batch(self):
        # All four submits happen before the loop yields, so the
        # scheduler task finds them queued together and must take the
        # whole burst as one batch.
        async def scenario(scheduler):
            futures = [
                scheduler.submit(f"k{i}", "/solve", job({"i": i}))
                for i in range(4)
            ]
            await asyncio.gather(*futures)
            return scheduler.stats.batch_sizes

        assert dict(run(scenario, batch_window=0.05, max_batch=8)) == {4: 1}

    def test_max_batch_caps_batch_size(self):
        async def scenario(scheduler):
            futures = [
                scheduler.submit(f"k{i}", "/solve", job({"i": i}))
                for i in range(5)
            ]
            await asyncio.gather(*futures)
            return scheduler.stats.batch_sizes

        sizes = run(scenario, batch_window=0.05, max_batch=2)
        assert max(sizes) <= 2
        assert sum(size * count for size, count in sizes.items()) == 5


class TestSingleFlight:
    def test_identical_inflight_key_coalesces(self):
        calls = []

        def fn():
            calls.append(1)
            time.sleep(0.05)
            return {"v": 42}, 1

        async def scenario(scheduler):
            first = scheduler.submit("same", "/solve", fn)
            second = scheduler.submit("same", "/solve", fn)
            return await asyncio.gather(first, second)

        first, second = run(scenario)
        assert len(calls) == 1
        assert first.body == second.body
        assert first.coalesced is False
        assert second.coalesced is True

    def test_completed_key_runs_fresh_again(self):
        calls = []

        def fn():
            calls.append(1)
            return {"v": len(calls)}, 1

        async def scenario(scheduler):
            await scheduler.submit("same", "/solve", fn)
            return await scheduler.submit("same", "/solve", fn)

        result = run(scenario)
        assert len(calls) == 2
        assert result.coalesced is False


class TestStore:
    def test_read_through_serves_stored_bytes_without_executing(
        self, tmp_result_store
    ):
        stored = b'{"answer":1}\n'
        tmp_result_store.record_response("key", stored, endpoint="/solve")

        def never():
            raise AssertionError("stored key must not execute")

        async def scenario(scheduler):
            return await scheduler.submit("key", "/solve", never)

        result = run(scenario, store=tmp_result_store)
        assert result.from_store is True
        assert result.body == stored

    def test_write_behind_persists_after_the_response(
        self, tmp_result_store
    ):
        async def scenario(scheduler):
            result = await scheduler.submit(
                "key", "/solve", job({"v": 9})
            )
            for _ in range(100):  # the persist trails the response
                if tmp_result_store.get_response("key") is not None:
                    break
                await asyncio.sleep(0.01)
            return result

        result = run(scenario, store=tmp_result_store)
        assert tmp_result_store.get_response("key") == result.body

    def test_persist_failure_degrades_cache_not_response(
        self, tmp_result_store
    ):
        def broken_record(*args, **kwargs):
            raise RuntimeError("disk full")

        tmp_result_store.record_response = broken_record

        async def scenario(scheduler):
            return await scheduler.submit("key", "/solve", job({"v": 1}))

        result = run(scenario, store=tmp_result_store)
        assert json.loads(result.body) == {"v": 1}


class TestAdmission:
    def test_full_queue_rejects_before_admission(self):
        def slow():
            time.sleep(0.2)
            return {"v": 1}, 1

        async def scenario(scheduler):
            first = scheduler.submit("k1", "/solve", slow)
            await asyncio.sleep(0.05)  # the worker is now busy on k1
            second = scheduler.submit("k2", "/solve", job({"v": 2}))
            with pytest.raises(Backpressure):
                scheduler.submit("k3", "/solve", job({"v": 3}))
            results = await asyncio.gather(first, second)
            return results, scheduler.stats.rejected

        results, rejected = run(
            scenario, queue_limit=1, max_batch=1, batch_window=0.0
        )
        # The rejection dropped nothing that was admitted.
        assert [json.loads(r.body) for r in results] == [{"v": 1}, {"v": 2}]
        assert rejected == 1

    def test_close_fails_queued_jobs_and_closes_backend(self):
        backend = DummyBackend()

        def slow():
            time.sleep(0.2)
            return {"v": 1}, 1

        async def go():
            scheduler = BatchScheduler(
                backend=backend, queue_limit=4, max_batch=1,
                batch_window=0.0,
            )
            scheduler.start()
            running = scheduler.submit("k1", "/solve", slow)
            await asyncio.sleep(0.05)
            queued = scheduler.submit("k2", "/solve", job({"v": 2}))
            await scheduler.close()
            # The in-flight job finished (the executor drains before
            # shutdown, and the settle callback lands on the next loop
            # tick); the queued one failed loudly.
            assert json.loads((await running).body) == {"v": 1}
            with pytest.raises(SchedulerClosed):
                await queued
            with pytest.raises(SchedulerClosed):
                scheduler.submit("k3", "/solve", job({"v": 3}))

        asyncio.run(go())
        assert backend.closed is True
