"""The serve suite's synchronous HTTP client (shared helper)."""

import http.client
import json


class Client:
    """A one-request-per-connection synchronous HTTP client.

    Deliberately separate from the async ``repro.serve.load._Client``
    the harness uses, so these tests exercise the server against an
    independent implementation of the protocol.
    """

    def __init__(self, address):
        self.host, self.port = address

    def request(self, method, path, payload=None, timeout=120):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, headers, data
        finally:
            conn.close()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def post_json(self, path, payload):
        status, headers, data = self.post(path, payload)
        return status, headers, json.loads(data)
