"""HTTP conformance: the service vs. the direct library calls.

Every compatible registry cell is exercised over the wire at its
cheapest quick-grid parameter, on all three compute endpoints, and the
response payload must reproduce the direct
:func:`~repro.model.runner.solve_and_check` /
:func:`~repro.montecarlo.engine.run_trials` / adversary results field
for field.  A hypothesis sweep then replays a small mixed workload in
arbitrary concurrent arrival orders and requires bitwise-identical
bodies — the request-order-independence half of the DESIGN.md §13.4
determinism argument.
"""

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.backends import get_backend
from repro.model.runner import solve_and_check
from repro.montecarlo.engine import QUICK_POLICY, run_trials
from repro.registry import ADVERSARIES, iter_compatible, load_components

load_components()
CELLS = list(iter_compatible())
CELL_IDS = [f"{c.algorithm.name}|{c.family.name}" for c in CELLS]
ENTRIES = list(ADVERSARIES)
ENTRY_IDS = [e.name for e in ENTRIES]

# The exact policy the service resolves from this spec: QUICK_POLICY
# with the three count knobs overridden (see service._policy_from).
POLICY_SPEC = {"quick": True, "min_trials": 4, "max_trials": 8,
               "batch_size": 4}
POLICY = replace(QUICK_POLICY, min_trials=4, max_trials=8, batch_size=4)


@pytest.fixture(scope="module")
def direct():
    """The reference backend for the direct (non-HTTP) computations."""
    backend = get_backend("serial")
    yield backend
    backend.close()


def cell_payload(cell):
    return {
        "algorithm": cell.algorithm.name,
        "family": cell.family.name,
        "problem": cell.problem.name,
        "param": repr(cell.family.quick[0]),
    }


class TestSolveConformance:
    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_every_cell_matches_solve_and_check(self, server, direct, cell):
        status, _, body = server.post_json("/solve", cell_payload(cell))
        assert status == 200

        instance = cell.family.instance(cell.family.quick[0])
        report = solve_and_check(
            cell.problem.make(),
            instance,
            cell.algorithm.make(),
            seed=cell.algorithm.seed,
            backend=direct,
        )
        assert body["valid"] is report.valid
        assert body["seed"] == cell.algorithm.seed
        assert body["instance"] == instance.name
        assert body["n"] == instance.n
        assert body["violations"] == [str(v) for v in report.violations[:5]]
        assert body["result"] == {
            "max_volume": report.run.max_volume,
            "mean_volume": report.run.mean_volume,
            "max_distance": report.run.max_distance,
            "max_queries": report.run.max_queries,
            "truncated_nodes": len(report.run.truncated_nodes),
        }


class TestMcConformance:
    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_every_cell_matches_run_trials(self, server, direct, cell):
        status, _, body = server.post_json(
            "/mc", cell_payload(cell) | {"policy": POLICY_SPEC}
        )
        assert status == 200

        result = run_trials(
            cell.problem.make(),
            cell.family.instance(cell.family.quick[0]),
            cell.algorithm.make(),
            POLICY,
            base_seed=cell.algorithm.seed,
            backend=direct,
        )
        expected = result.to_payload()
        expected.pop("elapsed")  # provenance, not result
        assert body["base_seed"] == cell.algorithm.seed
        assert body["policy"] == POLICY.describe()
        for field, value in expected.items():
            assert body[field] == value, field


class TestAdversaryConformance:
    @pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
    def test_every_adversary_matches_timed_run(self, server, direct, entry):
        budget = min(entry.quick)
        status, _, body = server.post_json(
            "/adversary", {"adversary": entry.name, "budget": budget}
        )
        assert status == 200

        adversary = entry.make(None)
        run = adversary.timed_run(budget)
        point = run.point()
        point.pop("elapsed", None)
        for field, value in point.items():
            assert body[field] == value, field
        assert body["transcript_events"] == len(run.transcript)
        assert body["verified"] is adversary.verify(run, backend=direct)
        assert body["detail"] == {
            k: v
            for k, v in run.detail.items()
            if isinstance(v, (int, float, str, bool, type(None)))
        }


# ----------------------------------------------------------------------
# request-order independence
# ----------------------------------------------------------------------
def _mixed_workload():
    """A small cross-endpoint mix with distinct request keys."""
    picks = [CELLS[0], CELLS[len(CELLS) // 2], CELLS[-1]]
    mix = [("/solve", cell_payload(cell)) for cell in picks]
    mix.append(("/mc", cell_payload(CELLS[1]) | {"policy": POLICY_SPEC}))
    mix.append(("/adversary", {
        "adversary": ENTRIES[-1].name, "budget": min(ENTRIES[-1].quick),
    }))
    return mix


MIX = _mixed_workload()


@pytest.fixture(scope="module")
def baseline(server):
    """Each mixed request's canonical body, measured sequentially."""
    bodies = {}
    for index, (path, payload) in enumerate(MIX):
        status, _, body = server.post(path, payload)
        assert status == 200
        bodies[index] = body
    return bodies


class TestOrderIndependence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(order=st.permutations(list(range(len(MIX)))))
    def test_concurrent_arrival_order_never_changes_a_body(
        self, server, baseline, order
    ):
        with ThreadPoolExecutor(max_workers=len(order)) as pool:
            futures = {
                index: pool.submit(server.post, *MIX[index])
                for index in order
            }
            results = {i: f.result() for i, f in futures.items()}
        for index, (status, _, body) in results.items():
            assert status == 200
            assert body == baseline[index]
