"""Tests for tail bounds, complexity fitting and landscape rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity_fit import (
    GROWTH_CLASSES,
    SweepMeasurement,
    fit_exponent,
    fit_growth,
    format_sweep_row,
    log_star,
)
from repro.analysis.landscape import (
    AXIS,
    ContributionLine,
    LandscapePoint,
    axis_position,
    render_contributions,
    render_landscape,
)
from repro.analysis.tail_bounds import (
    chernoff_lower,
    chernoff_upper,
    monte_carlo_binomial_tail,
    monte_carlo_negative_binomial_tail,
    negative_binomial_tail,
    rw_to_leaf_failure_bound,
)


class TestTailBounds:
    def test_chernoff_upper_monotone_in_delta(self):
        assert chernoff_upper(100, 0.5) < chernoff_upper(100, 0.1)

    def test_chernoff_bounds_empirical_upper(self):
        m, p, delta = 400, 0.5, 0.3
        mu = m * p
        empirical = monte_carlo_binomial_tail(
            m, p, (1 + delta) * mu, trials=2000, seed=1, direction="upper"
        )
        assert empirical <= chernoff_upper(mu, delta) + 0.02

    def test_chernoff_bounds_empirical_lower(self):
        m, p, delta = 400, 0.5, 0.3
        mu = m * p
        empirical = monte_carlo_binomial_tail(
            m, p, (1 - delta) * mu, trials=2000, seed=2, direction="lower"
        )
        assert empirical <= chernoff_lower(mu, delta) + 0.02

    def test_negative_binomial_bound_holds(self):
        """Lemma 2.12 against simulation."""
        k, p, c = 10, 0.5, 3.0
        bound = negative_binomial_tail(k, p, c)
        empirical = monte_carlo_negative_binomial_tail(
            k, p, cutoff=c * k / p, trials=4000, seed=3
        )
        assert empirical <= bound + 0.02

    def test_rw_failure_bound_shrinks(self):
        assert rw_to_leaf_failure_bound(2**16) < rw_to_leaf_failure_bound(2**8)
        assert rw_to_leaf_failure_bound(2**20) < 1e-6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper(10, 1.5)
        with pytest.raises(ValueError):
            negative_binomial_tail(0, 0.5, 2)
        with pytest.raises(ValueError):
            negative_binomial_tail(5, 0.5, 1.0)


class TestLogStar:
    def test_values(self):
        assert log_star(2) == 1.0
        assert log_star(16) == 3.0
        assert log_star(2**16) == 4.0

    def test_extremely_slow_growth(self):
        assert log_star(2**64) <= 6.0


class TestFitGrowth:
    def test_recovers_log(self):
        ns = [2**i for i in range(4, 14)]
        costs = [3 * math.log2(n) for n in ns]
        fit = fit_growth(ns, costs)
        assert fit.best == "log n"
        assert 2.5 <= fit.multiplier <= 3.5

    def test_recovers_sqrt(self):
        ns = [2**i for i in range(6, 16)]
        costs = [2 * n**0.5 for n in ns]
        assert fit_growth(ns, costs).best == "n^{1/2}"

    def test_recovers_linear(self):
        ns = [100, 400, 1600, 6400]
        costs = [0.9 * n for n in ns]
        assert fit_growth(ns, costs).best == "n"

    def test_recovers_constant(self):
        ns = [10, 100, 1000, 10000]
        costs = [7, 7, 7, 7]
        assert fit_growth(ns, costs).best == "1"

    def test_noise_tolerance(self):
        import random

        rnd = random.Random(0)
        ns = [2**i for i in range(5, 15)]
        costs = [math.log2(n) * rnd.uniform(0.9, 1.1) for n in ns]
        assert fit_growth(ns, costs).best in ("log n", "log log n")

    def test_candidate_restriction(self):
        ns = [16, 64, 256]
        costs = [4, 6, 8]
        fit = fit_growth(ns, costs, candidates=["1", "n"])
        assert fit.best in ("1", "n")

    def test_exponent_fit(self):
        ns = [2**i for i in range(5, 15)]
        costs = [n**0.5 for n in ns]
        assert abs(fit_exponent(ns, costs) - 0.5) < 0.01

    def test_errors(self):
        with pytest.raises(ValueError):
            fit_growth([1], [1])
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1])
        with pytest.raises(ValueError):
            fit_exponent([4, 4], [1, 2])

    def test_format_row_mentions_claimed_and_fitted(self):
        sweep = SweepMeasurement(
            label="test", ns=[4, 16], costs=[2.0, 4.0], claimed="log n"
        )
        row = format_sweep_row(sweep, sweep.fitted())
        assert "claimed" in row and "fitted" in row


class TestLandscape:
    def test_axis_positions(self):
        assert axis_position("1") == 0
        assert axis_position("n") == len(AXIS) - 1
        assert axis_position("n/log n") == axis_position("n")

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            axis_position("ackermann")

    def test_render_contains_markers(self):
        points = [
            LandscapePoint("trivial", "1", "1"),
            LandscapePoint("leaf-coloring", "log n", "log n"),
        ]
        art = render_landscape(points, "Figure 1")
        assert "Figure 1" in art
        assert "a: trivial" in art
        assert "b: leaf-coloring" in art

    def test_render_contributions(self):
        lines = [
            ContributionLine("LeafColoring", "log n", "n", "log n", "log n")
        ]
        text = render_contributions(lines)
        assert "LeafColoring" in text


@given(st.integers(min_value=8, max_value=2**20))
@settings(max_examples=30, deadline=None)
def test_growth_classes_positive(n):
    for f in GROWTH_CLASSES.values():
        assert f(n) > 0
