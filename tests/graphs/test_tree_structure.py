"""Tests for consistency classification, G_T, levels and G_k backbones."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import tree_structure as ts
from repro.graphs.generators import (
    corrupt_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
    random_tree_instance,
)
from repro.graphs.labelings import Instance


def topo_of(instance: Instance) -> ts.InstanceTopology:
    return ts.InstanceTopology(instance)


class TestClassification:
    def test_complete_tree_statuses(self):
        inst = leaf_coloring_instance(3)
        status = ts.classify_all(inst)
        leaves = set(inst.meta["leaves"])
        for node, s in status.items():
            if node in leaves:
                assert s == ts.LEAF
            else:
                assert s == ts.INTERNAL

    def test_single_node_is_inconsistent(self):
        inst = random_tree_instance(1, rng=random.Random(0), branch_probability=0)
        status = ts.classify_all(inst)
        assert set(status.values()) == {ts.INCONSISTENT}

    def test_corruption_creates_inconsistent_nodes(self):
        inst = leaf_coloring_instance(4)
        bad = corrupt_instance(inst, fraction=0.3, rng=random.Random(1))
        status = ts.classify_all(bad)
        assert ts.INCONSISTENT in status.values()

    def test_internal_requires_reciprocity(self):
        inst = leaf_coloring_instance(2)
        root = inst.meta["root"]
        t = topo_of(inst)
        lc = ts.left_child_node(t, root)
        inst.labeling[lc].parent = None  # break reciprocity
        assert not ts.is_internal(topo_of(inst), root)

    def test_internal_requires_distinct_child_ports(self):
        inst = leaf_coloring_instance(2)
        root = inst.meta["root"]
        inst.labeling[root].right_child = inst.labeling[root].left_child
        assert not ts.is_internal(topo_of(inst), root)

    def test_parent_port_must_differ_from_children(self):
        inst = leaf_coloring_instance(2)
        root = inst.meta["root"]
        inst.labeling[root].parent = inst.labeling[root].left_child
        assert not ts.is_internal(topo_of(inst), root)

    def test_leaf_needs_internal_parent(self):
        inst = leaf_coloring_instance(2)
        t = topo_of(inst)
        leaf = inst.meta["leaves"][0]
        assert ts.is_leaf(t, leaf)
        parent = ts.parent_node(t, leaf)
        inst.labeling[parent].left_child = None
        t2 = topo_of(inst)
        assert not ts.is_leaf(t2, leaf)


class TestGT:
    def test_observation_37_degrees_on_clean_instances(self):
        """Observation 3.7: out-degree 0 or 2, in-degree 0 or 1."""
        for seed in range(5):
            inst = random_tree_instance(60, rng=random.Random(seed))
            gt = ts.derive_gt(inst)
            for v in gt.nodes():
                assert gt.out_degree(v) in (0, 2)
                assert gt.in_degree(v) in (0, 1)

    def test_gt_children_match_lc_rc(self):
        inst = leaf_coloring_instance(3)
        gt = ts.derive_gt(inst)
        t = topo_of(inst)
        for v in gt.nodes():
            if gt.status[v] == ts.INTERNAL:
                expected = {ts.left_child_node(t, v), ts.right_child_node(t, v)}
                assert set(gt.children[v]) == expected

    def test_cycle_instance_has_one_gt_cycle(self):
        inst = random_tree_instance(
            80, rng=random.Random(3), with_cycle=True, cycle_length=6
        )
        gt = ts.derive_gt(inst)
        # Follow parent pointers upward from any node: must terminate or loop.
        loops = set()
        for start in gt.nodes():
            seen = {}
            v = start
            steps = 0
            while v is not None and v not in seen:
                seen[v] = steps
                v = gt.parent.get(v)
                steps += 1
            if v is not None:
                loops.add(v)
        assert loops, "expected a reachable cycle"

    def test_leaf_path_lemma_3_8(self):
        """Lemma 3.8: internal nodes reach a leaf within log n child-hops."""
        inst = leaf_coloring_instance(6)
        n = inst.graph.num_nodes
        limit = int(math.log2(n)) + 1
        t = topo_of(inst)
        gt = ts.derive_gt(inst)
        for v in gt.nodes():
            if gt.status[v] != ts.INTERNAL:
                continue
            path = ts.descendant_leaf_path(t, v, limit)
            assert path is not None
            assert path[0] == v
            assert ts.is_leaf(t, path[-1])
            assert len(path) - 1 <= limit

    def test_leaf_path_prefers_leftmost(self):
        inst = leaf_coloring_instance(2)
        root = inst.meta["root"]
        t = topo_of(inst)
        path = ts.descendant_leaf_path(t, root, 5)
        # In a complete tree the left-most deepest path is all left children.
        assert path is not None
        for parent, child in zip(path, path[1:]):
            assert ts.left_child_node(t, parent) == child


class TestLevels:
    def test_levels_in_hierarchical_instance(self):
        k = 3
        inst = hierarchical_thc_instance(k, 4, rng=random.Random(0))
        t = topo_of(inst)
        root = inst.meta["root"]
        assert ts.level_of(t, root, cap=k) == k

    def test_level_capped(self):
        # A long RC chain exceeds any cap.
        inst = hierarchical_thc_instance(4, 2, rng=random.Random(0))
        t = topo_of(inst)
        root = inst.meta["root"]
        assert ts.level_of(t, root, cap=2) == 3  # reported as cap+1

    def test_explicit_level_wins(self):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(0))
        t = topo_of(inst)
        for node in inst.graph.nodes():
            lvl = inst.label(node).level
            assert ts.level_of(t, node, cap=5) == lvl

    def test_level_one_iff_no_rc(self):
        inst = hierarchical_thc_instance(2, 4, rng=random.Random(1))
        t = topo_of(inst)
        for node in inst.graph.nodes():
            lvl = ts.level_of(t, node, cap=2)
            if lvl == 1:
                assert ts.right_child_node(t, node) is None


class TestBackbones:
    def test_backbones_partition_balanced_instance(self):
        k, m = 3, 4
        inst = hierarchical_thc_instance(k, m, rng=random.Random(2))
        backbones = ts.all_backbones(inst, cap=k)
        sizes = [len(b) for b in backbones]
        assert all(s == m for s in sizes)
        total = sum(sizes)
        assert total == inst.graph.num_nodes

    def test_backbone_levels(self):
        k, m = 2, 5
        inst = hierarchical_thc_instance(k, m, rng=random.Random(2))
        backbones = ts.all_backbones(inst, cap=k)
        level_counts = {}
        for b in backbones:
            level_counts[b.level] = level_counts.get(b.level, 0) + 1
        # one level-2 backbone, m level-1 backbones
        assert level_counts == {2: 1, 1: m}

    def test_backbone_root_and_leaf(self):
        inst = hierarchical_thc_instance(2, 4, rng=random.Random(0))
        t = topo_of(inst)
        for b in ts.all_backbones(inst, cap=2):
            assert not b.is_cycle
            assert ts.is_level_leaf(t, b.leaf)
            assert ts.is_level_root(t, b.root)

    def test_backbone_limit_truncates(self):
        inst = hierarchical_thc_instance(2, 10, rng=random.Random(0))
        t = topo_of(inst)
        root = inst.meta["root"]
        segment = ts.backbone_of(t, root, cap=2, limit=3)
        assert len(segment) <= 7

    def test_hung_subtree_root(self):
        k, m = 2, 3
        inst = hierarchical_thc_instance(k, m, rng=random.Random(0))
        t = topo_of(inst)
        root = inst.meta["root"]
        child = ts.hung_subtree_root(t, root, cap=k)
        assert child is not None
        assert ts.level_of(t, child, cap=k) == 1

    def test_hierarchy_subtree_size(self):
        k, m = 2, 4
        inst = hierarchical_thc_instance(k, m, rng=random.Random(0))
        root = inst.meta["root"]
        size = ts.hierarchy_subtree_size(inst, root, cap=k)
        assert size == inst.graph.num_nodes  # m + m*m


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_hierarchical_size_formula(k, m):
    """n = m + m*n_{k-1}: the balanced construction has Θ(m^k) nodes."""
    inst = hierarchical_thc_instance(k, m, rng=random.Random(0))
    expected = 0
    for level in range(1, k + 1):
        expected = m * (1 + expected)
    assert inst.graph.num_nodes == expected


@given(st.integers(min_value=0, max_value=6))
@settings(max_examples=10, deadline=None)
def test_complete_tree_classification_property(depth):
    inst = leaf_coloring_instance(depth)
    status = ts.classify_all(inst)
    n = inst.graph.num_nodes
    internal = sum(1 for s in status.values() if s == ts.INTERNAL)
    leaves = sum(1 for s in status.values() if s == ts.LEAF)
    if depth == 0:
        assert internal == 0
    else:
        assert internal == 2**depth - 1
        assert leaves == 2**depth
        assert internal + leaves == n
