"""Unit and property tests for :mod:`repro.graphs.port_graph`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.port_graph import PortGraph, PortGraphError


def build_triangle() -> PortGraph:
    g = PortGraph(max_degree=3)
    for v in (1, 2, 3):
        g.add_node(v)
    g.add_edge(1, 1, 2, 1)
    g.add_edge(2, 2, 3, 1)
    g.add_edge(3, 2, 1, 2)
    return g


class TestConstruction:
    def test_add_node_and_ports(self):
        g = PortGraph(max_degree=3)
        g.add_node(7, num_ports=2)
        assert g.has_node(7)
        assert g.num_ports(7) == 2
        assert g.degree(7) == 0
        assert g.dangling_ports(7) == [1, 2]

    def test_duplicate_node_rejected(self):
        g = PortGraph()
        g.add_node(1)
        with pytest.raises(PortGraphError):
            g.add_node(1)

    def test_max_degree_enforced_on_ports(self):
        g = PortGraph(max_degree=2)
        g.add_node(1)
        with pytest.raises(PortGraphError):
            g.reserve_port(1, 3)

    def test_invalid_max_degree(self):
        with pytest.raises(PortGraphError):
            PortGraph(max_degree=0)

    def test_add_edge_symmetric(self):
        g = build_triangle()
        assert g.neighbor_at(1, 1) == 2
        assert g.neighbor_at(2, 1) == 1
        assert g.endpoint_port(1, 1) == 1
        assert g.port_to(3, 1) == 2

    def test_self_loop_rejected(self):
        g = PortGraph()
        g.add_node(1)
        with pytest.raises(PortGraphError):
            g.add_edge(1, 1, 1, 2)

    def test_parallel_edge_rejected(self):
        g = PortGraph()
        g.add_node(1)
        g.add_node(2)
        g.add_edge(1, 1, 2, 1)
        with pytest.raises(PortGraphError):
            g.add_edge(1, 2, 2, 2)

    def test_port_reuse_rejected(self):
        g = PortGraph()
        for v in (1, 2, 3):
            g.add_node(v)
        g.add_edge(1, 1, 2, 1)
        with pytest.raises(PortGraphError):
            g.add_edge(1, 1, 3, 1)

    def test_unknown_node_raises(self):
        g = PortGraph()
        with pytest.raises(PortGraphError):
            g.degree(42)


class TestQueries:
    def test_edges_enumerated_once(self):
        g = build_triangle()
        edges = {(e.u, e.v) for e in g.edges()}
        assert edges == {(1, 2), (2, 3), (1, 3)}
        assert g.num_edges() == 3

    def test_neighbors_in_port_order(self):
        g = build_triangle()
        assert g.neighbors(1) == [2, 3]

    def test_bfs_distances(self):
        g = build_triangle()
        assert g.bfs_distances(1) == {1: 0, 2: 1, 3: 1}

    def test_bfs_truncated(self):
        g = PortGraph()
        for v in (1, 2, 3):
            g.add_node(v)
        g.add_edge(1, 1, 2, 1)
        g.add_edge(2, 2, 3, 1)
        assert g.bfs_distances(1, max_distance=1) == {1: 0, 2: 1}

    def test_ball(self):
        g = build_triangle()
        assert g.ball(2, 0) == [2]
        assert g.ball(2, 1) == [1, 2, 3]

    def test_connected_components(self):
        g = PortGraph()
        for v in range(1, 5):
            g.add_node(v)
        g.add_edge(1, 1, 2, 1)
        comps = g.connected_components()
        assert sorted(map(tuple, comps)) == [(1, 2), (3,), (4,)]

    def test_validate_accepts_good_graph(self):
        build_triangle().validate()

    def test_copy_is_independent(self):
        g = build_triangle()
        h = g.copy()
        h.add_node(99)
        assert not g.has_node(99)
        assert h.has_node(99)

    def test_to_networkx_roundtrip(self):
        g = build_triangle()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 3


@st.composite
def random_port_graphs(draw):
    """Random bounded-degree graphs built through the public API."""
    n = draw(st.integers(min_value=1, max_value=24))
    max_degree = draw(st.integers(min_value=2, max_value=5))
    g = PortGraph(max_degree=max_degree)
    for v in range(1, n + 1):
        g.add_node(v)
    attempts = draw(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=n),
            st.integers(min_value=1, max_value=n),
        ),
        max_size=40,
    ))
    for u, v in attempts:
        if u == v or g.port_to(u, v) is not None:
            continue
        if g.num_ports(u) >= max_degree or g.num_ports(v) >= max_degree:
            continue
        if g.dangling_ports(u) or g.dangling_ports(v):
            u_port = (g.dangling_ports(u) or [g.num_ports(u) + 1])[0]
            v_port = (g.dangling_ports(v) or [g.num_ports(v) + 1])[0]
        else:
            u_port = g.num_ports(u) + 1
            v_port = g.num_ports(v) + 1
        g.add_edge(u, u_port, v, v_port)
    return g


@given(random_port_graphs())
@settings(max_examples=60, deadline=None)
def test_random_graphs_validate(g):
    g.validate()


@given(random_port_graphs())
@settings(max_examples=60, deadline=None)
def test_bfs_matches_networkx(g):
    import networkx as nx

    nxg = g.to_networkx()
    for source in list(g.nodes())[:3]:
        ours = g.bfs_distances(source)
        theirs = nx.single_source_shortest_path_length(nxg, source)
        assert ours == dict(theirs)


@given(random_port_graphs())
@settings(max_examples=60, deadline=None)
def test_port_symmetry_property(g):
    for e in g.edges():
        assert g.neighbor_at(e.u, e.u_port) == e.v
        assert g.neighbor_at(e.v, e.v_port) == e.u
        assert g.endpoint_port(e.u, e.u_port) == e.v_port
        rev = e.reversed()
        assert rev.u == e.v and rev.u_port == e.v_port
