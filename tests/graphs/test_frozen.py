"""FrozenPortGraph: CSR packing must preserve every PortGraph answer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import complete_binary_tree, cycle_graph, path_graph
from repro.graphs.frozen import FrozenPortGraph
from repro.graphs.port_graph import PortGraph, PortGraphError


@st.composite
def random_port_graphs(draw):
    """Random bounded-degree graphs built through the public API."""
    n = draw(st.integers(min_value=1, max_value=24))
    max_degree = draw(st.integers(min_value=2, max_value=5))
    g = PortGraph(max_degree=max_degree)
    for v in range(1, n + 1):
        g.add_node(v)
    attempts = draw(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=n),
            st.integers(min_value=1, max_value=n),
        ),
        max_size=40,
    ))
    for u, v in attempts:
        if u == v or g.port_to(u, v) is not None:
            continue
        if g.num_ports(u) >= max_degree or g.num_ports(v) >= max_degree:
            continue
        u_port = (g.dangling_ports(u) or [g.num_ports(u) + 1])[0]
        v_port = (g.dangling_ports(v) or [g.num_ports(v) + 1])[0]
        g.add_edge(u, u_port, v, v_port)
    # Some reserved-but-dangling ports, as the adversarial builders use.
    if draw(st.booleans()) and g.num_ports(1) < max_degree:
        g.reserve_port(1, g.num_ports(1) + 1)
    return g


def assert_same_answers(g: PortGraph, f: FrozenPortGraph) -> None:
    assert f.max_degree == g.max_degree
    assert f.num_nodes == g.num_nodes
    assert len(f) == len(g)
    assert list(f.nodes()) == list(g.nodes())
    assert f.num_edges() == g.num_edges()
    for node in g.nodes():
        assert node in f
        assert f.has_node(node)
        assert f.num_ports(node) == g.num_ports(node)
        assert f.degree(node) == g.degree(node)
        assert f.neighbors(node) == g.neighbors(node)
        assert f.dangling_ports(node) == g.dangling_ports(node)
        for port in range(1, g.num_ports(node) + 1):
            assert f.neighbor_at(node, port) == g.neighbor_at(node, port)
            assert f.endpoint_port(node, port) == g.endpoint_port(node, port)
        for other in g.nodes():
            assert f.port_to(node, other) == g.port_to(node, other)
    assert list(f.edges()) == list(g.edges())


class TestFrozenEquivalence:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(9),
            cycle_graph(8),
            complete_binary_tree(3).graph,
            PortGraph(max_degree=2),
        ],
        ids=["path", "cycle", "tree", "empty"],
    )
    def test_fixed_topologies(self, graph):
        frozen = graph.freeze()
        assert_same_answers(graph, frozen)
        frozen.validate()

    @given(random_port_graphs())
    @settings(max_examples=60, deadline=None)
    def test_random_graphs(self, g):
        f = g.freeze()
        assert_same_answers(g, f)
        f.validate()
        for source in list(g.nodes())[:3]:
            assert f.bfs_distances(source) == g.bfs_distances(source)
            assert f.ball(source, 2) == g.ball(source, 2)
        assert f.connected_components() == g.connected_components()

    def test_edges_identical_including_ports(self):
        g = complete_binary_tree(3).graph
        frozen_edges = list(g.freeze().edges())
        for ours, theirs in zip(frozen_edges, g.edges()):
            assert (ours.u, ours.v, ours.u_port, ours.v_port) == (
                theirs.u, theirs.v, theirs.u_port, theirs.v_port
            )


class TestFrozenSemantics:
    def test_freeze_is_a_snapshot(self):
        g = path_graph(3)
        f = g.freeze()
        g.add_node(99, num_ports=1)
        g.add_edge(3, 2, 99, 1)
        assert 99 not in f
        assert f.num_edges() == 2
        assert g.num_edges() == 3

    def test_freeze_of_frozen_is_identity(self):
        f = path_graph(3).freeze()
        assert f.freeze() is f
        assert f.copy() is f

    def test_mutation_raises(self):
        f = path_graph(3).freeze()
        with pytest.raises(PortGraphError):
            f.add_node(10)
        with pytest.raises(PortGraphError):
            f.reserve_port(1, 2)
        with pytest.raises(PortGraphError):
            f.add_edge(1, 2, 3, 2)

    def test_unknown_node_and_port_errors_match(self):
        g = path_graph(3)
        f = g.freeze()
        for fn in ("num_ports", "degree", "neighbors", "dangling_ports"):
            with pytest.raises(PortGraphError):
                getattr(f, fn)(42)
        with pytest.raises(PortGraphError):
            f.neighbor_at(1, 5)
        with pytest.raises(PortGraphError):
            f.endpoint_port(1, 0)

    def test_thaw_roundtrip(self):
        g = complete_binary_tree(3).graph
        thawed = g.freeze().thaw()
        assert_same_answers(thawed, g.freeze())
        thawed.validate()
        thawed.add_node(999)  # mutable again
        assert 999 in thawed

    def test_meta_survives_freeze_thaw_roundtrip(self):
        """Regression: thaw() used to drop graph metadata, so compiled
        disjointness embeddings lost their coordinate map."""
        g = path_graph(3)
        g.meta["coordinate_of"] = {1: 0, 2: 1}
        g.meta["root"] = 1
        frozen = g.freeze()
        assert frozen.meta == g.meta
        thawed = frozen.thaw()
        assert thawed.meta == g.meta
        assert thawed.freeze().meta == g.meta
        # independent copies: mutating one side must not leak
        thawed.meta["root"] = 99
        assert frozen.meta["root"] == 1
        assert g.meta["root"] == 1
        assert g.copy().meta == g.meta

    def test_disjointness_embedding_meta_survives_compilation(self):
        from repro.graphs.generators import disjointness_embedding

        inst = disjointness_embedding([1, 0], [0, 1])
        coordinate_of = inst.graph.meta["coordinate_of"]
        assert coordinate_of == inst.meta["coordinate_of"]
        round_tripped = inst.graph.freeze().thaw().freeze()
        assert round_tripped.meta["coordinate_of"] == coordinate_of
        assert round_tripped.meta["root"] == inst.meta["root"]

    def test_csr_arrays_are_consistent(self):
        g = cycle_graph(6)
        f = g.freeze()
        assert len(f.port_offsets) == f.num_nodes + 1
        assert f.port_offsets[-1] == len(f.port_endpoints)
        assert len(f.port_back_ports) == len(f.port_endpoints)
        assert sum(f.degrees) == 2 * f.num_edges()
        for node in g.nodes():
            assert f.node_ids()[f.dense_index(node)] == node


class TestPortGraphIncrementalCounts:
    """num_edges/degree are maintained incrementally; recounts must agree."""

    @given(random_port_graphs())
    @settings(max_examples=60, deadline=None)
    def test_counts_match_recount(self, g):
        assert g.num_edges() == sum(1 for _ in g.edges())
        for node in g.nodes():
            slots = sum(
                1
                for p in range(1, g.num_ports(node) + 1)
                if g.neighbor_at(node, p) is not None
            )
            assert g.degree(node) == slots

    def test_copy_preserves_counts(self):
        g = cycle_graph(8)
        clone = g.copy()
        assert clone.num_edges() == g.num_edges()
        clone.add_node(100, num_ports=1)
        clone.add_edge(100, 1, 1, 3)
        assert clone.num_edges() == g.num_edges() + 1
        assert g.degree(1) == 2 and clone.degree(1) == 3

    def test_parallel_edge_still_rejected(self):
        g = PortGraph(max_degree=3)
        g.add_node(1)
        g.add_node(2)
        g.add_edge(1, 1, 2, 1)
        with pytest.raises(PortGraphError, match="parallel"):
            g.add_edge(1, 2, 2, 2)
