"""Tests for the instance generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import tree_structure as ts
from repro.graphs.builders import (
    add_lateral_edges,
    complete_binary_tree,
    cycle_graph,
    path_graph,
    two_trees_with_bridge,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    cycle_instance,
    disjointness_embedding,
    hard_leaf_coloring_instance,
    hh_thc_instance,
    hybrid_thc_instance,
    hierarchical_thc_instance,
    leaf_coloring_instance,
    perturbed_leaf_coloring_instance,
    random_regular_instance,
    random_tree_instance,
    relay_instance,
)
from repro.graphs.labelings import BLUE, RED


class TestBuilders:
    def test_complete_tree_shape(self):
        topo = complete_binary_tree(3)
        assert topo.graph.num_nodes == 15
        assert topo.root == 1
        assert len(topo.leaves) == 8
        topo.graph.validate()

    def test_heap_ordering(self):
        topo = complete_binary_tree(3)
        for d, row in enumerate(topo.levels):
            assert row == list(range(2**d, 2 ** (d + 1)))

    def test_lateral_edges(self):
        topo = complete_binary_tree(2, max_degree=5)
        add_lateral_edges(topo)
        topo.graph.validate()
        row = topo.levels[1]
        assert topo.graph.port_to(row[0], row[1]) == 5
        assert topo.graph.port_to(row[1], row[0]) == 4

    def test_path_and_cycle(self):
        p = path_graph(5)
        assert p.num_edges() == 4
        p.validate()
        c = cycle_graph(5)
        assert c.num_edges() == 5
        c.validate()
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_two_trees_with_bridge(self):
        g, left, right = two_trees_with_bridge(2)
        assert g.num_nodes == 14
        assert g.port_to(left.root, right.root) == 3
        g.validate()


class TestLeafColoringInstances:
    def test_fixed_leaf_color(self):
        inst = leaf_coloring_instance(3, leaf_color=BLUE)
        for leaf in inst.meta["leaves"]:
            assert inst.label(leaf).color == BLUE

    def test_hard_instance_unanimous(self):
        inst = hard_leaf_coloring_instance(4, rng=random.Random(7))
        chi0 = inst.meta["chi0"]
        assert chi0 in (RED, BLUE)
        for leaf in inst.meta["leaves"]:
            assert inst.label(leaf).color == chi0

    def test_random_tree_reaches_target(self):
        inst = random_tree_instance(50, rng=random.Random(0))
        assert 10 <= inst.graph.num_nodes <= 60
        inst.graph.validate()

    def test_random_tree_with_cycle_valid(self):
        inst = random_tree_instance(
            60, rng=random.Random(1), with_cycle=True, cycle_length=5
        )
        inst.graph.validate()
        # ring nodes are internal
        gt = ts.derive_gt(inst)
        assert any(s == ts.INTERNAL for s in gt.status.values())

    def test_deterministic_given_seed(self):
        a = random_tree_instance(40, rng=random.Random(5))
        b = random_tree_instance(40, rng=random.Random(5))
        assert sorted(a.graph.nodes()) == sorted(b.graph.nodes())
        assert all(
            a.label(v).color == b.label(v).color for v in a.graph.nodes()
        )


class TestBalancedTreeInstances:
    def test_compatible_instance_validates(self):
        inst = balanced_tree_instance(3)
        inst.graph.validate()
        assert inst.meta["broken"] == []

    def test_broken_instance_lists_victims(self):
        inst = balanced_tree_instance(
            3, compatible=False, rng=random.Random(0), break_count=2
        )
        assert len(inst.meta["broken"]) == 2

    def test_lateral_labels_present(self):
        inst = balanced_tree_instance(2)
        root = inst.meta["root"]
        assert inst.label(root).left_neighbor is None
        assert inst.label(root).right_neighbor is None
        leaves = inst.meta["leaves"]
        assert inst.label(leaves[1]).left_neighbor is not None


class TestDisjointnessEmbedding:
    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            disjointness_embedding([1, 0, 1], [0, 0, 0])
        with pytest.raises(ValueError):
            disjointness_embedding([1], [0, 1])

    def test_disjoint_flag(self):
        inst = disjointness_embedding([1, 0, 0, 1], [0, 1, 0, 0])
        assert inst.meta["disjoint"] == 1
        inst2 = disjointness_embedding([1, 0, 0, 1], [1, 0, 0, 0])
        assert inst2.meta["disjoint"] == 0

    def test_intersecting_coordinate_breaks_lateral_labels(self):
        a = [0, 1, 0, 0]
        b = [0, 1, 0, 0]
        inst = disjointness_embedding(a, b)
        leaves = inst.meta["leaves"]
        u1, w1 = leaves[2], leaves[3]  # coordinate i=1
        assert inst.label(u1).right_neighbor is None
        assert inst.label(w1).left_neighbor is None
        u0, w0 = leaves[0], leaves[1]
        assert inst.label(u0).right_neighbor is not None

    def test_coordinate_map_covers_all_leaves(self):
        a = [0] * 8
        b = [1] * 8
        inst = disjointness_embedding(a, b)
        cmap = inst.meta["coordinate_of"]
        assert sorted(cmap.values()) == sorted(list(range(8)) * 2)


class TestTHCInstances:
    def test_hierarchical_structure(self):
        inst = hierarchical_thc_instance(3, 3, rng=random.Random(0))
        inst.graph.validate()
        assert inst.graph.num_nodes == 3 + 3 * (3 + 3 * 3)

    def test_explicit_levels_flag(self):
        inst = hierarchical_thc_instance(
            2, 3, rng=random.Random(0), explicit_levels=True
        )
        levels = {inst.label(v).level for v in inst.graph.nodes()}
        assert levels == {1, 2}

    def test_hybrid_structure(self):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(0))
        inst.graph.validate()
        # 3 backbone nodes at level 2, each hanging a 7-node balanced tree
        assert inst.graph.num_nodes == 3 + 3 * 7
        assert len(inst.meta["bt_roots"]) == 3

    def test_hybrid_levels(self):
        inst = hybrid_thc_instance(3, 2, 1, rng=random.Random(0))
        levels = sorted({inst.label(v).level for v in inst.graph.nodes()})
        assert levels == [1, 2, 3]

    def test_hh_two_populations(self):
        inst = hh_thc_instance(2, 3, 3, 2, 1, rng=random.Random(0))
        inst.graph.validate()
        bits = {inst.label(v).bit for v in inst.graph.nodes()}
        assert bits == {0, 1}
        n0 = sum(1 for v in inst.graph.nodes() if inst.label(v).bit == 0)
        assert n0 == inst.meta["part0_nodes"]


class TestRelayAndCycleInstances:
    def test_relay_bits_and_pairing(self):
        inst = relay_instance(3, rng=random.Random(0))
        pairing = inst.meta["pairing"]
        assert len(pairing) == 8
        for u_leaf, v_leaf in pairing.items():
            assert inst.label(v_leaf).bit in (0, 1)
            assert inst.label(u_leaf).bit is None

    def test_cycle_instance_ids_shuffled(self):
        inst = cycle_instance(16, rng=random.Random(0))
        inst.graph.validate()
        ids = sorted(inst.graph.nodes())
        assert len(ids) == 16
        assert ids != list(range(1, 17))  # shuffled into a larger range
        assert max(ids) <= 64

    def test_cycle_instance_unshuffled(self):
        inst = cycle_instance(10, shuffle_ids=False)
        assert sorted(inst.graph.nodes()) == list(range(1, 11))


class TestRandomRegularInstances:
    def test_regularity_and_simplicity(self):
        inst = random_regular_instance(20, 3, rng=random.Random(1))
        inst.graph.validate()
        assert inst.graph.num_nodes == 20
        for node in inst.graph.nodes():
            assert inst.graph.degree(node) == 3
        # Simple: no self-loops or parallel edges among the 3n/2 edges.
        seen = set()
        for edge in inst.graph.edges():
            assert edge.u != edge.v
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            assert key not in seen
            seen.add(key)
        assert len(seen) == 30

    def test_deterministic_given_rng(self):
        a = random_regular_instance(16, 3, rng=random.Random(5))
        b = random_regular_instance(16, 3, rng=random.Random(5))
        assert sorted(
            (e.u, e.u_port, e.v, e.v_port) for e in a.graph.edges()
        ) == sorted((e.u, e.u_port, e.v, e.v_port) for e in b.graph.edges())

    def test_rejects_infeasible_shapes(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_instance(5, 3)
        with pytest.raises(ValueError, match="degree"):
            random_regular_instance(3, 3)

    @given(st.integers(min_value=4, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_any_even_shape_is_regular(self, n):
        n = n if (n * 3) % 2 == 0 else n + 1
        inst = random_regular_instance(n, 3, rng=random.Random(n))
        assert all(inst.graph.degree(v) == 3 for v in inst.graph.nodes())


class TestPerturbedLeafColoringInstances:
    def test_zero_rate_keeps_the_pristine_gadget(self):
        inst = perturbed_leaf_coloring_instance(4, 0.0, rng=random.Random(0))
        chi0 = inst.meta["chi0"]
        assert inst.meta["defective_leaves"] == []
        assert all(
            inst.label(leaf).color == chi0 for leaf in inst.meta["leaves"]
        )

    def test_controlled_defect_count(self):
        inst = perturbed_leaf_coloring_instance(5, 0.25, rng=random.Random(2))
        leaves = inst.meta["leaves"]
        chi0 = inst.meta["chi0"]
        defective = inst.meta["defective_leaves"]
        assert len(defective) == round(0.25 * len(leaves))
        for leaf in defective:
            assert inst.label(leaf).color != chi0
        intact = set(leaves) - set(defective)
        assert all(inst.label(leaf).color == chi0 for leaf in intact)

    def test_tiny_rate_still_perturbs_one_leaf(self):
        inst = perturbed_leaf_coloring_instance(
            3, 0.001, rng=random.Random(3)
        )
        assert len(inst.meta["defective_leaves"]) == 1

    def test_internal_nodes_stay_red(self):
        inst = perturbed_leaf_coloring_instance(4, 0.5, rng=random.Random(1))
        leaves = set(inst.meta["leaves"])
        for node in inst.graph.nodes():
            if node not in leaves:
                assert inst.label(node).color == RED

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="defect_rate"):
            perturbed_leaf_coloring_instance(3, 1.5)


@given(st.integers(min_value=2, max_value=16))
@settings(max_examples=15, deadline=None)
def test_disjointness_embedding_compatibility_iff_disjoint(n_log):
    """The labeling is globally compatible iff disj(a, b) = 1 (Prop 4.9)."""
    n = 1 << (n_log.bit_length() - 1)  # power of two <= n_log
    rnd = random.Random(n_log)
    a = [rnd.randint(0, 1) for _ in range(n)]
    b = [rnd.randint(0, 1) for _ in range(n)]
    inst = disjointness_embedding(a, b)
    intersects = any(x * y for x, y in zip(a, b))
    assert inst.meta["disjoint"] == (0 if intersects else 1)
