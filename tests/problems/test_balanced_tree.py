"""Tests for BalancedTree: compatibility, validity, disjointness link."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    balanced_tree_instance,
    disjointness_embedding,
)
from repro.graphs.labelings import BALANCED, UNBALANCED
from repro.graphs.tree_structure import InstanceTopology
from repro.lcl.verifier import validate_locally
from repro.problems.balanced_tree import (
    BalancedTree,
    compatibility_map,
    is_compatible,
    reference_solution,
)

PROBLEM = BalancedTree()


class TestCompatibility:
    def test_clean_instance_globally_compatible(self):
        inst = balanced_tree_instance(3)
        cmap = compatibility_map(inst)
        assert all(v for v in cmap.values() if v is not None)
        assert all(value is not None for value in cmap.values())

    def test_broken_instance_has_incompatible_node(self):
        inst = balanced_tree_instance(3, compatible=False, rng=random.Random(0))
        cmap = compatibility_map(inst)
        assert any(value is False for value in cmap.values())

    def test_agreement_violation_detected(self):
        inst = balanced_tree_instance(2)
        # Point a node's RN somewhere that does not point back.
        row = [v for v in inst.graph.nodes()]
        t = InstanceTopology(inst)
        # node 2 is the root's left child; RN(2)=3, LN(3)=2 normally.
        inst.labeling[3].left_neighbor = None
        assert not is_compatible(InstanceTopology(inst), 2)

    def test_type_preserving_violation(self):
        inst = balanced_tree_instance(2)
        # Make an internal node's RN label point down at a leaf via its
        # right-child port: type-preserving fails.
        inst.labeling[2].right_neighbor = inst.labeling[2].right_child
        assert not is_compatible(InstanceTopology(inst), 2)

    def test_inconsistent_raises(self):
        inst = balanced_tree_instance(2)
        inst.labeling[1].left_child = None  # root becomes inconsistent
        with pytest.raises(ValueError):
            is_compatible(InstanceTopology(inst), 1)


class TestChecker:
    def test_reference_accepted_on_compatible(self):
        inst = balanced_tree_instance(4, rng=random.Random(0))
        outputs = reference_solution(inst)
        assert PROBLEM.validate(inst, outputs) == []
        root = inst.meta["root"]
        assert outputs[root] == (BALANCED, None)  # root's P(v) is ⊥

    def test_reference_accepted_on_broken(self):
        for seed in range(6):
            inst = balanced_tree_instance(
                4, compatible=False, rng=random.Random(seed), break_count=2
            )
            outputs = reference_solution(inst)
            assert PROBLEM.validate(inst, outputs) == []

    def test_lemma_4_7_all_balanced_on_compatible(self):
        """Lemma 4.7: globally compatible ⇒ every consistent node says B."""
        inst = balanced_tree_instance(3)
        outputs = reference_solution(inst)
        for node, out in outputs.items():
            assert out[0] == BALANCED

    def test_lemma_4_7_u_propagates_to_root(self):
        """Incompatible descendant ⇒ U on the whole ancestor path."""
        inst = balanced_tree_instance(4, compatible=False, rng=random.Random(1))
        outputs = reference_solution(inst)
        root = inst.meta["root"]
        assert outputs[root][0] == UNBALANCED

    def test_incompatible_must_output_u_bottom(self):
        inst = balanced_tree_instance(3, compatible=False, rng=random.Random(2))
        outputs = reference_solution(inst)
        # Erasing a lateral label makes *neighbors* of the victim
        # incompatible (agreement/siblings are conditions on the pointing
        # side); pick an actually incompatible node.
        cmap = compatibility_map(inst)
        victim = next(v for v, c in cmap.items() if c is False)
        outputs[victim] = (BALANCED, inst.label(victim).parent)
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.node == victim and v.rule == "cond1" for v in violations)

    def test_compatible_leaf_must_point_at_parent(self):
        inst = balanced_tree_instance(2)
        outputs = reference_solution(inst)
        leaf = inst.meta["leaves"][0]
        outputs[leaf] = (BALANCED, 2)  # wrong port
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.node == leaf and v.rule == "cond2" for v in violations)

    def test_balanced_children_force_balanced_parent(self):
        inst = balanced_tree_instance(3)
        outputs = reference_solution(inst)
        root = inst.meta["root"]
        outputs[root] = (UNBALANCED, 1)
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.node == root and v.rule == "cond3a" for v in violations)

    def test_u_child_forces_pointer(self):
        inst = balanced_tree_instance(3, compatible=False, rng=random.Random(3))
        outputs = reference_solution(inst)
        # find an internal node outputting (U, p) and break its pointer
        t = InstanceTopology(inst)
        for node, out in outputs.items():
            if out[0] == UNBALANCED and out[1] is not None:
                outputs[node] = (UNBALANCED, None)
                violations = PROBLEM.validate(inst, outputs)
                assert any(
                    v.node == node and v.rule == "cond3b" for v in violations
                )
                break
        else:
            pytest.fail("no (U, port) node found")

    def test_alphabet(self):
        inst = balanced_tree_instance(1)
        outputs = reference_solution(inst)
        outputs[inst.meta["root"]] = "bogus"
        assert any(
            v.rule == "alphabet" for v in PROBLEM.validate(inst, outputs)
        )


class TestLocality:
    """Lemma 4.4: BalancedTree is an LCL — radius 3 suffices."""

    def test_local_validation_agrees(self):
        for compatible in (True, False):
            inst = balanced_tree_instance(
                3, compatible=compatible, rng=random.Random(4)
            )
            outputs = reference_solution(inst)
            local = validate_locally(PROBLEM, inst, outputs)
            glob = PROBLEM.validate(inst, outputs)
            assert local == glob == []


class TestDisjointnessInstances:
    def test_disjoint_instance_all_balanced(self):
        """disj(a,b)=1 ⇒ globally compatible ⇒ all-B is the valid output."""
        a = [1, 0, 1, 0]
        b = [0, 1, 0, 1]
        inst = disjointness_embedding(a, b)
        outputs = reference_solution(inst)
        assert PROBLEM.validate(inst, outputs) == []
        root = inst.meta["root"]
        assert outputs[root][0] == BALANCED

    def test_intersecting_instance_root_unbalanced(self):
        """disj(a,b)=0 ⇒ root must output (U, ·) (Prop 4.9's key fact)."""
        a = [1, 0, 0, 0]
        b = [1, 0, 0, 0]
        inst = disjointness_embedding(a, b)
        outputs = reference_solution(inst)
        assert PROBLEM.validate(inst, outputs) == []
        root = inst.meta["root"]
        assert outputs[root][0] == UNBALANCED


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_root_output_encodes_disjointness(log_n, seed):
    """g(E(a,b)) = disj(a,b): the embedding property of Definition 2.7."""
    n = 2 ** (log_n % 4)  # N in {1, 2, 4, 8}
    rnd = random.Random(seed)
    a = [rnd.randint(0, 1) for _ in range(n)]
    b = [rnd.randint(0, 1) for _ in range(n)]
    inst = disjointness_embedding(a, b)
    outputs = reference_solution(inst)
    assert PROBLEM.validate(inst, outputs) == []
    root_balanced = outputs[inst.meta["root"]][0] == BALANCED
    assert root_balanced == bool(inst.meta["disjoint"])
