"""Tests for Hierarchical-THC(k), Hybrid-THC(k) and HH-THC(k, ℓ)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
)
from repro.graphs.labelings import BLUE, DECLINE, RED
from repro.graphs.tree_structure import InstanceTopology, all_backbones, level_of
from repro.lcl.verifier import validate_locally
from repro.problems.hh_thc import HHTHC
from repro.problems.hh_thc import reference_solution as hh_reference
from repro.problems.hierarchical_thc import HierarchicalTHC
from repro.problems.hierarchical_thc import (
    reference_solution as hier_reference,
)
from repro.problems.hybrid_thc import HybridTHC
from repro.problems.hybrid_thc import reference_solution as hybrid_reference


class TestHierarchicalChecker:
    @pytest.mark.parametrize("k,m", [(1, 6), (2, 4), (3, 3)])
    def test_reference_accepted(self, k, m):
        inst = hierarchical_thc_instance(k, m, rng=random.Random(k))
        outputs = hier_reference(inst, k)
        assert HierarchicalTHC(k).validate(inst, outputs) == []

    def test_level_one_unanimity_enforced(self):
        k = 2
        inst = hierarchical_thc_instance(k, 4, rng=random.Random(0))
        outputs = hier_reference(inst, k)
        # Break unanimity inside a level-1 backbone.
        bb = next(b for b in all_backbones(inst, cap=k) if b.level == 1)
        first = bb.nodes[0]
        outputs[first] = RED if outputs[first] == BLUE else BLUE
        violations = HierarchicalTHC(k).validate(inst, outputs)
        assert any(v.rule == "cond3b" for v in violations)

    def test_level_one_leaf_echoes_input(self):
        k = 2
        inst = hierarchical_thc_instance(k, 4, rng=random.Random(1))
        outputs = hier_reference(inst, k)
        bb = next(b for b in all_backbones(inst, cap=k) if b.level == 1)
        leaf = bb.leaf
        wrong = RED if inst.label(leaf).color == BLUE else BLUE
        for v in bb.nodes:
            outputs[v] = wrong
        violations = HierarchicalTHC(k).validate(inst, outputs)
        assert any(v.node == leaf and v.rule == "cond2" for v in violations)

    def test_exemption_needs_colored_rc(self):
        k = 2
        inst = hierarchical_thc_instance(k, 4, rng=random.Random(2))
        outputs = hier_reference(inst, k)
        # Make a hung level-1 component decline, then its parent's X breaks.
        bb1 = next(b for b in all_backbones(inst, cap=k) if b.level == 1)
        for v in bb1.nodes:
            outputs[v] = DECLINE
        violations = HierarchicalTHC(k).validate(inst, outputs)
        assert any(v.rule in ("cond5a", "cond4") for v in violations)

    def test_top_level_cannot_decline(self):
        k = 2
        inst = hierarchical_thc_instance(k, 3, rng=random.Random(3))
        outputs = hier_reference(inst, k)
        top = next(b for b in all_backbones(inst, cap=k) if b.level == k)
        outputs[top.nodes[0]] = DECLINE
        violations = HierarchicalTHC(k).validate(inst, outputs)
        assert any(v.rule == "cond5" for v in violations)

    def test_run_coloring_above_exempt_is_valid(self):
        """Condition 5(b): a colored run restarting over an exempt LC."""
        k = 2
        inst = hierarchical_thc_instance(k, 4, rng=random.Random(4))
        outputs = hier_reference(inst, k)
        top = next(b for b in all_backbones(inst, cap=k) if b.level == k)
        # nodes: n0 -> n1 -> n2 -> n3 along LC; make n0,n1 a colored run
        # over exempt n2 (n2 keeps X), per 5(b) the run takes χin(n1).
        n0, n1, n2, n3 = top.nodes
        chi = inst.label(n1).color
        outputs[n0] = chi
        outputs[n1] = chi
        violations = HierarchicalTHC(k).validate(inst, outputs)
        assert violations == []

    def test_locality(self):
        k = 2
        inst = hierarchical_thc_instance(k, 3, rng=random.Random(5))
        outputs = hier_reference(inst, k)
        problem = HierarchicalTHC(k)
        assert validate_locally(problem, inst, outputs) == []

    def test_alphabet(self):
        inst = hierarchical_thc_instance(2, 3, rng=random.Random(0))
        outputs = hier_reference(inst, 2)
        some = next(iter(outputs))
        outputs[some] = "Z"
        assert any(
            v.rule == "alphabet"
            for v in HierarchicalTHC(2).validate(inst, outputs)
        )


class TestHybridChecker:
    @pytest.mark.parametrize("k,m,d", [(2, 3, 2), (3, 2, 1)])
    def test_reference_accepted(self, k, m, d):
        inst = hybrid_thc_instance(k, m, d, rng=random.Random(k))
        outputs = hybrid_reference(inst, k)
        assert HybridTHC(k).validate(inst, outputs) == []

    def test_reference_accepted_on_broken_bt(self):
        inst = hybrid_thc_instance(
            2, 3, 2, rng=random.Random(9), compatible=False
        )
        outputs = hybrid_reference(inst, 2)
        assert HybridTHC(2).validate(inst, outputs) == []

    def test_decline_must_be_unanimous(self):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(1))
        outputs = hybrid_reference(inst, 2)
        bt_root = inst.meta["bt_roots"][0]
        outputs[bt_root] = DECLINE  # neighbors still answer BalancedTree
        violations = HybridTHC(2).validate(inst, outputs)
        assert any(v.rule == "decline-unanimity" for v in violations)

    def test_unanimous_decline_of_component_is_valid(self):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(2))
        outputs = hybrid_reference(inst, 2)
        topo = InstanceTopology(inst)
        # Decline one entire level-1 component; its level-2 parent must
        # then not be exempt: give it χin (condition 4(c) with LC exempt...
        # actually leaf/4 variants) — simplest: the level-2 node above a
        # declined component violates X, so recolor the whole level-2
        # backbone as a colored run is complex; instead verify the
        # violation appears exactly at the level-2 parent.
        comp_root = inst.meta["bt_roots"][0]
        stack = [comp_root]
        seen = set()
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            outputs[v] = DECLINE
            for nbr in inst.graph.neighbors(v):
                if level_of(topo, nbr, cap=2) == 1:
                    stack.append(nbr)
        violations = HybridTHC(2).validate(inst, outputs)
        nodes = {v.node for v in violations}
        # only the level-2 parent of the declined component complains
        assert all(level_of(topo, v, cap=2) == 2 for v in nodes)

    def test_level2_exemption_requires_solved_bt(self):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(3))
        outputs = hybrid_reference(inst, 2)
        # All level-2 nodes are exempt in the reference; corrupting one BT
        # root's output to D (and its neighbors, to keep unanimity rules
        # out of the way) must break the parent's exemption.
        violations0 = HybridTHC(2).validate(inst, outputs)
        assert violations0 == []

    def test_locality(self):
        inst = hybrid_thc_instance(2, 2, 2, rng=random.Random(4))
        outputs = hybrid_reference(inst, 2)
        assert validate_locally(HybridTHC(2), inst, outputs) == []

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            HybridTHC(1)


class TestHHChecker:
    def test_reference_accepted(self):
        inst = hh_thc_instance(2, 3, 3, 2, 2, rng=random.Random(0))
        outputs = hh_reference(inst, 2, 3)
        assert HHTHC(2, 3).validate(inst, outputs) == []

    def test_k_le_ell_enforced(self):
        with pytest.raises(ValueError):
            HHTHC(3, 2)

    def test_violations_attributed_to_right_population(self):
        inst = hh_thc_instance(2, 2, 3, 2, 1, rng=random.Random(1))
        outputs = hh_reference(inst, 2, 2)
        problem = HHTHC(2, 2)
        assert problem.validate(inst, outputs) == []
        # corrupt one hierarchical (bit 0) node
        bit0 = [v for v in inst.graph.nodes() if inst.label(v).bit == 0]
        victim = bit0[0]
        outputs[victim] = "Z"
        violations = problem.validate(inst, outputs)
        assert all(inst.label(v.node).bit == 0 for v in violations)


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_hierarchical_reference_valid_property(k, m, seed):
    inst = hierarchical_thc_instance(k, m, rng=random.Random(seed))
    outputs = hier_reference(inst, k)
    assert HierarchicalTHC(k).validate(inst, outputs) == []
