"""Tests for the LeafColoring problem definition and checker."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    corrupt_instance,
    hard_leaf_coloring_instance,
    leaf_coloring_instance,
    random_tree_instance,
)
from repro.graphs.labelings import BLUE, RED, other_color
from repro.lcl.verifier import validate_locally
from repro.problems.leaf_coloring import (
    LeafColoring,
    reference_solution,
    unique_solution_on_unanimous,
)

PROBLEM = LeafColoring()


class TestChecker:
    def test_reference_accepted_on_complete_tree(self):
        inst = leaf_coloring_instance(4, rng=random.Random(0))
        outputs = reference_solution(inst)
        assert PROBLEM.validate(inst, outputs) == []

    def test_reference_accepted_on_random_trees(self):
        for seed in range(8):
            inst = random_tree_instance(80, rng=random.Random(seed))
            outputs = reference_solution(inst)
            assert PROBLEM.validate(inst, outputs) == []

    def test_reference_accepted_with_cycles(self):
        for seed in range(5):
            inst = random_tree_instance(
                90, rng=random.Random(seed), with_cycle=True, cycle_length=7
            )
            outputs = reference_solution(inst)
            assert PROBLEM.validate(inst, outputs) == []

    def test_reference_accepted_on_corrupted(self):
        inst = corrupt_instance(
            leaf_coloring_instance(4), 0.25, rng=random.Random(2)
        )
        outputs = reference_solution(inst)
        assert PROBLEM.validate(inst, outputs) == []

    def test_leaf_must_echo_input(self):
        inst = leaf_coloring_instance(2, leaf_color=RED)
        outputs = reference_solution(inst)
        leaf = inst.meta["leaves"][0]
        outputs[leaf] = BLUE
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.node == leaf and v.rule == "echo-input" for v in violations)

    def test_internal_must_copy_a_child(self):
        inst = leaf_coloring_instance(3, leaf_color=RED)
        outputs = reference_solution(inst)
        root = inst.meta["root"]
        outputs[root] = BLUE
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.node == root and v.rule == "internal" for v in violations)

    def test_alphabet_enforced(self):
        inst = leaf_coloring_instance(1)
        outputs = reference_solution(inst)
        outputs[inst.meta["root"]] = "purple"
        violations = PROBLEM.validate(inst, outputs)
        assert any(v.rule == "alphabet" for v in violations)

    def test_missing_output_flagged(self):
        inst = leaf_coloring_instance(1)
        outputs = reference_solution(inst)
        del outputs[inst.meta["root"]]
        assert PROBLEM.validate(inst, outputs)


class TestLocality:
    """Lemma 3.5: LeafColoring is an LCL — check radius 2 suffices."""

    def test_checker_is_local_on_tree(self):
        inst = leaf_coloring_instance(4, rng=random.Random(0))
        outputs = reference_solution(inst)
        assert validate_locally(PROBLEM, inst, outputs) == []

    def test_checker_is_local_on_corrupted(self):
        inst = corrupt_instance(
            leaf_coloring_instance(4), 0.3, rng=random.Random(5)
        )
        outputs = reference_solution(inst)
        local = validate_locally(PROBLEM, inst, outputs)
        assert local == PROBLEM.validate(inst, outputs)

    def test_local_and_global_agree_on_bad_outputs(self):
        inst = leaf_coloring_instance(3, rng=random.Random(1))
        outputs = reference_solution(inst)
        outputs[inst.meta["root"]] = other_color(outputs[inst.meta["root"]])
        local = validate_locally(PROBLEM, inst, outputs)
        glob = PROBLEM.validate(inst, outputs)
        assert {(v.node, v.rule) for v in local} == {
            (v.node, v.rule) for v in glob
        }


class TestUniqueSolution:
    def test_unanimous_forces_global_color(self):
        """Proposition 3.12: unanimous leaves force everyone to χ0."""
        inst = hard_leaf_coloring_instance(4, rng=random.Random(0))
        chi0 = inst.meta["chi0"]
        assert unique_solution_on_unanimous(inst) == chi0
        outputs = {v: chi0 for v in inst.graph.nodes()}
        assert PROBLEM.validate(inst, outputs) == []
        # flipping the root breaks validity
        outputs[inst.meta["root"]] = other_color(chi0)
        assert PROBLEM.validate(inst, outputs)

    def test_mixed_leaves_give_none(self):
        inst = leaf_coloring_instance(3, rng=random.Random(0))
        colors = {inst.label(v).color for v in inst.meta["leaves"]}
        if len(colors) > 1:
            assert unique_solution_on_unanimous(inst) is None


@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_reference_always_valid_property(depth, seed):
    inst = leaf_coloring_instance(depth, rng=random.Random(seed))
    outputs = reference_solution(inst)
    assert PROBLEM.validate(inst, outputs) == []
