"""Tests for the Proposition 3.13 adversary."""

import pytest

from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.adversary.leaf_coloring import (
    AdversarialTreeOracle,
    duel_leaf_coloring,
)
from repro.model.runner import run_algorithm
from repro.problems.leaf_coloring import LeafColoring


class TestOracle:
    def test_root_commits_two_ports(self):
        oracle = AdversarialTreeOracle(n=30)
        info = oracle.node_info(oracle.ROOT)
        assert info.ports == (1, 2)
        assert info.label.left_child == 1

    def test_lazy_materialization(self):
        oracle = AdversarialTreeOracle(n=30)
        child = oracle.resolve(oracle.ROOT, 1)
        assert child is not None
        assert oracle.resolve(oracle.ROOT, 1) == child  # stable
        info = oracle.node_info(child)
        assert info.ports == (1, 2, 3)
        assert info.label.color == "R"

    def test_finalize_appends_opposite_leaves(self):
        oracle = AdversarialTreeOracle(n=30)
        oracle.resolve(oracle.ROOT, 1)
        instance = oracle.finalize("R")
        assert instance.meta["chi1"] == "B"
        instance.graph.validate()
        # every committed port is now connected
        for node in instance.graph.nodes():
            assert not instance.graph.dangling_ports(node)


class TestDuel:
    def test_defeats_distance_solver_with_small_budget(self):
        """Prop 3.13: any deterministic algorithm kept under n/3 queries
        either exceeds the budget or outputs an indefensible color."""
        outcome = duel_leaf_coloring(LeafColoringDistanceSolver(), n=200)
        assert outcome.defeated or outcome.exceeded_budget

    def test_defeats_full_gather(self):
        outcome = duel_leaf_coloring(LeafColoringFullGather(), n=120)
        assert outcome.defeated or outcome.exceeded_budget

    def test_rejects_randomized_algorithms(self):
        with pytest.raises(ValueError):
            duel_leaf_coloring(RWtoLeaf(), n=50)

    def test_defeat_is_genuine(self):
        """When defeated, re-running the algorithm on the *finished*
        instance from every node yields an invalid global output — the
        adversary's answers were consistent with the final graph."""
        from repro.lower_bounds.yao_experiments import (
            HorizonLimitedLeafColoring,
        )

        algorithm = HorizonLimitedLeafColoring(horizon=3)
        outcome = duel_leaf_coloring(algorithm, n=400)
        assert outcome.defeated
        inst = outcome.instance
        result = run_algorithm(inst, HorizonLimitedLeafColoring(horizon=3))
        # The interactive run is reproduced on the finished instance...
        assert result.outputs[inst.meta["root"]] == outcome.root_output
        # ...and the global output it belongs to is invalid.
        assert LeafColoring().validate(inst, result.outputs)

    def test_unbudgeted_algorithm_escapes(self):
        """With an unconstrained budget the solver sees an appended leaf
        region only after finalize — the duel grants it enough queries to
        find real leaves... but the adversary never materializes any leaf,
        so a full-gather just burns its budget: it must exceed n/3."""
        outcome = duel_leaf_coloring(
            LeafColoringFullGather(), n=60, query_budget=19
        )
        assert outcome.exceeded_budget or outcome.defeated

    def test_query_accounting(self):
        outcome = duel_leaf_coloring(LeafColoringDistanceSolver(), n=300)
        # the budget (n/3 − 1 = 99) stops the 100th query
        assert outcome.queries_used <= 100
