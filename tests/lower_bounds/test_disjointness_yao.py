"""Tests for the disjointness simulation (Prop 4.9) and Yao experiment."""

import random

from repro.algorithms.balanced_tree_algs import BalancedTreeFullGather
from repro.adversary.disjointness import (
    communication_cost_of_query_plan,
    simulate_two_party,
)
from repro.lower_bounds.yao_experiments import horizon_sweep


class TestTwoPartySimulation:
    def test_full_gather_computes_disjointness(self):
        rnd = random.Random(0)
        for _ in range(10):
            n = 8
            a = [rnd.randint(0, 1) for _ in range(n)]
            b = [rnd.randint(0, 1) for _ in range(n)]
            run = simulate_two_party(BalancedTreeFullGather(), a, b)
            assert run.correct

    def test_bits_linear_for_correct_solver(self):
        """A correct solver reads every coordinate: 2N bits exchanged."""
        n = 16
        a = [0] * n
        b = [0] * n
        run = simulate_two_party(BalancedTreeFullGather(), a, b)
        assert run.bits_exchanged == 2 * n

    def test_theorem_2_9_accounting(self):
        """queries ≥ bits/B with B = 2 (each query reveals ≤ 1 leaf)."""
        n = 8
        rnd = random.Random(3)
        a = [rnd.randint(0, 1) for _ in range(n)]
        b = [rnd.randint(0, 1) for _ in range(n)]
        run = simulate_two_party(BalancedTreeFullGather(), a, b)
        assert run.queries >= communication_cost_of_query_plan(run)

    def test_bits_scale_with_n(self):
        bits = []
        for log_n in (3, 5):
            n = 2**log_n
            run = simulate_two_party(
                BalancedTreeFullGather(), [0] * n, [1] * n
            )
            bits.append(run.bits_exchanged)
        assert bits[1] == 4 * bits[0]  # linear in N

    def test_promise_instances(self):
        """Theorem 2.10 holds under the promise Σa_i b_i ∈ {0, 1}."""
        n = 8
        a = [1] + [0] * (n - 1)
        b = [1] + [0] * (n - 1)  # intersection exactly 1
        run = simulate_two_party(BalancedTreeFullGather(), a, b)
        assert run.correct
        assert run.g_value == 0


class TestHorizonSweep:
    def test_limited_horizon_fails_half_the_time(self):
        """Prop 3.12: below the depth, success ≈ 1/2."""
        points = horizon_sweep(depth=7, horizons=[2], trials=60, base_seed=1)
        p = points[0].success_probability
        assert 0.3 <= p <= 0.7

    def test_full_horizon_always_succeeds(self):
        points = horizon_sweep(depth=5, horizons=[5], trials=20, base_seed=2)
        assert points[0].success_probability == 1.0

    def test_transition_at_depth(self):
        points = horizon_sweep(
            depth=6, horizons=[1, 6], trials=40, base_seed=3
        )
        shallow, deep = points
        assert shallow.success_probability < 0.8
        assert deep.success_probability == 1.0
