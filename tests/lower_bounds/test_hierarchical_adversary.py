"""Tests for the Proposition 5.20 adversary."""

import pytest

from repro.algorithms.hierarchical_algs import (
    HierarchicalFullGather,
    RecursiveHTHC,
    WaypointHTHC,
)
from repro.adversary.hierarchical import (
    AdversarialTHCOracle,
    duel_hierarchical,
)
from repro.problems.hierarchical_thc import HierarchicalTHC


class TestOracle:
    def test_backbone_node_commitments(self):
        oracle = AdversarialTHCOracle(k=2, n=1000)
        v = oracle.new_backbone_node(2, "B")
        info = oracle.node_info(v)
        assert info.ports == (1, 2, 3)
        u = oracle.new_backbone_node(1, "R")
        assert oracle.node_info(u).ports == (1, 2)

    def test_rc_materializes_lower_level(self):
        oracle = AdversarialTHCOracle(k=2, n=1000)
        v = oracle.new_backbone_node(2, "B")
        child = oracle.resolve(v, 3)
        assert oracle.meta[child].level == 1
        assert oracle.meta[child].color == "B"

    def test_parent_materializes_same_level(self):
        oracle = AdversarialTHCOracle(k=3, n=5000)
        v = oracle.new_backbone_node(3, "B")
        parent = oracle.resolve(v, 1)
        assert oracle.meta[parent].level == 3

    def test_finalize_closes_everything(self):
        oracle = AdversarialTHCOracle(k=2, n=1000)
        v = oracle.new_backbone_node(2, "B")
        oracle.resolve(v, 2)
        instance = oracle.finalize()
        instance.graph.validate()
        for node in instance.graph.nodes():
            assert not instance.graph.dangling_ports(node)

    def test_finalized_levels_are_consistent(self):
        from repro.graphs.tree_structure import InstanceTopology, level_of

        oracle = AdversarialTHCOracle(k=2, n=1000)
        v = oracle.new_backbone_node(2, "B")
        oracle.resolve(v, 3)
        instance = oracle.finalize()
        topo = InstanceTopology(instance)
        assert level_of(topo, v, cap=2) == 2


class TestDuel:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_defeats_recursive_hthc(self, k):
        outcome = duel_hierarchical(RecursiveHTHC(k), k=k, volume_budget=40)
        assert outcome.defeated, outcome.phase_log

    def test_defeats_full_gather(self):
        outcome = duel_hierarchical(
            HierarchicalFullGather(2), k=2, volume_budget=30
        )
        assert outcome.defeated, outcome.phase_log

    def test_rejects_randomized(self):
        with pytest.raises(ValueError):
            duel_hierarchical(WaypointHTHC(2), k=2, volume_budget=30)

    def test_instance_stays_within_n(self):
        outcome = duel_hierarchical(RecursiveHTHC(2), k=2, volume_budget=60)
        inst = outcome.instance
        assert inst.graph.num_nodes <= inst.n

    def test_rerun_reproduces_interactive_outputs(self):
        """The committed-degree discipline makes the interaction replayable:
        the finished instance is a genuine witness, not a moving target."""
        outcome = duel_hierarchical(RecursiveHTHC(2), k=2, volume_budget=40)
        assert outcome.defeated
        # validate() inside the duel already re-ran A on the finished
        # instance; defeat therefore certifies a real counterexample.
        problem = HierarchicalTHC(2)
        from repro.model.runner import run_algorithm

        result = run_algorithm(
            outcome.instance, RecursiveHTHC(2), max_volume=40
        )
        assert problem.validate(outcome.instance, result.outputs)
