"""Unit tests for the interactive-adversary engine."""

import pytest

from repro.adversary.engine import (
    AdversaryEngineError,
    InfoEvent,
    InteractiveOracle,
    RecordingOracle,
    ResolveEvent,
    Transcript,
    transcripts_equal,
)
from repro.graphs.generators import leaf_coloring_instance
from repro.graphs.labelings import NodeLabel, RED
from repro.model.oracle import CompiledOracle, StaticOracle


class ChainOracle(InteractiveOracle):
    """Toy adversary: every resolved port grows one more 2-port node."""

    adversary_name = "test/chain"

    def __init__(self, n=50):
        super().__init__(n, max_degree=2)
        self.root = self.create_node(NodeLabel(color=RED), (1,))

    def materialize(self, node_id, port):
        child = self.create_node(NodeLabel(color=RED, parent=1), (1, 2))
        self.connect(node_id, port, child, 1)
        return child

    def finalize(self):
        for node in list(self.graph.nodes()):
            for port in self.committed[node]:
                if self.graph.neighbor_at(node, port) is None:
                    leaf = self.create_node(NodeLabel(color=RED, parent=1), (1,))
                    self.connect(node, port, leaf, 1)
        return self.finalized(name="test-chain", meta={"root": self.root})


class TestDegreeCommit:
    def test_info_reflects_committed_ports_only(self):
        oracle = ChainOracle()
        info = oracle.node_info(oracle.root)
        assert info.ports == (1,)
        assert info.degree == 1

    def test_uncommitted_port_resolves_to_none(self):
        oracle = ChainOracle()
        assert oracle.resolve(oracle.root, 2) is None
        assert oracle.resolve(999, 1) is None

    def test_materialization_is_stable(self):
        oracle = ChainOracle()
        child = oracle.resolve(oracle.root, 1)
        assert child is not None
        assert oracle.resolve(oracle.root, 1) == child

    def test_connect_rejects_uncommitted_ports(self):
        oracle = ChainOracle()
        other = oracle.create_node(NodeLabel(color=RED), (1,))
        with pytest.raises(AdversaryEngineError):
            oracle.connect(oracle.root, 2, other, 1)


class TestFinalize:
    def test_finalize_closes_and_replays(self):
        oracle = ChainOracle()
        for _ in range(3):
            child = oracle.resolve(oracle.root, 1)
            oracle.resolve(child, 2)
        instance = oracle.finalize()
        instance.graph.validate()
        for node in instance.graph.nodes():
            assert not instance.graph.dangling_ports(node)
        assert oracle.is_finalized

    def test_queries_rejected_after_finalize(self):
        oracle = ChainOracle()
        oracle.resolve(oracle.root, 1)
        oracle.finalize()
        with pytest.raises(AdversaryEngineError):
            oracle.resolve(oracle.root, 1)
        with pytest.raises(AdversaryEngineError):
            oracle.node_info(oracle.root)
        with pytest.raises(AdversaryEngineError):
            oracle.create_node(NodeLabel(color=RED), (1,))
        with pytest.raises(AdversaryEngineError):
            oracle.finalize()

    def test_dangling_committed_port_rejected(self):
        oracle = ChainOracle()
        oracle.resolve(oracle.root, 1)
        with pytest.raises(AdversaryEngineError, match="dangling"):
            oracle.finalized(name="incomplete")

    def test_non_monotone_finalize_is_caught(self):
        """Mutating a *revealed* label during completion diverges from the
        recorded transcript: finalized() must refuse the witness."""
        oracle = ChainOracle()
        child = oracle.resolve(oracle.root, 1)
        oracle.node_info(child)  # reveal: the label is now on record
        oracle.labeling[child].color = "B"  # adversary cheats
        with pytest.raises(AdversaryEngineError, match="diverged"):
            oracle.finalize()


class TestTranscript:
    def make_transcript(self):
        oracle = ChainOracle()
        view_child = oracle.resolve(oracle.root, 1)
        oracle.node_info(view_child)
        oracle.resolve(view_child, 2)
        instance = oracle.finalize()
        return oracle.transcript, instance

    def test_event_accounting(self):
        transcript, _ = self.make_transcript()
        assert transcript.queries == 2
        assert len(transcript) == 3
        revealed = transcript.revealed_nodes()
        assert revealed[0] == 2  # first resolve endpoint

    def test_replay_detects_divergence(self):
        transcript, instance = self.make_transcript()
        assert transcript.replay(StaticOracle(instance)) == []
        tampered = Transcript(
            adversary=transcript.adversary,
            n=transcript.n,
            events=[
                ResolveEvent(node=e.node, port=e.port, endpoint=999)
                if isinstance(e, ResolveEvent)
                else e
                for e in transcript.events
            ],
        )
        divergences = tampered.replay(StaticOracle(instance))
        assert len(divergences) == 2
        with pytest.raises(AdversaryEngineError, match="diverged"):
            tampered.replay_exact(StaticOracle(instance))

    def test_replay_identical_on_both_oracles(self):
        transcript, instance = self.make_transcript()
        assert transcript.replay(StaticOracle(instance)) == []
        assert transcript.replay(CompiledOracle(instance)) == []

    def test_json_round_trip_is_canonical(self):
        transcript, instance = self.make_transcript()
        transcript.meta["budget"] = 7
        text = transcript.to_json()
        loaded = Transcript.from_json(text)
        assert transcripts_equal(transcript, loaded)
        assert loaded.adversary == transcript.adversary
        assert loaded.n == transcript.n
        assert loaded.meta == transcript.meta
        assert loaded.to_json() == text  # byte-stable
        assert loaded.replay(StaticOracle(instance)) == []

    def test_from_json_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            Transcript.from_json('{"schema": "something-else", "events": []}')


class TestRecordingOracle:
    def test_records_and_delegates(self):
        instance = leaf_coloring_instance(3)
        inner = StaticOracle(instance)
        recorder = RecordingOracle(
            inner, Transcript(adversary="test/recorder", n=instance.n)
        )
        root = instance.meta["root"]
        info = recorder.node_info(root)
        assert info == inner.node_info(root)
        endpoint = recorder.resolve(root, info.ports[0])
        assert endpoint == inner.resolve(root, info.ports[0])
        assert recorder.n == inner.n
        events = recorder.transcript.events
        assert isinstance(events[0], InfoEvent)
        assert isinstance(events[1], ResolveEvent)
        assert recorder.transcript.replay(CompiledOracle(instance)) == []
