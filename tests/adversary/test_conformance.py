"""Cross-engine conformance: interactive verdicts replay on finished instances.

For every registered adversary and every execution backend (serial,
batch, process — compiled fast path — plus the uncompiled reference
engine), the finalized instance must reproduce the interactive verdict:

* the recorded transcript replays divergence-free against both the
  ``StaticOracle`` and the ``CompiledOracle`` of the finished instance
  (inside each adversary's ``verify``);
* re-running the victim algorithm on the finished instance through the
  ordinary backend machinery reproduces the interactive outputs,
  truncation behavior, and defeat/uphold verdict.

Budgets are drawn by hypothesis, so the property is exercised across the
lazy-growth decision space, not just the registered grid points.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.registry import ADVERSARIES, load_components

load_components()

# Budget pools per adversary: small enough to keep hypothesis fast, wide
# enough to hit different growth shapes (escape vs defeat, deep vs
# shallow phases, disjoint vs intersecting inputs).
BUDGETS = {
    "prop313/leaf-coloring": st.integers(min_value=24, max_value=120),
    "prop520/hierarchical-thc(2)": st.integers(min_value=8, max_value=32),
    "prop49/balanced-tree": st.integers(min_value=2, max_value=5),
}

BACKENDS = ["serial", "reference", "batch", "process:2"]


def test_budget_pools_cover_every_registered_adversary():
    assert set(BUDGETS) == set(ADVERSARIES.names())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(BUDGETS))
class TestConformance:
    @given(data=st.data())
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_finalized_rerun_reproduces_interactive_verdict(
        self, name, backend, data
    ):
        entry = ADVERSARIES.get(name)
        adversary = entry.make()
        budget = data.draw(BUDGETS[name])
        run = adversary.run(budget)
        assert run.upheld, (
            f"{name} failed to uphold its bound at budget {budget}"
        )
        assert run.instance is not None
        assert run.transcript is not None
        assert run.queries >= 0
        assert adversary.verify(run, backend=backend), (
            f"{name} verdict did not reproduce on backend {backend!r} "
            f"at budget {budget}"
        )


class TestVictimOverride:
    """The conformance property holds for non-default victims too."""

    @pytest.mark.parametrize(
        "name,victim",
        [
            ("prop313/leaf-coloring", "leaf-coloring/full-gather"),
            ("prop520/hierarchical-thc(2)", "hierarchical-thc(2)/full-gather"),
        ],
    )
    def test_alternate_deterministic_victims(self, name, victim):
        entry = ADVERSARIES.get(name)
        adversary = entry.make(victim)
        run = adversary.run(entry.quick[0])
        assert run.upheld
        assert run.algorithm == victim
        assert adversary.verify(run, backend="serial")
        assert adversary.verify(run, backend="reference")

    @pytest.mark.parametrize(
        "name,victim",
        [
            ("prop313/leaf-coloring", "leaf-coloring/rw-to-leaf"),
            ("prop520/hierarchical-thc(2)", "hierarchical-thc(2)/waypoint"),
        ],
    )
    def test_randomized_victims_are_rejected(self, name, victim):
        entry = ADVERSARIES.get(name)
        with pytest.raises(ValueError, match="deterministic"):
            entry.make(victim).run(entry.quick[0])


class TestDefeatPath:
    """Conformance also holds when the victim is *defeated* (not just
    budget-starved): the horizon-limited solver terminates under budget
    with a color the adversary then contradicts."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prop313_defeat_verdict_reproduces(self, backend, monkeypatch):
        from repro.adversary.leaf_coloring import Prop313Adversary
        from repro.lower_bounds.yao_experiments import (
            HorizonLimitedLeafColoring,
        )

        adversary = Prop313Adversary()
        monkeypatch.setattr(
            adversary, "make_victim", lambda: HorizonLimitedLeafColoring(3)
        )
        run = adversary.run(300)
        assert run.defeated
        assert run.upheld
        assert not run.detail["exceeded_budget"]
        assert adversary.verify(run, backend=backend)
