"""Golden-transcript regression tests.

Each registered adversary has a canonical recorded transcript committed
under ``tests/adversary/golden/`` at a fixed budget.  Re-running the
adversary must reproduce the committed file *byte-identically*, and the
committed transcript must replay against the freshly finalized instance's
reference and compiled oracles without a single divergence — any drift in
the engine port (event order, lazy-growth decisions, id assignment,
serialization) fails here first.

Regenerate after an intentional change with::

    repro adversary run <name> --budget <b> --transcript <golden-path>
"""

import pathlib

import pytest

from repro.adversary.engine import Transcript, transcripts_equal
from repro.model.oracle import CompiledOracle, StaticOracle
from repro.registry import ADVERSARIES, load_components

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

# (adversary name, pinned budget, committed file)
GOLDEN_CASES = [
    ("prop313/leaf-coloring", 60, "prop313-leaf-coloring-b60.json"),
    ("prop520/hierarchical-thc(2)", 20, "prop520-hierarchical-thc2-b20.json"),
    ("prop49/balanced-tree", 3, "prop49-balanced-tree-b3.json"),
]


@pytest.fixture(autouse=True)
def _loaded():
    load_components()


def _case_id(case):
    return case[0]


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=_case_id)
class TestGoldenTranscripts:
    def test_every_registered_adversary_has_a_golden_case(self, case):
        covered = {name for name, _, _ in GOLDEN_CASES}
        assert covered == set(ADVERSARIES.names())

    def test_rerun_is_byte_identical(self, case):
        name, budget, filename = case
        run = ADVERSARIES.get(name).make().run(budget)
        committed = (GOLDEN_DIR / filename).read_text()
        assert run.transcript.to_json() == committed, (
            f"transcript drift for {name}; if intentional, regenerate "
            f"tests/adversary/golden/{filename}"
        )

    def test_committed_transcript_replays_on_both_oracles(self, case):
        name, budget, filename = case
        run = ADVERSARIES.get(name).make().run(budget)
        committed = Transcript.from_json((GOLDEN_DIR / filename).read_text())
        assert transcripts_equal(committed, run.transcript)
        assert committed.replay(StaticOracle(run.instance)) == []
        assert committed.replay(CompiledOracle(run.instance)) == []

    def test_golden_metadata_names_the_victim(self, case):
        name, budget, filename = case
        committed = Transcript.from_json((GOLDEN_DIR / filename).read_text())
        assert committed.adversary == name
        assert committed.meta.get("algorithm") == ADVERSARIES.get(name).victim
