"""Tests for adversary registration and the ``repro adversary`` CLI."""

import json

import pytest

from repro.adversary.base import adversary_record, sweep_adversary
from repro.cli import main
from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    PROBLEMS,
    RegistryError,
    load_components,
)


@pytest.fixture(autouse=True)
def _loaded():
    load_components()


class TestRegistration:
    def test_all_three_paper_adversaries_registered(self):
        assert set(ADVERSARIES.names()) == {
            "prop313/leaf-coloring",
            "prop520/hierarchical-thc(2)",
            "prop49/balanced-tree",
        }

    def test_entries_reference_registered_components(self):
        for entry in ADVERSARIES:
            assert entry.problem in PROBLEMS
            victim = ALGORITHMS.get(entry.victim)
            assert victim.problem == entry.problem
            assert not victim.randomized  # duels need deterministic victims

    def test_entry_names_match_instances(self):
        for entry in ADVERSARIES:
            assert entry.make().name == entry.name

    def test_budget_grids_and_fit_metadata(self):
        from repro.analysis.complexity_fit import GROWTH_CLASSES

        for entry in ADVERSARIES:
            assert len(entry.quick) >= 2  # growth fits need >= 2 points
            assert len(entry.full) >= len(entry.quick)
            assert entry.params("quick") == entry.quick
            assert entry.params("full") == entry.full
            with pytest.raises(ValueError):
                entry.params("huge")
            for name in entry.expected_fit:
                assert name in entry.candidates
            for name in entry.candidates:
                assert name in GROWTH_CLASSES

    def test_unknown_adversary_raises_with_hint(self):
        with pytest.raises(RegistryError, match="prop313"):
            ADVERSARIES.get("prop313/leaf-colorng")

    def test_prop49_rejects_absurd_budget_exponents(self):
        """Budgets are log2(N); a grid value borrowed from another
        adversary (e.g. prop313's n=120) must be rejected, not build a
        2^120-element input."""
        entry = ADVERSARIES.get("prop49/balanced-tree")
        with pytest.raises(ValueError, match="exponent"):
            entry.make().run(120)


class TestSweepRecords:
    def test_quick_sweeps_fit_expected_classes(self):
        for entry in ADVERSARIES:
            runs, fit = sweep_adversary(entry, "quick")
            record = adversary_record(entry, runs, fit)
            assert record["ok"], record
            assert record["queries_fit"] in entry.expected_fit
            assert len(record["points"]) == len(entry.quick)
            assert all(p["upheld"] for p in record["points"])

    def test_record_flags_unexpected_fit(self):
        entry = ADVERSARIES.get("prop313/leaf-coloring")
        runs, fit = sweep_adversary(entry, "quick")
        record = adversary_record(
            entry, runs, {"queries_fit": "log n", "bits_fit": None}
        )
        assert record["ok"] is False


class TestCli:
    def test_list_kind_adversaries(self, capsys):
        assert main(["list", "--kind", "adversaries", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"adversaries"}
        assert len(payload["adversaries"]) == len(ADVERSARIES)
        for item in payload["adversaries"]:
            assert item["victim"] in ALGORITHMS
            assert item["expected_fit"]

    def test_run_exit_zero_and_payload(self, capsys):
        assert main([
            "adversary", "run", "prop313/leaf-coloring",
            "--budget", "45", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["upheld"] is True
        assert payload["verified"] is True
        assert payload["budget"] == 45
        assert payload["transcript_events"] > 0

    def test_run_unknown_name_exits_two(self, capsys):
        assert main(["adversary", "run", "no-such-adversary"]) == 2

    def test_run_randomized_victim_exits_two(self, capsys):
        assert main([
            "adversary", "run", "prop313/leaf-coloring",
            "--algorithm", "leaf-coloring/rw-to-leaf",
        ]) == 2

    def test_run_out_of_range_budget_exits_two(self, capsys):
        assert main([
            "adversary", "run", "prop49/balanced-tree", "--budget", "120",
        ]) == 2

    def test_run_saves_canonical_transcript(self, tmp_path, capsys):
        out = tmp_path / "transcript.json"
        assert main([
            "adversary", "run", "prop49/balanced-tree",
            "--budget", "3", "--transcript", str(out),
        ]) == 0
        from repro.adversary.engine import Transcript

        transcript = Transcript.from_json(out.read_text())
        assert transcript.adversary == "prop49/balanced-tree"
        assert transcript.to_json() == out.read_text()

    def test_sweep_json_all(self, capsys):
        assert main(["adversary", "sweep", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["adversary"] for r in records} == set(ADVERSARIES.names())
        for record in records:
            assert record["ok"] is True
            assert record["queries_fit"] in record["expected_fit"]

    def test_sweep_named_subset(self, capsys):
        assert main([
            "adversary", "sweep", "prop49/balanced-tree", "--json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["bits_fit"] == "n"

    def test_sweep_unknown_name_exits_two(self, capsys):
        assert main(["adversary", "sweep", "nope"]) == 2
