"""Shared fixtures for the suite.

Extracted from ``tests/corpus/`` and ``tests/cli/test_corpus_cli.py``
(PR 10) so every suite — including ``tests/serve/`` — reuses the same
canonical small corpus and empty sqlite result store instead of
re-rolling them per file.
"""

import pytest


@pytest.fixture
def tmp_result_store(tmp_path):
    """An empty sqlite :class:`ResultStore` under this test's tmp dir."""
    from repro.corpus import ResultStore

    return ResultStore(tmp_path / "r.sqlite")


@pytest.fixture
def make_corpus():
    """Factory building the canonical two-entry corpus at any root."""
    from repro.corpus import InstanceCorpus
    from repro.graphs.generators import (
        balanced_tree_instance,
        cycle_instance,
    )

    def build(root):
        corpus = InstanceCorpus(root)
        corpus.add("cycle", 8, 0, cycle_instance(8))
        corpus.add("balanced-tree", 3, 0, balanced_tree_instance(3))
        return corpus

    return build


@pytest.fixture
def tmp_corpus(tmp_path, make_corpus):
    """The canonical small corpus: cycle(n=8) + balanced-tree(depth=3)."""
    return make_corpus(tmp_path / "corpus")
