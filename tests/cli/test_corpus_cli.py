"""`repro corpus` and the `--store`/`--corpus` flags, end to end."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCorpusCommand:
    def test_generate_list_verify(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        code, out = run_cli(
            capsys, "corpus", "generate", "--root", root,
            "--family", "balanced-tree",
        )
        assert code == 0 and "stored" in out
        code, out = run_cli(capsys, "corpus", "list", "--root", root,
                            "--json")
        assert code == 0
        payload = json.loads(out)
        assert all(e["family"] == "balanced-tree"
                   for e in payload["entries"])
        code, out = run_cli(capsys, "corpus", "verify", "--root", root)
        assert code == 0 and "OK" in out

    def test_generate_is_idempotent(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        run_cli(capsys, "corpus", "generate", "--root", root,
                "--family", "cycle")
        code, out = run_cli(capsys, "corpus", "generate", "--root", root,
                            "--family", "cycle", "--progress")
        assert code == 0
        assert "0 entries stored" in out and "already present" in out

    def test_explicit_param_needs_one_family(self, tmp_path, capsys):
        code = main([
            "corpus", "generate", "--root", str(tmp_path / "c"),
            "--param", "8",
        ])
        assert code == 2

    def test_export_import_round_trip(self, tmp_path, capsys):
        root, other = str(tmp_path / "a"), str(tmp_path / "b")
        archive = str(tmp_path / "c.tar.gz")
        run_cli(capsys, "corpus", "generate", "--root", root,
                "--family", "cycle")
        code, out = run_cli(capsys, "corpus", "export", "--root", root,
                            "--archive", archive)
        assert code == 0 and "exported" in out
        code, out = run_cli(capsys, "corpus", "import", "--root", other,
                            "--archive", archive)
        assert code == 0 and "imported" in out
        code, out = run_cli(capsys, "corpus", "verify", "--root", other,
                            "--json")
        assert code == 0 and json.loads(out)["ok"]

    def test_verify_exits_one_on_corruption(self, tmp_path, capsys):
        from repro.corpus import InstanceCorpus

        root = tmp_path / "corpus"
        run_cli(capsys, "corpus", "generate", "--root", str(root),
                "--family", "cycle")
        corpus = InstanceCorpus(root)
        key = corpus.list_entries()[0].key
        path = corpus.entry_path(key)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0x01
        path.write_bytes(bytes(blob))
        code, out = run_cli(capsys, "corpus", "verify", "--root", str(root))
        assert code == 1 and "problem" in out

    def test_missing_archive_fails_cleanly(self, tmp_path):
        code = main([
            "corpus", "import", "--root", str(tmp_path / "c"),
            "--archive", str(tmp_path / "nope.tar.gz"),
        ])
        assert code == 2


class TestSweepStoreFlag:
    def test_second_run_served_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "r.sqlite")
        argv = [
            "sweep", "--family", "balanced-tree",
            "--algorithm", "balanced-tree/distance",
            "--store", store, "--json",
        ]
        code, out = run_cli(capsys, *argv)
        assert code == 0
        first = json.loads(out)[0]
        assert not first["from_store"]
        code, out = run_cli(capsys, *argv)
        assert code == 0
        second = json.loads(out)[0]
        assert second["from_store"] and second["from_cache"]
        assert second["costs"] == first["costs"]
        assert second["ns"] == first["ns"]

    def test_store_summary_via_corpus_list(self, tmp_path, capsys):
        store = str(tmp_path / "r.sqlite")
        run_cli(
            capsys, "sweep", "--family", "balanced-tree",
            "--algorithm", "balanced-tree/distance", "--store", store,
        )
        code, out = run_cli(
            capsys, "corpus", "list", "--root", str(tmp_path / "c"),
            "--store", store, "--json",
        )
        assert code == 0
        counts = json.loads(out)["store"]
        assert counts["sweeps"] == 1
        assert counts["sweep_points"] > 0


class TestMcStoreFlag:
    def test_second_run_replays_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "r.sqlite")
        argv = [
            "mc", "leaf-coloring/rw-to-leaf", "--quick",
            "--no-early-stop", "--store", store, "--json",
        ]
        code, out = run_cli(capsys, *argv)
        assert code == 0
        first = json.loads(out)
        code, out = run_cli(capsys, *argv)
        assert code == 0
        second = json.loads(out)
        assert second["trials"] == first["trials"]
        assert second["rate"] == first["rate"]
        assert second["ci_low"] == first["ci_low"]
        assert second["ci_high"] == first["ci_high"]


class TestBenchCorpusFlag:
    def test_artifact_records_corpus_hits(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        out_path = tmp_path / "B.json"
        run_cli(capsys, "corpus", "generate", "--root", root,
                "--family", "balanced-tree")
        code, _ = run_cli(
            capsys, "bench", "--quick", "--only", "balanced-tree",
            "--corpus", root, "--no-mc", "--no-implicit", "--no-serve",
            "--out", str(out_path),
        )
        assert code == 0
        summary = json.loads(out_path.read_text())["summary"]["corpus"]
        assert summary["root"] == root
        assert summary["hits"] > 0
        assert summary["misses"] == 0
