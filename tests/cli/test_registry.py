"""Tests for the component registry: lookup, metadata, completeness."""

import importlib
import inspect
import pkgutil

import pytest

from repro.model.probe import ProbeAlgorithm
from repro.registry import (
    ALGORITHMS,
    FAMILIES,
    PROBLEMS,
    Registry,
    RegistryError,
    iter_compatible,
    load_components,
)


@pytest.fixture(autouse=True)
def _loaded():
    load_components()


class TestPopulation:
    def test_minimum_counts(self):
        assert len(PROBLEMS) >= 8
        assert len(ALGORITHMS) >= 10
        assert len(FAMILIES) >= 5

    def test_problem_names_match_instances(self):
        for entry in PROBLEMS:
            assert entry.make().name == entry.name

    def test_algorithm_names_match_instances(self):
        for entry in ALGORITHMS:
            assert entry.make().name == entry.name

    def test_algorithm_randomized_flag_matches_instances(self):
        for entry in ALGORITHMS:
            assert entry.randomized == entry.make().is_randomized

    def test_algorithms_reference_registered_problems(self):
        for entry in ALGORITHMS:
            assert entry.problem in PROBLEMS

    def test_families_reference_registered_problems(self):
        for entry in FAMILIES:
            assert entry.problems
            for problem in entry.problems:
                assert problem in PROBLEMS

    def test_family_quick_grids_build(self):
        for entry in FAMILIES:
            assert len(entry.quick) >= 2  # growth fits need >= 2 points
            for param in entry.quick:
                instance = entry.instance(param)
                assert instance.graph.num_nodes >= 1


class TestCompleteness:
    # Base classes algorithms derive from; everything else defined at
    # module level in repro.algorithms must be registered.
    BASES = {"ProbeAlgorithm", "FullGatherAlgorithm", "THCSolverBase"}

    def _module_level_algorithm_classes(self):
        import repro.algorithms

        found = set()
        for info in pkgutil.iter_modules(repro.algorithms.__path__):
            module = importlib.import_module(f"repro.algorithms.{info.name}")
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not issubclass(obj, ProbeAlgorithm):
                    continue
                if obj.__name__ in self.BASES:
                    continue
                found.add(obj)
        return found

    def test_every_algorithm_class_is_registered(self):
        registered = {entry.cls for entry in ALGORITHMS}
        missing = {
            cls.__name__
            for cls in self._module_level_algorithm_classes()
            if cls not in registered
        }
        assert not missing, f"unregistered algorithm classes: {missing}"


class TestLookup:
    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(RegistryError, match="leaf-coloring"):
            ALGORITHMS.get("leaf-coloring/distanse")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        entry = PROBLEMS.get("leaf-coloring")
        registry.add(entry)
        with pytest.raises(RegistryError, match="duplicate"):
            registry.add(entry)


class TestMatrix:
    def test_matrix_is_nonempty_and_consistent(self):
        cells = list(iter_compatible())
        assert len(cells) >= len(ALGORITHMS)  # every algorithm has a family
        for cell in cells:
            assert cell.algorithm.problem == cell.problem.name
            assert cell.problem.name in cell.family.problems
            if cell.algorithm.families is not None:
                assert cell.family.name in cell.algorithm.families

    def test_every_algorithm_appears(self):
        covered = {cell.algorithm.name for cell in iter_compatible()}
        assert covered == set(ALGORITHMS.names())

    def test_family_restriction_is_honored(self):
        families = {
            cell.family.name
            for cell in iter_compatible(
                algorithms=["leaf-coloring/secret-rw"],
            )
        }
        assert families == {"leaf-coloring-hard"}

    def test_axis_filters(self):
        cells = list(iter_compatible(problems=["relay"]))
        assert cells
        assert all(cell.problem.name == "relay" for cell in cells)

    def test_matrix_order_is_deterministic(self):
        first = [cell.key for cell in iter_compatible()]
        second = [cell.key for cell in iter_compatible()]
        assert first == second
