"""CLI handlers must close the backends they construct — on every path.

A string ``--backend`` spec makes the handler construct (and therefore
own) a backend; the ExitStack in each handler guarantees ``close()``
runs even when the handler bails out through an early ``_fail`` return.
These tests monkeypatch the backend factory with a tracking double and
drive each handler down its early-exit paths — the regression suite for
the pool leaks ``repro mc --quick`` and ``repro sweep`` used to have.
"""

import pytest

import repro.exec.backends as backends_module
from repro.cli import main
from repro.exec.backends import SerialBackend


class TrackingBackend(SerialBackend):
    """A serial backend that remembers whether close() ever ran."""

    def __init__(self):
        super().__init__()
        self.close_calls = 0

    def close(self):
        self.close_calls += 1
        super().close()


@pytest.fixture()
def tracked(monkeypatch):
    """Route every CLI backend construction to one tracking instance."""
    backend = TrackingBackend()
    monkeypatch.setattr(
        backends_module, "get_backend", lambda spec=None: backend
    )
    return backend


class TestMcLifecycle:
    def test_bad_param_early_exit_still_closes(self, tracked, capsys):
        code = main([
            "mc", "cycle/2-coloring", "--param", "'junk'", "--quick",
        ])
        assert code == 2
        assert "rejected param" in capsys.readouterr().err
        assert tracked.close_calls == 1

    def test_success_path_closes(self, tracked, capsys):
        code = main([
            "mc", "cycle/2-coloring", "--param", "8", "--quick",
            "--max-trials", "4", "--min-trials", "4", "--json",
        ])
        assert code == 0
        assert tracked.close_calls == 1


class TestRunLifecycle:
    def test_bad_param_early_exit_still_closes(self, tracked, capsys):
        code = main(["run", "cycle/2-coloring", "--param", "'junk'"])
        assert code == 2
        assert "rejected param" in capsys.readouterr().err
        assert tracked.close_calls == 1

    def test_success_path_closes(self, tracked, capsys):
        code = main(["run", "cycle/2-coloring", "--param", "8", "--json"])
        assert code == 0
        assert tracked.close_calls == 1


class TestSweepLifecycle:
    def test_nothing_to_sweep_still_closes(self, tracked, capsys):
        code = main(["sweep"])
        assert code == 2
        assert "nothing to sweep" in capsys.readouterr().err
        assert tracked.close_calls == 1

    def test_unreadable_store_still_closes(self, tracked, tmp_path, capsys):
        # The leak this file exists for: the store used to be opened in
        # the same try block that constructed the backend, above the
        # close callback, so this exact failure left the pool running.
        bad = tmp_path / "store.sqlite"
        bad.write_text("this is not a sqlite database\n")
        code = main([
            "sweep", "--family", "cycle",
            "--algorithm", "cycle/2-coloring", "--store", str(bad),
        ])
        assert code == 2
        assert tracked.close_calls == 1

    def test_bad_spec_file_still_closes(self, tracked, tmp_path, capsys):
        spec = tmp_path / "specs.json"
        spec.write_text('{"not": "a list"}\n')
        code = main(["sweep", "--spec-file", str(spec)])
        assert code == 2
        assert "JSON list" in capsys.readouterr().err
        assert tracked.close_calls == 1


class TestRunSweepsOwnership:
    """run_sweeps closes backends it constructs, never the caller's."""

    def _spec(self):
        import random

        from repro.exec.sweep import InstanceFamily, SweepSpec
        from repro.graphs.generators import balanced_tree_instance

        family = InstanceFamily(
            "balanced-tree",
            lambda d: balanced_tree_instance(d, rng=random.Random(d)),
            (3,),
        )
        return SweepSpec(
            "walk", "Θ(n)", family,
            measure=lambda instance, param: float(
                instance.graph.num_nodes
            ),
        )

    def test_string_spec_backend_is_closed(self, monkeypatch):
        import repro.exec.sweep as sweep_module
        from repro.exec.sweep import run_sweeps

        backend = TrackingBackend()
        monkeypatch.setattr(
            sweep_module, "get_backend", lambda spec=None: backend
        )
        run_sweeps([self._spec()], "serial")
        assert backend.close_calls == 1

    def test_caller_backend_object_is_left_open(self):
        from repro.exec.sweep import run_sweeps

        backend = TrackingBackend()
        run_sweeps([self._spec()], backend)
        assert backend.close_calls == 0
        backend.close()


class TestAdversaryLifecycle:
    def test_run_success_path_closes(self, tracked, capsys):
        code = main([
            "adversary", "run", "prop49/balanced-tree",
            "--budget", "3", "--json",
        ])
        assert code == 0
        assert tracked.close_calls == 1
