"""Tests for `repro list` / `repro run` / `repro sweep` / `repro mc`."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main, parse_param
from repro.model.runner import solve_and_check
from repro.registry import ALGORITHMS, FAMILIES, PROBLEMS, load_components


@pytest.fixture(autouse=True)
def _loaded():
    load_components()


class TestList:
    def test_exit_zero_and_mentions_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("leaf-coloring/rw-to-leaf", "hh-thc(2,3)", "cycle"):
            assert name in out

    def test_json_matches_registry(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["problems"]) == len(PROBLEMS)
        assert len(payload["algorithms"]) == len(ALGORITHMS)
        assert len(payload["families"]) == len(FAMILIES)
        assert payload["suites"]

    def test_kind_filter(self, capsys):
        assert main(["list", "--kind", "families", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"families"}

    def test_python_dash_m_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list", "--kind", "problems"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaf-coloring" in proc.stdout


class TestRun:
    def test_matches_direct_api_call(self, capsys):
        """`repro run` reproduces the direct solve_and_check verdict."""
        assert main([
            "run",
            "leaf-coloring/rw-to-leaf",
            "--param",
            "4",
            "--seed",
            "7",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)

        family = FAMILIES.get("leaf-coloring")
        report = solve_and_check(
            PROBLEMS.get("leaf-coloring").make(),
            family.instance(4),
            ALGORITHMS.get("leaf-coloring/rw-to-leaf").make(),
            seed=7,
        )
        assert payload["valid"] == report.valid
        assert payload["max_volume"] == report.run.max_volume
        assert payload["max_distance"] == report.run.max_distance
        assert payload["n"] == 31

    def test_backend_equivalence(self, capsys):
        args = ["run", "hybrid-thc(2)/waypoint", "--json"]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--backend", "process:2"]) == 0
        process = json.loads(capsys.readouterr().out)
        for key in ("valid", "max_volume", "max_distance", "max_queries"):
            assert serial[key] == process[key]

    def test_invalid_output_exits_one(self, capsys):
        # A volume budget of 2 truncates the full gather; the fallback
        # output is not a valid LeafColoring solution.
        code = main([
            "run",
            "leaf-coloring/full-gather",
            "--param",
            "3",
            "--max-volume",
            "2",
            "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["valid"] is False
        assert payload["truncated_nodes"] > 0
        assert payload["violations"]

    def test_unknown_algorithm_exits_two(self, capsys):
        assert main(["run", "leaf-coloring/distanse"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        # RegistryError must not repr-quote (it is not a KeyError).
        assert 'error: "' not in err

    def test_incompatible_family_exits_two(self, capsys):
        assert main(["run", "cycle/cole-vishkin", "--family", "relay"]) == 2
        assert "does not generate" in capsys.readouterr().err

    def test_restricted_family_exits_two(self, capsys):
        # Promise-only solvers declare a family restriction; `repro run`
        # enforces it like `repro mc` does (shared resolve_cell).
        assert main([
            "run", "leaf-coloring/secret-rw", "--family", "leaf-coloring",
        ]) == 2
        assert "restricted" in capsys.readouterr().err


class TestSweep:
    def test_adhoc_sweep_json(self, capsys):
        assert main([
            "sweep",
            "--family",
            "leaf-coloring",
            "--algorithm",
            "leaf-coloring/distance",
            "--metric",
            "distance",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        sweep = payload[0]
        assert sweep["ns"] == [15, 31, 63]
        assert len(sweep["costs"]) == 3
        assert isinstance(sweep["fit"], str)

    def test_named_suite_prints_rows(self, capsys):
        assert main(["sweep", "fig2/volume-landscape"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "LeafColoring R-VOL" in out

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([
            {
                "family": "cycle",
                "algorithm": "cycle/cole-vishkin",
                "metric": "volume",
                "grid": "quick",
                "claimed": "log* n",
            },
        ]))
        assert main(["sweep", "--spec-file", str(spec), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["claimed"] == "log* n"
        assert payload[0]["ns"] == [8, 16, 32]

    def test_unknown_suite_exits_two(self, capsys):
        assert main(["sweep", "table1/nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_spec_file_missing_key_exits_two(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps([{"algorithm": "cycle/cole-vishkin"}]))
        assert main(["sweep", "--spec-file", str(spec)]) == 2
        assert "missing the 'family' key" in capsys.readouterr().err

    def test_seed_rejected_for_named_suites(self, capsys):
        # Suites pin their own seeds; silently ignoring --seed would
        # report results for the wrong seed.
        assert main(["sweep", "fig2/volume-landscape", "--seed", "9"]) == 2
        assert "--seed only applies" in capsys.readouterr().err

    def test_no_arguments_exits_two(self, capsys):
        assert main(["sweep"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err


class TestMc:
    def test_matches_direct_engine_call(self, capsys):
        """`repro mc` reproduces the direct run_trials estimate."""
        assert main([
            "mc",
            "leaf-coloring/rw-to-leaf",
            "--param", "4",
            "--quick",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)

        from repro.montecarlo.engine import TrialPolicy, run_trials

        direct = run_trials(
            PROBLEMS.get("leaf-coloring").make(),
            FAMILIES.get("leaf-coloring").instance(4),
            ALGORITHMS.get("leaf-coloring/rw-to-leaf").make(),
            TrialPolicy(min_trials=8, max_trials=32, batch_size=8,
                        tolerance=0.1),
            base_seed=7,  # the registered seed
        )
        assert payload["rate"] == direct.rate
        assert payload["trials"] == direct.trials
        assert payload["stopped"] == direct.stopped
        assert payload["ci_low"] == direct.interval()[0]
        assert payload["policy"]["early_stop"] is True
        assert payload["base_seed"] == 7

    def test_quick_preset_matches_bench_policy(self, capsys):
        """--quick is the exact policy the bench artifact gates on."""
        from repro.montecarlo.engine import QUICK_POLICY

        assert main([
            "mc", "constant/echo-ok", "--quick", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == QUICK_POLICY.describe()

    def test_explicit_flags_override_quick_preset(self, capsys):
        # Regression: --quick used to silently discard an explicitly
        # passed --tolerance/--max-trials.
        assert main([
            "mc", "constant/echo-ok", "--quick",
            "--max-trials", "16", "--tolerance", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"]["max_trials"] == 16
        assert payload["policy"]["tolerance"] == 0.2
        assert payload["policy"]["min_trials"] == 8  # preset keeps the rest

    def test_no_early_stop_runs_exactly_max_trials(self, capsys):
        assert main([
            "mc",
            "constant/echo-ok",
            "--max-trials", "6",
            "--min-trials", "1",
            "--batch-size", "6",
            "--no-early-stop",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 6
        assert payload["stopped"] == "fixed"
        assert payload["rate"] == 1.0

    def test_gate_failure_exits_one(self, capsys):
        # A gate above 1.0 can never be met, whatever the estimate.
        assert main([
            "mc",
            "leaf-coloring/rw-to-leaf",
            "--param", "3",
            "--quick",
            "--gate", "1.01",
        ]) == 1
        assert "gate failed" in capsys.readouterr().err

    def test_backend_equivalence(self, capsys):
        args = [
            "mc", "leaf-coloring/rw-to-leaf", "--param", "3", "--quick",
            "--json",
        ]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--backend", "reference"]) == 0
        reference = json.loads(capsys.readouterr().out)
        for key in ("rate", "trials", "successes", "stopped", "volume"):
            assert serial[key] == reference[key]

    def test_unknown_algorithm_exits_two(self, capsys):
        assert main(["mc", "leaf-coloring/distanse"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_incompatible_family_exits_two(self, capsys):
        assert main([
            "mc", "cycle/cole-vishkin", "--family", "relay",
        ]) == 2
        assert "does not generate" in capsys.readouterr().err

    def test_restricted_family_exits_two(self, capsys):
        assert main([
            "mc", "leaf-coloring/secret-rw", "--family", "leaf-coloring",
        ]) == 2
        assert "restricted" in capsys.readouterr().err

    def test_bad_policy_exits_two(self, capsys):
        assert main([
            "mc", "constant/echo-ok", "--min-trials", "0",
        ]) == 2
        assert "min_trials" in capsys.readouterr().err

    def test_progress_goes_to_stderr_keeping_json_parseable(self, capsys):
        assert main([
            "mc", "constant/echo-ok", "--quick", "--progress", "--json",
        ]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert payload["stopped"] == "converged"
        assert "trials=" in captured.err


class TestParseParam:
    def test_int_tuple_and_raw(self):
        assert parse_param("5") == 5
        assert parse_param("(3, 2)") == (3, 2)
        assert parse_param("blue") == "blue"
