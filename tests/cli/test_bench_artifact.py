"""Tests for `repro bench`: artifact schema, matrix coverage, gating."""

import json

import pytest

from repro.cli import main
from repro.cli.bench import SCHEMA_NAME, SCHEMA_VERSION, run_cell
from repro.exec.backends import SerialBackend
from repro.registry import (
    ALGORITHMS,
    FAMILIES,
    PROBLEMS,
    MatrixCell,
    iter_compatible,
    load_components,
)

CELL_KEYS = {
    "problem",
    "algorithm",
    "family",
    "seed",
    "randomized",
    "ok",
    "points",
    "max_volume",
    "mean_volume",
    "max_distance",
    "volume_fit",
    "distance_fit",
    "executions",
    "wall_time",
    "execs_per_sec",
    "elapsed",
}
POINT_KEYS = {
    "param",
    "n",
    "valid",
    "max_volume",
    "mean_volume",
    "max_distance",
    "max_queries",
    "truncated_nodes",
    "violations",
    "executions",
    "elapsed",
    "execs_per_sec",
}
LOWER_BOUND_KEYS = {
    "adversary",
    "problem",
    "algorithm",
    "bound",
    "expected_fit",
    "points",
    "queries_fit",
    "bits_fit",
    "ok",
    "wall_time",
}
LOWER_BOUND_POINT_KEYS = {
    "budget",
    "n",
    "queries",
    "bits",
    "defeated",
    "upheld",
    "elapsed",
}
MC_KEYS = {
    "problem",
    "algorithm",
    "family",
    "param",
    "n",
    "seed",
    "randomized",
    "threshold",
    "adaptive_mode",
    "policy",
    "fixed",
    "adaptive",
    "verdict_fixed",
    "verdict_adaptive",
    "verdicts_agree",
    "prefix_consistent",
    "trials_saved",
    "ok",
    "wall_time",
}
MC_ESTIMATE_KEYS = {
    "trials",
    "successes",
    "rate",
    "ci_low",
    "ci_high",
    "confidence",
    "method",
    "stopped",
    "volume",
    "distance",
    "queries",
    "elapsed",
}


@pytest.fixture(autouse=True)
def _loaded():
    load_components()


class TestListCells:
    def test_full_matrix_is_registry_enumerated(self, capsys):
        assert main(["bench", "--quick", "--list-cells"]) == 0
        listed = [tuple(c) for c in json.loads(capsys.readouterr().out)]
        assert listed == [cell.key for cell in iter_compatible()]

    def test_only_filter(self, capsys):
        assert main(["bench", "--list-cells", "--only", "relay"]) == 0
        listed = [tuple(c) for c in json.loads(capsys.readouterr().out)]
        assert listed
        assert all(any("relay" in part for part in key) for key in listed)

    def test_no_matching_cells_exits_two(self, capsys):
        assert main(["bench", "--only", "no-such-component"]) == 2


class TestArtifact:
    def test_quick_bench_writes_schema_versioned_artifact(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_repro.json"
        code = main([
            "bench",
            "--quick",
            "--only",
            "leaf-coloring",
            "--no-serve",
            "--out",
            str(out),
        ])
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["schema"] == SCHEMA_NAME
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["schema_version"] == 6
        # --no-serve keeps the section present but null.
        assert artifact["serving"] is None
        assert artifact["summary"]["serving"] is None
        assert artifact["mode"] == "quick"
        assert artifact["backend"] == "serial"
        assert artifact["oracle"] == "compiled"
        assert artifact["python"]
        assert artifact["git_sha"]
        expected = [
            cell.key
            for cell in iter_compatible()
            if any("leaf-coloring" in part for part in cell.key)
        ]
        got = [
            (c["problem"], c["algorithm"], c["family"])
            for c in artifact["cells"]
        ]
        assert got == expected
        for cell in artifact["cells"]:
            assert set(cell) == CELL_KEYS
            assert cell["ok"] is True
            assert isinstance(cell["volume_fit"], str)
            assert isinstance(cell["distance_fit"], str)
            assert len(cell["points"]) >= 2
            assert cell["executions"] == sum(
                p["executions"] for p in cell["points"]
            )
            assert cell["wall_time"] >= 0
            for point in cell["points"]:
                assert set(point) == POINT_KEYS
                assert point["valid"] is True
                assert point["executions"] == point["n"]
        # --only leaf-coloring also selects the Prop 3.13 adversary, so
        # the schema-v3 lower_bounds section must be present and gated.
        lower_bounds = artifact["lower_bounds"]
        assert [r["adversary"] for r in lower_bounds] == [
            "prop313/leaf-coloring"
        ]
        for record in lower_bounds:
            assert set(record) == LOWER_BOUND_KEYS
            assert record["ok"] is True
            assert record["queries_fit"] in record["expected_fit"]
            for point in record["points"]:
                assert set(point) == LOWER_BOUND_POINT_KEYS
                assert point["upheld"] is True
        # Schema v4: one monte_carlo record per selected matrix cell,
        # fixed vs adaptive estimation with agreeing verdicts.
        monte_carlo = artifact["monte_carlo"]
        assert [
            (r["problem"], r["algorithm"], r["family"]) for r in monte_carlo
        ] == got
        for record in monte_carlo:
            assert set(record) == MC_KEYS
            assert set(record["fixed"]) == MC_ESTIMATE_KEYS
            assert set(record["adaptive"]) == MC_ESTIMATE_KEYS
            # The prefix gate runs live exactly where it is meaningful:
            # deterministic cells replay (identical trials by
            # construction), randomized cells re-execute.
            assert record["adaptive_mode"] == (
                "live" if record["randomized"] else "replayed"
            )
            assert record["ok"] is True
            assert record["verdicts_agree"] is True
            assert record["fixed"]["stopped"] == "fixed"
            assert record["adaptive"]["trials"] <= record["fixed"]["trials"]
            assert record["trials_saved"] == (
                record["fixed"]["trials"] - record["adaptive"]["trials"]
            )
        # Schema v5: --only leaf-coloring also matches the implicit
        # leaf-coloring-hard family, so the implicit_scaling section
        # must carry its differential + giant-probe record.
        implicit_scaling = artifact["implicit_scaling"]
        assert [r["family"] for r in implicit_scaling] == [
            "leaf-coloring-hard"
        ]
        for record in implicit_scaling:
            assert record["ok"] is True
            assert record["differential"]["ok"] is True
            assert record["probe"]["ok"] is True
        summary = artifact["summary"]
        assert summary["cells"] == len(artifact["cells"])
        assert summary["failed"] == 0
        assert summary["lower_bounds"] == len(lower_bounds)
        assert summary["lower_bounds_failed"] == 0
        assert summary["monte_carlo"]["cells"] == len(monte_carlo)
        assert summary["monte_carlo"]["failed"] == 0
        assert summary["implicit_scaling"]["families"] == len(
            implicit_scaling
        )
        assert summary["implicit_scaling"]["failed"] == 0
        assert summary["executions"] == sum(
            c["executions"] for c in artifact["cells"]
        )
        assert summary["wall_time"] == pytest.approx(
            sum(c["wall_time"] for c in artifact["cells"])
        )
        assert summary["execs_per_sec"] is None or summary["execs_per_sec"] > 0

    def test_adversary_only_bench(self, tmp_path, capsys):
        """--only can select just a lower-bound game (no matrix cells)."""
        out = tmp_path / "bench.json"
        assert main([
            "bench",
            "--quick",
            "--only",
            "prop49",
            "--no-serve",
            "--out",
            str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        assert artifact["cells"] == []
        assert [r["adversary"] for r in artifact["lower_bounds"]] == [
            "prop49/balanced-tree"
        ]
        record = artifact["lower_bounds"][0]
        assert record["bits_fit"] == "n"
        assert all(p["bits"] is not None for p in record["points"])

    def test_reference_backend_recorded_in_artifact(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench",
            "--quick",
            "--only",
            "constant",
            "--backend",
            "reference",
            "--no-serve",
            "--out",
            str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        assert artifact["backend"] == "reference"
        assert artifact["oracle"] == "reference"

    def test_stdout_summary_mentions_artifact(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        main(["bench", "--only", "constant", "--no-serve",
              "--out", str(out)])
        stdout = capsys.readouterr().out
        assert "0 failed" in stdout
        assert str(out) in stdout


class TestValidationGate:
    def test_run_cell_flags_invalid_outputs(self):
        # An artificial cell pairing a solver with the wrong problem:
        # "ok" is not a proper 2-coloring, so validation must fail.
        cell = MatrixCell(
            problem=PROBLEMS.get("cycle-2-coloring"),
            algorithm=ALGORITHMS.get("constant/echo-ok"),
            family=FAMILIES.get("cycle"),
        )
        record = run_cell(cell, "quick", SerialBackend())
        assert record["ok"] is False
        assert all(not point["valid"] for point in record["points"])
        assert record["points"][0]["violations"]

    def test_randomized_cells_pin_registered_seed(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main([
            "bench",
            "--only",
            "waypoint",
            "--no-serve",
            "--out",
            str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        by_algorithm = {c["algorithm"]: c for c in artifact["cells"]}
        for name, cell in by_algorithm.items():
            assert cell["randomized"] is True
            assert cell["seed"] == ALGORITHMS.get(name).seed
