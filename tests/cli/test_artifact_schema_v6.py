"""Golden-artifact schema v6: JSON-schema validation + reader shims.

The committed ``BENCH_repro.json`` at the repo root is the golden
artifact: it must validate against the formal JSON-schema document that
ships with the CLI (``repro/cli/schemas/bench-v6.schema.json``), it
must document the PR-5 acceptance criterion (adaptive early stopping
reaching the same verdicts as the fixed-count runs on every registry
cell while executing strictly fewer total trials), the PR-7 criterion
(every implicit-capable family checked against its materialized factory
and probed past n = 10^7 through the bounded-memory implicit oracle),
and — new in v6 — the PR-10 criterion: a measured ``serving`` section
from a live ``repro serve`` instance where the warm (repeat) phase is
answered entirely from the result store with bitwise-identical bodies
and zero new executions.
"""

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip(
    "jsonschema", reason="jsonschema ships in the dev extra"
)

from repro.cli import main  # noqa: E402
from repro.cli.bench import (  # noqa: E402
    SCHEMA_DOCUMENT,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    load_artifact,
    upgrade_artifact,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "BENCH_repro.json"


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_DOCUMENT.read_text())


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


class TestSchemaDocument:
    def test_document_is_itself_valid_draft7(self, schema):
        jsonschema.Draft7Validator.check_schema(schema)

    def test_document_pins_current_version(self, schema):
        assert schema["properties"]["schema"]["const"] == SCHEMA_NAME
        assert (
            schema["properties"]["schema_version"]["const"] == SCHEMA_VERSION
        )


class TestGoldenArtifact:
    def test_golden_artifact_validates(self, schema, golden):
        jsonschema.validate(golden, schema)
        assert golden["schema_version"] == 6
        assert golden["mode"] == "quick"

    def test_monte_carlo_section_covers_every_cell(self, golden):
        cells = {
            (c["problem"], c["algorithm"], c["family"])
            for c in golden["cells"]
        }
        mc = {
            (r["problem"], r["algorithm"], r["family"])
            for r in golden["monte_carlo"]
        }
        assert mc == cells

    def test_acceptance_criterion(self, golden):
        """Same verdicts on every cell, strictly fewer total trials."""
        assert golden["monte_carlo"], "monte_carlo section must be populated"
        for record in golden["monte_carlo"]:
            assert record["ok"] is True
            assert record["verdicts_agree"] is True
            assert record["prefix_consistent"] is True
            assert (
                record["adaptive"]["trials"] <= record["fixed"]["trials"]
            )
        summary = golden["summary"]["monte_carlo"]
        assert summary["failed"] == 0
        assert summary["adaptive_trials"] < summary["fixed_trials"]
        assert summary["trials_saved"] == (
            summary["fixed_trials"] - summary["adaptive_trials"]
        )

    def test_summary_totals_are_consistent(self, golden):
        summary = golden["summary"]["monte_carlo"]
        assert summary["cells"] == len(golden["monte_carlo"])
        assert summary["fixed_trials"] == sum(
            r["fixed"]["trials"] for r in golden["monte_carlo"]
        )
        assert summary["adaptive_trials"] == sum(
            r["adaptive"]["trials"] for r in golden["monte_carlo"]
        )

    def test_implicit_scaling_covers_every_implicit_family(self, golden):
        from repro.registry import FAMILIES, load_components

        load_components()
        implicit = {e.name for e in FAMILIES if e.implicit}
        assert implicit, "registry must declare implicit families"
        assert {r["family"] for r in golden["implicit_scaling"]} == implicit

    def test_implicit_scaling_acceptance_criterion(self, golden):
        """Every family differential-checked and probed past n = 10^7."""
        assert golden["implicit_scaling"]
        for record in golden["implicit_scaling"]:
            assert record["ok"] is True
            assert record["differential"]["ok"] is True
            assert record["probe"]["ok"] is True
            assert record["n"] >= 10_000_000
        summary = golden["summary"]["implicit_scaling"]
        assert summary["families"] == len(golden["implicit_scaling"])
        assert summary["failed"] == 0
        assert summary["max_n"] == max(
            r["n"] for r in golden["implicit_scaling"]
        )
        assert summary["max_n"] >= 10_000_000

    def test_serving_section_is_populated_and_gated(self, golden):
        """PR-10 acceptance: measured serving numbers, warm phase served
        from the store with bitwise-identical bodies and no new work."""
        serving = golden["serving"]
        assert serving is not None
        assert serving["ok"] is True
        assert serving["failures"] == []
        assert [p["name"] for p in serving["phases"]] == ["cold", "repeat"]
        cold, repeat = serving["phases"]
        assert cold["statuses"] == {"200": cold["requests"]}
        assert repeat["statuses"] == {"200": repeat["requests"]}
        # Every warm request came back from the sqlite store, bitwise
        # identical to the cold response, with zero new executions.
        assert repeat["store_hits"] == repeat["requests"]
        assert repeat["store_hit_rate"] == 1.0
        assert serving["repeat_identical"] is True
        assert serving["repeat_mismatches"] == 0
        assert serving["repeat_executions"] == 0
        probes = serving["probes"]
        assert probes["deadline"]["other"] == 0
        assert probes["burst"]["other"] == 0
        assert serving["batch_histogram"]

    def test_serving_summary_matches_section(self, golden):
        serving = golden["serving"]
        summary = golden["summary"]["serving"]
        assert summary["requests"] == sum(
            p["requests"] for p in serving["phases"]
        )
        warm = serving["phases"][-1]
        assert summary["warm_rps"] == warm["rps"]
        assert summary["p50_ms"] == warm["latency_ms"]["p50"]
        assert summary["p99_ms"] == warm["latency_ms"]["p99"]
        assert summary["store_hit_rate"] == warm["store_hit_rate"]
        assert summary["ok"] is True


class TestFreshArtifact:
    def test_fresh_quick_artifact_validates(self, tmp_path, schema, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--only", "relay", "--no-serve",
            "--out", str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        jsonschema.validate(artifact, schema)
        assert artifact["monte_carlo"]
        for record in artifact["monte_carlo"]:
            assert record["adaptive"]["stopped"] in (
                "converged", "budget",
            )
            assert record["fixed"]["stopped"] == "fixed"

    def test_only_filter_applies_to_implicit_section(
        self, tmp_path, schema, capsys
    ):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--only", "cycle-uniform", "--no-mc",
            "--no-serve", "--out", str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        jsonschema.validate(artifact, schema)
        assert [
            r["family"] for r in artifact["implicit_scaling"]
        ] == ["cycle-uniform"]
        record = artifact["implicit_scaling"][0]
        assert record["ok"] is True
        assert record["n"] >= 10_000_000

    def test_no_flags_keep_schema_valid(self, tmp_path, schema, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--only", "constant", "--no-mc",
            "--no-implicit", "--no-serve", "--out", str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        jsonschema.validate(artifact, schema)
        assert artifact["monte_carlo"] == []
        assert artifact["summary"]["monte_carlo"]["cells"] == 0
        assert artifact["implicit_scaling"] == []
        assert artifact["summary"]["implicit_scaling"] == {
            "families": 0,
            "failed": 0,
            "max_n": 0,
        }
        assert artifact["serving"] is None
        assert artifact["summary"]["serving"] is None


def _minimal_v3():
    return {
        "schema": SCHEMA_NAME,
        "schema_version": 3,
        "generated": "2026-01-01T00:00:00Z",
        "mode": "quick",
        "backend": "serial",
        "oracle": "compiled",
        "git_sha": "abc",
        "python": "3.12.0",
        "cells": [],
        "lower_bounds": [],
        "summary": {
            "cells": 0,
            "points": 0,
            "failed": 0,
            "executions": 0,
            "wall_time": 0.0,
            "execs_per_sec": None,
            "elapsed": 0.0,
            "lower_bounds": 0,
            "lower_bounds_failed": 0,
        },
    }


def _minimal_v4():
    payload = _minimal_v3()
    payload["schema_version"] = 4
    payload["monte_carlo"] = []
    payload["summary"]["monte_carlo"] = {
        "cells": 0,
        "failed": 0,
        "fixed_trials": 0,
        "adaptive_trials": 0,
        "trials_saved": 0,
    }
    return payload


def _minimal_v5():
    payload = _minimal_v4()
    payload["schema_version"] = 5
    payload["implicit_scaling"] = []
    payload["summary"]["implicit_scaling"] = {
        "families": 0,
        "failed": 0,
        "max_n": 0,
    }
    return payload


class TestUpgradeShim:
    def test_v3_upgrades_to_v6(self, schema):
        upgraded = upgrade_artifact(_minimal_v3())
        assert upgraded["schema_version"] == 6
        assert upgraded["monte_carlo"] == []
        assert upgraded["summary"]["monte_carlo"] == {
            "cells": 0,
            "failed": 0,
            "fixed_trials": 0,
            "adaptive_trials": 0,
            "trials_saved": 0,
        }
        assert upgraded["implicit_scaling"] == []
        assert upgraded["summary"]["implicit_scaling"] == {
            "families": 0,
            "failed": 0,
            "max_n": 0,
        }
        assert upgraded["serving"] is None
        assert upgraded["summary"]["serving"] is None
        jsonschema.validate(upgraded, schema)

    def test_v4_upgrades_to_v6(self, schema):
        upgraded = upgrade_artifact(_minimal_v4())
        assert upgraded["schema_version"] == 6
        assert upgraded["implicit_scaling"] == []
        assert upgraded["serving"] is None
        jsonschema.validate(upgraded, schema)

    def test_v5_upgrades_to_v6(self, schema):
        upgraded = upgrade_artifact(_minimal_v5())
        assert upgraded["schema_version"] == 6
        assert upgraded["serving"] is None
        assert upgraded["summary"]["serving"] is None
        jsonschema.validate(upgraded, schema)

    def test_v6_passes_through_untouched(self, golden):
        import copy

        payload = copy.deepcopy(golden)
        assert upgrade_artifact(payload) == golden

    def test_load_artifact_reads_v3_files(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(_minimal_v3()))
        artifact = load_artifact(path)
        assert artifact["schema_version"] == 6
        assert artifact["monte_carlo"] == []
        assert artifact["implicit_scaling"] == []
        assert artifact["serving"] is None

    def test_rejects_foreign_and_future_payloads(self):
        with pytest.raises(ValueError, match="not a repro-bench"):
            upgrade_artifact({"schema": "something-else"})
        too_new = _minimal_v3()
        too_new["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this reader"):
            upgrade_artifact(too_new)
        too_old = _minimal_v3()
        too_old["schema_version"] = 2
        with pytest.raises(ValueError, match="v3\\+ supported"):
            upgrade_artifact(too_old)
