"""Tests for the Hybrid-THC(k) and HH-THC(k, ℓ) solvers (Section 6)."""

import math
import random

import pytest

from repro.algorithms.hh_algs import (
    HHDistanceSolver,
    HHFullGather,
    HHWaypointSolver,
)
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridRecursiveSolver,
    HybridWaypointSolver,
)
from repro.graphs.generators import hh_thc_instance, hybrid_thc_instance
from repro.graphs.labelings import DECLINE, EXEMPT
from repro.model.runner import run_algorithm, solve_and_check
from repro.problems.hh_thc import HHTHC
from repro.problems.hybrid_thc import HybridTHC


class TestHybridDistanceSolver:
    @pytest.mark.parametrize("k,m,d", [(2, 3, 2), (3, 2, 2)])
    def test_solves(self, k, m, d):
        inst = hybrid_thc_instance(k, m, d, rng=random.Random(k))
        report = solve_and_check(HybridTHC(k), inst, HybridDistanceSolver(k))
        assert report.valid, report.violations[:4]

    def test_solves_broken_bt(self):
        inst = hybrid_thc_instance(
            2, 3, 3, rng=random.Random(1), compatible=False
        )
        report = solve_and_check(HybridTHC(2), inst, HybridDistanceSolver(2))
        assert report.valid, report.violations[:4]

    def test_distance_logarithmic(self):
        inst = hybrid_thc_instance(2, 3, 5, rng=random.Random(2))
        result = run_algorithm(inst, HybridDistanceSolver(2))
        n = inst.graph.num_nodes
        assert result.max_distance <= math.ceil(math.log2(n)) + 6

    def test_everything_above_level_one_exempt(self):
        inst = hybrid_thc_instance(3, 2, 2, rng=random.Random(3))
        result = run_algorithm(inst, HybridDistanceSolver(3))
        for node, out in result.outputs.items():
            if inst.label(node).level >= 2:
                assert out == EXEMPT


class TestHybridRecursiveAndWaypoint:
    @pytest.mark.parametrize("cls", [HybridRecursiveSolver, HybridWaypointSolver])
    def test_solves_balanced(self, cls):
        inst = hybrid_thc_instance(2, 3, 2, rng=random.Random(5))
        algo = cls(2)
        report = solve_and_check(HybridTHC(2), inst, algo, seed=4)
        assert report.valid, report.violations[:4]

    @pytest.mark.parametrize("cls", [HybridRecursiveSolver, HybridWaypointSolver])
    def test_solves_deep_top(self, cls):
        # deep level-2 backbone: length 40 vs threshold 2*sqrt(n)
        inst = hybrid_thc_instance(
            2, 4, 2, rng=random.Random(6), lengths=[40]
        )
        algo = cls(2)
        report = solve_and_check(HybridTHC(2), inst, algo, seed=8)
        assert report.valid, report.violations[:4]

    def test_huge_bt_components_decline(self):
        """Level-1 components above the gather budget decline unanimously."""
        inst = hybrid_thc_instance(2, 2, 6, rng=random.Random(7))
        algo = HybridRecursiveSolver(2)
        # shrink the budget artificially to force declines
        algo.component_budget = lambda view: 16
        report = solve_and_check(HybridTHC(2), inst, algo)
        assert report.valid, report.violations[:4]
        level_one = [
            v for v in inst.graph.nodes() if inst.label(v).level == 1
        ]
        assert all(report.run.outputs[v] == DECLINE for v in level_one)

    def test_waypoint_volume_sublinear(self):
        inst = hybrid_thc_instance(2, 3, 4, rng=random.Random(8), lengths=[24])
        n = inst.graph.num_nodes
        result = run_algorithm(
            inst, HybridWaypointSolver(2), seed=2,
            nodes=list(inst.graph.nodes())[:40],
        )
        assert result.max_volume < n / 2


class TestHHSolvers:
    def _instance(self, seed=0):
        return hh_thc_instance(2, 3, 3, 2, 2, rng=random.Random(seed))

    def test_distance_solver(self):
        inst = self._instance()
        report = solve_and_check(HHTHC(2, 3), inst, HHDistanceSolver(2, 3))
        assert report.valid, report.violations[:4]

    def test_waypoint_solver(self):
        inst = self._instance(1)
        report = solve_and_check(
            HHTHC(2, 3), inst, HHWaypointSolver(2, 3), seed=6
        )
        assert report.valid, report.violations[:4]

    def test_full_gather(self):
        inst = self._instance(2)
        report = solve_and_check(HHTHC(2, 3), inst, HHFullGather(2, 3))
        assert report.valid, report.violations[:4]
        # full gather explores the node's own component only
        assert report.run.max_volume == max(
            inst.meta["part0_nodes"], inst.meta["part1_nodes"]
        )
