"""Tests for the LeafColoring algorithms (Theorem 3.6 upper bounds)."""

import math
import random


from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
    SecretRWtoLeaf,
)
from repro.graphs.generators import (
    corrupt_instance,
    hard_leaf_coloring_instance,
    leaf_coloring_instance,
    random_tree_instance,
)
from repro.model.runner import run_algorithm, solve_and_check
from repro.problems.leaf_coloring import LeafColoring

PROBLEM = LeafColoring()


def log2n(instance):
    return math.log2(max(2, instance.graph.num_nodes))


class TestDistanceSolver:
    def test_solves_complete_trees(self):
        for depth in (1, 3, 5):
            inst = leaf_coloring_instance(depth, rng=random.Random(depth))
            report = solve_and_check(PROBLEM, inst, LeafColoringDistanceSolver())
            assert report.valid, report.violations[:3]

    def test_solves_random_trees(self):
        for seed in range(6):
            inst = random_tree_instance(70, rng=random.Random(seed))
            report = solve_and_check(PROBLEM, inst, LeafColoringDistanceSolver())
            assert report.valid, report.violations[:3]

    def test_solves_pseudo_trees_with_cycles(self):
        for seed in range(4):
            inst = random_tree_instance(
                70, rng=random.Random(seed), with_cycle=True, cycle_length=6
            )
            report = solve_and_check(PROBLEM, inst, LeafColoringDistanceSolver())
            assert report.valid, report.violations[:3]

    def test_solves_corrupted(self):
        inst = corrupt_instance(
            leaf_coloring_instance(4), 0.2, rng=random.Random(1)
        )
        report = solve_and_check(PROBLEM, inst, LeafColoringDistanceSolver())
        assert report.valid, report.violations[:3]

    def test_distance_is_logarithmic(self):
        """Prop 3.9: DIST = O(log n) on complete trees."""
        for depth in (4, 6, 8):
            inst = leaf_coloring_instance(depth, rng=random.Random(0))
            result = run_algorithm(inst, LeafColoringDistanceSolver())
            assert result.max_distance <= depth + 2

    def test_volume_can_be_large(self):
        """The distance solver explores whole subtrees: volume Θ(n) at root
        on unanimous-deep instances (that's why it is not a volume bound)."""
        inst = leaf_coloring_instance(6, rng=random.Random(3))
        result = run_algorithm(inst, LeafColoringDistanceSolver())
        assert result.max_volume > 3 * result.max_distance


class TestRWtoLeaf:
    def test_solves_complete_trees_whp(self):
        inst = leaf_coloring_instance(6, rng=random.Random(0))
        report = solve_and_check(PROBLEM, inst, RWtoLeaf(), seed=11)
        assert report.valid, report.violations[:3]

    def test_solves_cycle_instances(self):
        for seed in range(4):
            inst = random_tree_instance(
                90, rng=random.Random(seed), with_cycle=True, cycle_length=8
            )
            report = solve_and_check(PROBLEM, inst, RWtoLeaf(), seed=seed)
            assert report.valid, report.violations[:3]

    def test_volume_logarithmic_whp(self):
        """Prop 3.10: every node's volume is O(log n) w.h.p."""
        inst = leaf_coloring_instance(9, rng=random.Random(0))  # n = 1023
        result = run_algorithm(inst, RWtoLeaf(), seed=5)
        bound = 16 * log2n(inst) * 3  # generous constant: 3 queries/step
        assert result.max_volume <= bound
        assert not result.truncated_nodes

    def test_walks_merge(self):
        """All internal nodes on a root-leaf walk output the same color as
        where their walks merge — verified indirectly by validity, and
        directly here: the root's output appears along a full child path."""
        inst = leaf_coloring_instance(6, rng=random.Random(2))
        result = run_algorithm(inst, RWtoLeaf(), seed=3)
        outputs = result.outputs
        assert PROBLEM.validate(inst, outputs) == []

    def test_deterministic_given_seed(self):
        inst = leaf_coloring_instance(5, rng=random.Random(1))
        r1 = run_algorithm(inst, RWtoLeaf(), seed=42)
        r2 = run_algorithm(inst, RWtoLeaf(), seed=42)
        assert r1.outputs == r2.outputs

    def test_different_seeds_can_differ(self):
        inst = leaf_coloring_instance(6, rng=random.Random(1))
        outs = set()
        for seed in range(6):
            r = run_algorithm(
                inst, RWtoLeaf(), seed=seed, nodes=[inst.meta["root"]]
            )
            outs.add(r.outputs[inst.meta["root"]])
        # mixed leaf colors: different walks may reach different leaves
        assert len(outs) >= 1  # smoke: at minimum it runs; often 2


class TestSecretRW:
    def test_solves_promise_instances(self):
        """Section 7.4: secret randomness suffices for the promise variant."""
        inst = hard_leaf_coloring_instance(7, rng=random.Random(0))
        report = solve_and_check(PROBLEM, inst, SecretRWtoLeaf(), seed=1)
        assert report.valid

    def test_fails_on_general_instances(self):
        """Without coordination, walks diverge and some instance breaks it."""
        failed = False
        for seed in range(12):
            inst = leaf_coloring_instance(5, rng=random.Random(seed))
            report = solve_and_check(PROBLEM, inst, SecretRWtoLeaf(), seed=seed)
            if not report.valid:
                failed = True
                break
        assert failed, "secret-randomness walk should break on mixed colors"


class TestFullGather:
    def test_solves_everything(self):
        inst = leaf_coloring_instance(4, rng=random.Random(0))
        report = solve_and_check(PROBLEM, inst, LeafColoringFullGather())
        assert report.valid

    def test_volume_is_linear(self):
        inst = leaf_coloring_instance(5, rng=random.Random(0))
        result = run_algorithm(inst, LeafColoringFullGather())
        assert result.max_volume == inst.graph.num_nodes

    def test_solves_corrupted_and_cyclic(self):
        inst = random_tree_instance(
            60, rng=random.Random(2), with_cycle=True, cycle_length=5
        )
        inst = corrupt_instance(inst, 0.1, rng=random.Random(3))
        report = solve_and_check(PROBLEM, inst, LeafColoringFullGather())
        assert report.valid, report.violations[:3]
