"""Tests for BalancedTree algorithms, including the CONGEST protocol."""

import math
import random


from repro.algorithms.balanced_tree_algs import (
    BalancedTreeCongestFlood,
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    disjointness_embedding,
)
from repro.graphs.labelings import BALANCED, UNBALANCED
from repro.model.congest import run_congest
from repro.model.runner import run_algorithm, solve_and_check
from repro.problems.balanced_tree import BalancedTree

PROBLEM = BalancedTree()


class TestDistanceSolver:
    def test_solves_compatible(self):
        for depth in (2, 3, 4):
            inst = balanced_tree_instance(depth, rng=random.Random(depth))
            report = solve_and_check(PROBLEM, inst, BalancedTreeDistanceSolver())
            assert report.valid, report.violations[:3]

    def test_solves_broken(self):
        for seed in range(6):
            inst = balanced_tree_instance(
                4, compatible=False, rng=random.Random(seed), break_count=2
            )
            report = solve_and_check(PROBLEM, inst, BalancedTreeDistanceSolver())
            assert report.valid, report.violations[:3]

    def test_distance_logarithmic(self):
        for depth in (3, 5):
            inst = balanced_tree_instance(depth, rng=random.Random(0))
            result = run_algorithm(inst, BalancedTreeDistanceSolver())
            # nearest leaf at depth <= depth; horizon adds small constant
            assert result.max_distance <= depth + 4

    def test_root_says_balanced_on_clean(self):
        inst = balanced_tree_instance(3)
        result = run_algorithm(inst, BalancedTreeDistanceSolver())
        assert result.outputs[inst.meta["root"]] == (BALANCED, None)

    def test_root_says_unbalanced_on_broken(self):
        inst = balanced_tree_instance(4, compatible=False, rng=random.Random(3))
        result = run_algorithm(inst, BalancedTreeDistanceSolver())
        assert result.outputs[inst.meta["root"]][0] == UNBALANCED


class TestFullGather:
    def test_solves_disjointness_instances(self):
        a = [1, 0, 1, 0]
        b = [0, 1, 0, 1]
        inst = disjointness_embedding(a, b)
        report = solve_and_check(PROBLEM, inst, BalancedTreeFullGather())
        assert report.valid
        assert report.run.outputs[inst.meta["root"]][0] == BALANCED

    def test_volume_linear(self):
        inst = balanced_tree_instance(4)
        result = run_algorithm(inst, BalancedTreeFullGather())
        assert result.max_volume == inst.graph.num_nodes


class TestCongestFlood:
    """Observation 7.4: O(log n) CONGEST rounds with O(log n)-bit messages."""

    def _run(self, inst):
        n = inst.graph.num_nodes
        id_bits = max(4, math.ceil(math.log2(n + 1)))
        bandwidth = 16 * id_bits + 80  # O(log n) bits
        algo = BalancedTreeCongestFlood(id_bits=id_bits)
        return run_congest(
            inst, algo, bandwidth=bandwidth, max_rounds=4 * id_bits + 16
        )

    def test_valid_on_compatible(self):
        inst = balanced_tree_instance(3, rng=random.Random(0))
        result = self._run(inst)
        assert result.all_terminated
        assert PROBLEM.validate(inst, result.outputs) == [], (
            PROBLEM.validate(inst, result.outputs)[:3]
        )

    def test_valid_on_broken(self):
        for seed in range(4):
            inst = balanced_tree_instance(
                4, compatible=False, rng=random.Random(seed)
            )
            result = self._run(inst)
            assert result.all_terminated
            assert PROBLEM.validate(inst, result.outputs) == [], (
                seed,
                PROBLEM.validate(inst, result.outputs)[:3],
            )

    def test_rounds_logarithmic(self):
        rounds = []
        for depth in (3, 5, 7):
            inst = balanced_tree_instance(depth, rng=random.Random(1))
            result = self._run(inst)
            rounds.append(result.rounds)
            n = inst.graph.num_nodes
            # 5 setup rounds + (log n + 2) flooding + 1 decision round
            assert result.rounds <= math.ceil(math.log2(n)) + 9
        assert rounds == sorted(rounds)
