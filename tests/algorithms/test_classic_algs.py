"""Tests for the classic-problem algorithms (Figures 1–2, Example 7.6)."""

import math
import random

import pytest

from repro.algorithms.classic_algs import (
    ColeVishkinColoring,
    MISFromColoring,
    RelayCongest,
    RelayProbeSolver,
    TwoColoringGather,
    cv_iterations,
)
from repro.graphs.generators import cycle_instance, relay_instance
from repro.model.congest import run_congest
from repro.model.runner import run_algorithm, solve_and_check
from repro.problems.classic.cycle_coloring import (
    CycleColoring,
    MaximalIndependentSet,
    TwoColoring,
)
from repro.problems.classic.relay import RelayProblem


class TestCVIterations:
    def test_small_fixed_point(self):
        assert cv_iterations(3) == 0

    def test_monotone_and_tiny(self):
        # log* growth: even 2^16-bit IDs need only a handful of rounds
        assert cv_iterations(8) <= 4
        assert cv_iterations(64) <= 6
        assert cv_iterations(2**16) <= 8

    def test_iterated_log_behaviour(self):
        assert cv_iterations(64) <= cv_iterations(2**20)


class TestColeVishkin:
    @pytest.mark.parametrize("n", [8, 16, 64, 256])
    def test_proper_coloring(self, n):
        inst = cycle_instance(n, rng=random.Random(n))
        report = solve_and_check(CycleColoring(3), inst, ColeVishkinColoring())
        assert report.valid, report.violations[:4]

    def test_distance_is_log_star(self):
        """Class B: distance (and volume) Θ(log* n) — tiny and flat."""
        costs = []
        for n in (16, 256, 4096):
            inst = cycle_instance(n, rng=random.Random(1))
            result = run_algorithm(inst, ColeVishkinColoring())
            costs.append(result.max_distance)
        assert all(c <= 24 for c in costs)
        # growth between n=16 and n=4096 is at most a couple of rounds
        assert costs[-1] - costs[0] <= 6

    def test_volume_close_to_distance(self):
        inst = cycle_instance(128, rng=random.Random(2))
        result = run_algorithm(inst, ColeVishkinColoring())
        assert result.max_volume <= 2 * result.max_distance + 4


class TestMIS:
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_valid_mis(self, n):
        inst = cycle_instance(n, rng=random.Random(n))
        report = solve_and_check(
            MaximalIndependentSet(), inst, MISFromColoring()
        )
        assert report.valid, report.violations[:4]


class TestTwoColoring:
    @pytest.mark.parametrize("n", [4, 10, 64])
    def test_proper_on_even_cycles(self, n):
        inst = cycle_instance(n, rng=random.Random(n))
        report = solve_and_check(TwoColoring(), inst, TwoColoringGather())
        assert report.valid, report.violations[:4]

    def test_distance_is_linear(self):
        """Class D: the whole cycle must be explored."""
        inst = cycle_instance(32, rng=random.Random(0))
        result = run_algorithm(inst, TwoColoringGather())
        assert result.max_volume == 32


class TestRelayProbe:
    @pytest.mark.parametrize("depth", [2, 4, 6])
    def test_correct(self, depth):
        inst = relay_instance(depth, rng=random.Random(depth))
        report = solve_and_check(RelayProblem(), inst, RelayProbeSolver())
        assert report.valid, report.violations[:4]

    def test_volume_logarithmic(self):
        inst = relay_instance(7, rng=random.Random(0))  # n = 510
        result = run_algorithm(inst, RelayProbeSolver())
        n = inst.graph.num_nodes
        assert result.max_volume <= 3 * math.log2(n) + 6


class TestRelayCongest:
    def _run(self, depth, bandwidth):
        inst = relay_instance(depth, rng=random.Random(depth))
        n = inst.graph.num_nodes
        id_bits = math.ceil(math.log2(n + 1))
        algo = RelayCongest(depth=depth, id_bits=id_bits, bandwidth=bandwidth)
        left_leaves = set(inst.meta["left_leaves"])

        def leaves_done(outputs):
            return all(outputs[v] is not None for v in left_leaves)

        result = run_congest(
            inst,
            algo,
            bandwidth=bandwidth,
            max_rounds=16 * 2**depth + 64,
            done_predicate=leaves_done,
        )
        return inst, result

    def test_correct_outputs(self):
        inst, result = self._run(depth=4, bandwidth=64)
        for u_leaf, v_leaf in inst.meta["pairing"].items():
            assert result.outputs[u_leaf] == inst.label(v_leaf).bit

    def test_rounds_scale_with_n_over_b(self):
        """Example 7.6: rounds ≈ N·pair_bits/B — inversely in B."""
        _, narrow = self._run(depth=5, bandwidth=16)
        _, wide = self._run(depth=5, bandwidth=256)
        assert narrow.rounds > 2 * wide.rounds

    def test_rounds_grow_linearly_in_n(self):
        rounds = []
        for depth in (3, 5):
            inst, result = self._run(depth=depth, bandwidth=16)
            n_leaves = len(inst.meta["left_leaves"])
            pair_bits = math.ceil(math.log2(inst.graph.num_nodes + 1)) + 1
            # the Ω(N·pair_bits/B) bridge bottleneck (Example 7.6)
            assert result.rounds >= n_leaves * pair_bits / 16
            rounds.append(result.rounds)
        assert rounds[1] >= 2 * rounds[0]
