"""Tests for RecursiveHTHC and WaypointHTHC (Section 5)."""

import math
import random

import pytest

from repro.algorithms.hierarchical_algs import (
    HierarchicalFullGather,
    RecursiveHTHC,
    WaypointHTHC,
)
from repro.graphs.generators import hierarchical_thc_instance
from repro.graphs.labelings import DECLINE, EXEMPT
from repro.model.runner import run_algorithm, solve_and_check
from repro.problems.hierarchical_thc import HierarchicalTHC


def balanced(k, m, seed=0):
    return hierarchical_thc_instance(k, m, rng=random.Random(seed))


def deep_top(k, m, seed=0):
    """Top-level backbone longer than 2n^{1/k}: exercises the walk."""
    lengths = [m] * (k - 1) + [8 * m]
    return hierarchical_thc_instance(
        k, m, rng=random.Random(seed), lengths=lengths
    )


def deep_level_one(m, seed=0):
    """k=2 with deep level-1 components: forces declines."""
    return hierarchical_thc_instance(
        2, m, rng=random.Random(seed), lengths=[8 * m, m]
    )


def heavy_middle(seed=0):
    """k=3 with a deep+heavy level 2 over deep level-1 components.

    n = 3282, threshold 2n^{1/3} ≈ 29.7: level-1 and level-2 backbones of
    length 40 are deep, and H_2 (size 1640) is heavy (> n^{2/3} ≈ 221) —
    the only situation where Algorithm 2's dist(u, w) > 2n^{1/k} branch
    (decline at a middle level) can fire (see Lemma 5.11's dichotomy).
    """
    return hierarchical_thc_instance(
        3, 2, rng=random.Random(seed), lengths=[40, 40, 2]
    )


class TestRecursiveHTHC:
    @pytest.mark.parametrize("k,m", [(1, 5), (2, 4), (3, 3)])
    def test_solves_balanced_instances(self, k, m):
        inst = balanced(k, m)
        report = solve_and_check(
            HierarchicalTHC(k), inst, RecursiveHTHC(k)
        )
        assert report.valid, report.violations[:4]

    @pytest.mark.parametrize("k,m", [(2, 4), (3, 3)])
    def test_solves_deep_top_instances(self, k, m):
        inst = deep_top(k, m)
        report = solve_and_check(
            HierarchicalTHC(k), inst, RecursiveHTHC(k)
        )
        assert report.valid, report.violations[:4]

    def test_solves_deep_level_one(self):
        inst = deep_level_one(4)
        report = solve_and_check(
            HierarchicalTHC(2), inst, RecursiveHTHC(2)
        )
        assert report.valid, report.violations[:4]
        # deep level-1 components decline
        assert DECLINE in report.run.outputs.values()

    def test_heavy_middle_declines(self):
        """The dist > 2n^{1/k} branch: middle level declines on heavy H."""
        inst = heavy_middle()
        probes = list(inst.graph.nodes())[:200]
        report = solve_and_check(
            HierarchicalTHC(3), inst, RecursiveHTHC(3)
        )
        assert report.valid, report.violations[:4]
        # some level-2 node declined
        from repro.graphs.tree_structure import InstanceTopology, level_of

        topo = InstanceTopology(inst)
        declined_l2 = [
            v
            for v, out in report.run.outputs.items()
            if out == DECLINE and level_of(topo, v, cap=3) == 2
        ]
        assert declined_l2

    def test_distance_bound(self):
        """Prop 5.12: distance O(k n^{1/k})."""
        k, m = 2, 6
        inst = deep_top(k, m)
        result = run_algorithm(inst, RecursiveHTHC(k))
        n = inst.graph.num_nodes
        bound = 4 * k * (2 * n ** (1 / k) + 4)
        assert result.max_distance <= bound

    def test_exempt_above_colored_components(self):
        k, m = 2, 4
        inst = deep_top(k, m)
        result = run_algorithm(inst, RecursiveHTHC(k))
        assert EXEMPT in result.outputs.values()


class TestWaypointHTHC:
    @pytest.mark.parametrize("k,m", [(2, 4), (3, 3)])
    def test_solves_balanced_instances(self, k, m):
        inst = balanced(k, m, seed=1)
        report = solve_and_check(
            HierarchicalTHC(k), inst, WaypointHTHC(k), seed=7
        )
        assert report.valid, report.violations[:4]

    def test_solves_deep_top_instances(self):
        for seed in range(3):
            inst = deep_top(2, 5, seed=seed)
            report = solve_and_check(
                HierarchicalTHC(2), inst, WaypointHTHC(2), seed=seed
            )
            assert report.valid, (seed, report.violations[:4])

    def test_solves_deep_level_one(self):
        inst = deep_level_one(5)
        report = solve_and_check(
            HierarchicalTHC(2), inst, WaypointHTHC(2), seed=3
        )
        assert report.valid, report.violations[:4]

    def test_volume_is_sublinear(self):
        """Prop 5.14: waypoint volume is Õ(n^{1/k}), far below n.

        (The Θ̃(n) *deterministic* volume bound of Table 1 is adversarial —
        Prop 5.20 — and is exercised in tests/lower_bounds; on static
        instances RecursiveHTHC may be cheap too.)
        """
        m = 30
        inst = deep_top(2, m, seed=2)  # n = 8m(m+1) = 7440
        n = inst.graph.num_nodes
        probes = [1, 2 * m, 4 * m, 8 * m]
        rnd = run_algorithm(inst, WaypointHTHC(2), seed=5, nodes=probes)
        assert rnd.max_volume <= 12 * math.sqrt(n) * math.log2(n)
        assert rnd.max_volume < n / 4

    def test_deterministic_given_seed(self):
        inst = deep_top(2, 4, seed=0)
        r1 = run_algorithm(inst, WaypointHTHC(2), seed=9)
        r2 = run_algorithm(inst, WaypointHTHC(2), seed=9)
        assert r1.outputs == r2.outputs


class TestFullGather:
    def test_solves_and_costs_n(self):
        inst = balanced(2, 4)
        report = solve_and_check(
            HierarchicalTHC(2), inst, HierarchicalFullGather(2)
        )
        assert report.valid
        assert report.run.max_volume == inst.graph.num_nodes
