"""The on-disk corpus: addressing, verification, archives, concurrency."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import (
    CorpusError,
    InstanceCorpus,
    content_hash,
    entry_key,
)
from repro.graphs.generators import cycle_instance

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestAddAndLoad:
    def test_add_is_idempotent(self, tmp_path):
        corpus = InstanceCorpus(tmp_path)
        key1, created1 = corpus.add("cycle", 8, 0, cycle_instance(8))
        key2, created2 = corpus.add("cycle", 8, 0, cycle_instance(8))
        assert key1 == key2 == entry_key("cycle", 8, 0)
        assert created1 and not created2
        assert len(corpus) == 1
        assert key1 in corpus

    def test_same_key_different_content_raises(self, tmp_path):
        corpus = InstanceCorpus(tmp_path)
        corpus.add("cycle", 8, 0, cycle_instance(8))
        with pytest.raises(CorpusError, match="non-deterministic"):
            corpus.add("cycle", 8, 0, cycle_instance(10))

    def test_get_round_trips(self, tmp_corpus):
        corpus = tmp_corpus
        instance = corpus.get("cycle", 8)
        assert instance is not None
        assert instance.n == 8
        assert corpus.get("cycle", 999) is None

    def test_entry_param_decodes(self, tmp_path):
        corpus = InstanceCorpus(tmp_path)
        key, _ = corpus.add("cycle", 8, 0, cycle_instance(8))
        assert corpus.entry_param(key) == 8

    def test_load_unknown_key_raises(self, tmp_corpus):
        with pytest.raises(CorpusError, match="no entry"):
            tmp_corpus.load_payload("deadbeefdeadbeef")

    def test_list_entries_sorted_with_provenance(self, tmp_corpus):
        entries = tmp_corpus.list_entries()
        assert [e.key for e in entries] == sorted(e.key for e in entries)
        by_family = {e.family: e for e in entries}
        assert by_family["cycle"].param_repr == "8"
        assert by_family["cycle"].n == 8

    def test_generate_uses_registry(self, tmp_path):
        corpus = InstanceCorpus(tmp_path)
        lines = []
        results = corpus.generate(
            "balanced-tree", grid="quick", progress=lines.append
        )
        assert all(created for _, created in results)
        assert len(corpus) == len(results) > 0
        assert len(lines) == len(results)
        again = corpus.generate("balanced-tree", grid="quick")
        assert not any(created for _, created in again)

    def test_manifest_format_mismatch_raises(self, tmp_corpus):
        corpus = tmp_corpus
        manifest = json.loads(corpus.manifest_path.read_text())
        manifest["format"] = "repro-corpus/999"
        corpus.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CorpusError, match="format"):
            corpus.list_entries()


class TestVerify:
    def test_clean_corpus_verifies(self, tmp_corpus):
        assert tmp_corpus.verify() == []

    def test_detects_bit_flip(self, tmp_corpus):
        corpus = tmp_corpus
        key = corpus.list_entries()[0].key
        path = corpus.entry_path(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01  # flip one bit mid-file
        path.write_bytes(bytes(blob))
        problems = corpus.verify()
        assert len(problems) == 1
        assert key in problems[0] and "hash mismatch" in problems[0]
        with pytest.raises(CorpusError, match="verification"):
            corpus.load_instance(key)

    def test_detects_missing_file(self, tmp_corpus):
        corpus = tmp_corpus
        key = corpus.list_entries()[0].key
        corpus.entry_path(key).unlink()
        assert any("missing" in p for p in corpus.verify())

    def test_detects_stray_file(self, tmp_corpus):
        corpus = tmp_corpus
        (corpus.entries_dir / "0000000000000000.json").write_text("{}")
        assert any("stray" in p for p in corpus.verify())

    def test_detects_misfiled_entry(self, tmp_corpus):
        # A file whose bytes are intact but filed under another key.
        corpus = tmp_corpus
        entries = {e.key: e for e in corpus.list_entries()}
        k1, k2 = sorted(entries)
        text = corpus.entry_path(k1).read_text()
        corpus.entry_path(k2).write_text(text)
        manifest = json.loads(corpus.manifest_path.read_text())
        manifest["entries"][k2]["content_hash"] = content_hash(text)
        corpus.manifest_path.write_text(json.dumps(manifest))
        assert any("wrong address" in p for p in corpus.verify())


class TestExportImport:
    def test_round_trip_preserves_hashes(self, tmp_path, make_corpus):
        source = make_corpus(tmp_path / "src")
        archive = tmp_path / "corpus.tar.gz"
        assert source.export(archive) == 2
        dest = InstanceCorpus(tmp_path / "dst")
        assert dest.import_archive(archive) == (2, 0)
        assert dest.verify() == []
        assert {e.key: e.content_hash for e in dest.list_entries()} == {
            e.key: e.content_hash for e in source.list_entries()
        }
        # Re-import is a clean no-op.
        assert dest.import_archive(archive) == (0, 2)

    def test_archives_are_deterministic(self, tmp_path, make_corpus):
        source = make_corpus(tmp_path / "src")
        a, b = tmp_path / "a.tar.gz", tmp_path / "b.tar.gz"
        source.export(a)
        source.export(b)
        assert a.read_bytes() == b.read_bytes()

    def test_export_refuses_corrupt_corpus(self, tmp_path, make_corpus):
        corpus = make_corpus(tmp_path / "src")
        key = corpus.list_entries()[0].key
        corpus.entry_path(key).write_text("tampered")
        with pytest.raises(CorpusError, match="refusing to export"):
            corpus.export(tmp_path / "bad.tar.gz")

    def test_import_rejects_tampered_archive(self, tmp_path, make_corpus):
        import io
        import tarfile

        source = make_corpus(tmp_path / "src")
        archive = tmp_path / "corpus.tar.gz"
        source.export(archive)
        # Rebuild the archive with one entry's bytes corrupted but the
        # manifest untouched.
        tampered = tmp_path / "tampered.tar.gz"
        with tarfile.open(archive) as tar:
            members = {
                m.name: tar.extractfile(m).read()
                for m in tar.getmembers()
            }
        victim = next(n for n in members if n.startswith("entries/"))
        members[victim] = members[victim].replace(b":", b";", 1)
        with tarfile.open(tampered, "w:gz") as tar:
            for name, data in members.items():
                info = tarfile.TarInfo(name=name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        dest = InstanceCorpus(tmp_path / "dst")
        with pytest.raises(CorpusError, match="fails verification"):
            dest.import_archive(tampered)
        assert len(dest) == 0  # nothing was written

    def test_import_conflict_raises(self, tmp_path, make_corpus):
        source = make_corpus(tmp_path / "src")
        archive = tmp_path / "corpus.tar.gz"
        source.export(archive)
        dest = InstanceCorpus(tmp_path / "dst")
        # Same key, different content: fake a conflicting local entry.
        key = source.list_entries()[0].key
        dest.root.mkdir(parents=True)
        text = '{"fake": true}'
        dest.entry_path(key).parent.mkdir(parents=True)
        dest.entry_path(key).write_text(text)
        dest._write_manifest({
            key: {
                "family": "cycle",
                "param_repr": "8",
                "seed": 0,
                "n": 8,
                "name": "fake",
                "content_hash": content_hash(text),
                "created_at": "2026-01-01T00:00:00+00:00",
            }
        })
        with pytest.raises(CorpusError, match="conflict"):
            dest.import_archive(archive)

    def test_import_not_an_archive_raises(self, tmp_path):
        bogus = tmp_path / "bogus.tar.gz"
        bogus.write_bytes(b"not a tarball")
        with pytest.raises(CorpusError, match="cannot read"):
            InstanceCorpus(tmp_path / "dst").import_archive(bogus)


_ADD_SCRIPT = """
import sys
from repro.corpus import InstanceCorpus
from repro.graphs.generators import cycle_instance

root, start = sys.argv[1], int(sys.argv[2])
corpus = InstanceCorpus(root)
for n in range(start, start + 20):
    corpus.add("cycle", n, 0, cycle_instance(n))
"""


@pytest.mark.slow
class TestConcurrentAdds:
    def test_two_processes_lose_no_manifest_rows(self, tmp_path):
        """Concurrent adds from separate processes must all land.

        Each worker performs 20 whole-manifest read-modify-writes; with
        overlapping key ranges the flock must serialize every one of
        them or rows vanish (the classic lost-update).
        """
        root = tmp_path / "corpus"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _ADD_SCRIPT, str(root), str(start)],
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
                stderr=subprocess.PIPE,
            )
            # Ranges overlap on 10 keys: idempotent adds must coexist
            # with fresh ones.
            for start in (3, 13)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        corpus = InstanceCorpus(root)
        assert len(corpus) == 30  # range(3, 33): union, nothing lost
        assert corpus.verify() == []
