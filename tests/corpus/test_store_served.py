"""Engines against the store: re-runs are served, not re-executed."""

import random

from repro.algorithms.leaf_coloring_algs import RWtoLeaf
from repro.corpus import ResultStore
from repro.exec.sweep import InstanceFamily, SweepCache, SweepSpec, run_sweep
from repro.graphs.generators import leaf_coloring_instance
from repro.montecarlo.engine import TrialPolicy, run_trials
from repro.problems.leaf_coloring import LeafColoring
from repro.registry import ALGORITHMS, FAMILIES, load_components


def leaf_family(params=(3, 4, 5)):
    return InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        params,
    )


def counting_spec(executed, label="walk"):
    """A sweep spec whose measure records every live execution."""
    def measure(instance, param):
        executed.append(param)
        return float(instance.graph.num_nodes)

    return SweepSpec(label, "Θ(n)", leaf_family(), measure=measure)


class TestStoreServedSweeps:
    def test_rerun_executes_zero_points_bitwise_identical(self, tmp_result_store):
        store = tmp_result_store
        executed = []
        first = run_sweep(counting_spec(executed), store=store)
        assert len(executed) == 3
        assert not first.from_store

        second = run_sweep(counting_spec(executed), store=store)
        assert len(executed) == 3  # nothing re-executed
        assert second.from_store and second.from_cache
        assert second.ns == first.ns
        assert second.costs == first.costs
        assert [p.param for p in second.points] == [
            p.param for p in first.points
        ]
        assert [p.detail for p in second.points] == [
            p.detail for p in first.points
        ]
        assert [p.elapsed for p in second.points] == [
            p.elapsed for p in first.points
        ]

    def test_partial_store_executes_only_missing_points(self, tmp_result_store):
        store = tmp_result_store
        executed = []
        spec = counting_spec(executed)
        run_sweep(spec, store=store)
        # Drop the middle point from the store; only it re-executes.
        import sqlite3

        with sqlite3.connect(store.path) as conn:
            conn.execute("DELETE FROM sweep_points WHERE point_index = 1")
        executed.clear()
        result = run_sweep(counting_spec(executed), store=store)
        assert executed == [4]
        assert not result.from_store  # partially served is not "from store"
        assert store.sweep_points(spec.cache_key())[1]["n"] == 31

    def test_describe_mismatch_neither_serves_nor_records(self, tmp_result_store):
        store = tmp_result_store
        executed = []
        spec = counting_spec(executed)
        key = spec.cache_key()
        # Poison the store: same spec key, different describe payload.
        store.record_sweep_meta(key, "walk", {"poisoned": True}, 3)
        store.record_sweep_point(
            key, 0, param_repr="3", n=1, cost=-1.0, detail=None, elapsed=0.0,
        )
        result = run_sweep(spec, store=store)
        assert len(executed) == 3  # nothing served from the poisoned rows
        assert not result.from_store
        assert result.costs[0] != -1.0
        # And nothing was recorded over the conflicting registration.
        assert store.sweep_points(key)[0]["cost"] == -1.0
        assert len(store.sweep_points(key)) == 1

    def test_cache_hit_backfills_store(self, tmp_result_store, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        store = tmp_result_store
        executed = []
        run_sweep(counting_spec(executed), cache=cache)  # store unaware
        spec = counting_spec(executed)
        result = run_sweep(spec, cache=cache, store=store)
        assert result.from_cache
        assert len(executed) == 3  # served by the cache, not re-run
        assert len(store.sweep_points(spec.cache_key())) == 3

    def test_store_survives_where_cache_is_cleared(
        self, tmp_result_store, tmp_path
    ):
        # The cache is per-directory scratch; the store is the durable
        # campaign record. Losing the former must not lose results.
        cache = SweepCache(tmp_path / "cache")
        store = tmp_result_store
        executed = []
        run_sweep(counting_spec(executed), cache=cache, store=store)
        for path in (tmp_path / "cache").iterdir():
            path.unlink()
        result = run_sweep(
            counting_spec(executed), cache=SweepCache(tmp_path / "cache"),
            store=store,
        )
        assert len(executed) == 3
        assert result.from_store

    def test_registered_algorithm_sweep_round_trips(self, tmp_result_store):
        # Same flow through a registry algorithm (bytecode-fingerprinted
        # describe) rather than a local measure closure.
        store = tmp_result_store
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf, seed=7
        )
        first = run_sweep(spec, store=store)
        second = run_sweep(spec, store=store)
        assert second.from_store
        assert second.costs == first.costs


class TestStoreServedTrials:
    def _cell(self):
        load_components()
        algo = ALGORITHMS.get("leaf-coloring/rw-to-leaf")
        family = FAMILIES.get("leaf-coloring")
        instance = family.instance(family.quick[0])
        return LeafColoring(), instance, algo

    def test_rerun_replays_from_store(self, tmp_result_store):
        store = tmp_result_store
        problem, instance, algo = self._cell()
        policy = TrialPolicy.fixed(16)
        first = run_trials(
            problem, instance, algo.make(), policy, base_seed=7, store=store,
        )
        lines = []
        second = run_trials(
            problem, instance, algo.make(), policy, base_seed=7,
            store=store, progress=lines.append,
        )
        assert second.trials == first.trials == 16
        assert second.verdicts == first.verdicts
        assert second.rate == first.rate
        assert any("replayed 16" in line for line in lines)

    def test_different_seed_is_a_different_run(self, tmp_result_store):
        store = tmp_result_store
        problem, instance, algo = self._cell()
        policy = TrialPolicy.fixed(8)
        run_trials(
            problem, instance, algo.make(), policy, base_seed=7, store=store,
        )
        run_trials(
            problem, instance, algo.make(), policy, base_seed=8, store=store,
        )
        assert store.summary()["trial_runs"] == 2
        assert store.summary()["trials"] == 16

    def test_journal_and_store_replay_merge(self, tmp_result_store):
        from repro.montecarlo.engine import trial_journal_key

        store = tmp_result_store
        problem, instance, algo = self._cell()
        policy = TrialPolicy.fixed(16)
        full = run_trials(
            problem, instance, algo.make(), policy, base_seed=7, store=store,
        )
        # Truncate the store to the first batch; a journal-less re-run
        # must replay the prefix and re-execute only the rest.
        run_key, _ = trial_journal_key(
            problem, instance, algo.make(), policy, 7, None, None
        )
        import sqlite3

        with sqlite3.connect(store.path) as conn:
            conn.execute("DELETE FROM trials WHERE trial >= 8")
        second = run_trials(
            problem, instance, algo.make(), policy, base_seed=7, store=store,
        )
        assert second.verdicts == full.verdicts
        assert len(store.trial_records(run_key)) == 16  # backfilled
