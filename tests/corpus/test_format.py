"""The versioned entry format: lossless round trips, stable hashes."""

import json
import random

import pytest

from repro.corpus.format import (
    FORMAT_VERSION,
    CorpusFormatError,
    canonical_json,
    content_hash,
    decode_value,
    encode_value,
    entry_key,
    entry_payload,
    instance_to_payload,
    payload_to_instance,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    cycle_instance,
    leaf_coloring_instance,
)
from repro.registry import FAMILIES, load_components


def _instances_equal(a, b) -> bool:
    """Structural equality: ports, labels, meta, identity fields."""
    if (a.n, a.name, a.meta) != (b.n, b.name, b.meta):
        return False
    ga, gb = a.graph, b.graph
    if sorted(ga.nodes()) != sorted(gb.nodes()) or ga.meta != gb.meta:
        return False
    for node in ga.nodes():
        if ga.num_ports(node) != gb.num_ports(node):
            return False
        for port in range(1, ga.num_ports(node) + 1):
            if ga.neighbor_at(node, port) != gb.neighbor_at(node, port):
                return False
            if ga.neighbor_at(node, port) is not None and (
                ga.endpoint_port(node, port) != gb.endpoint_port(node, port)
            ):
                return False
    nodes_a = sorted(a.labeling.nodes())
    if nodes_a != sorted(b.labeling.nodes()):
        return False
    return all(a.labeling.get(v) == b.labeling.get(v) for v in nodes_a)


class TestValueEncoding:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert encode_value(value) == value
            assert decode_value(encode_value(value)) == value

    def test_tuple_round_trips(self):
        value = (3, (2, "a"), [1, (4,)])
        encoded = encode_value(value)
        assert json.loads(json.dumps(encoded)) == encoded
        assert decode_value(encoded) == value

    def test_int_keyed_dict_round_trips(self):
        value = {1: "a", (2, 3): {"nested": 5}}
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert isinstance(list(decoded)[0], (int, tuple))

    def test_plain_dict_stays_plain(self):
        value = {"a": 1, "b": [2, 3]}
        assert encode_value(value) == value

    def test_marker_key_collision_is_escaped(self):
        # A user dict whose key IS a marker must not decode as a tuple.
        value = {"__tuple__": [1, 2]}
        assert decode_value(encode_value(value)) == value

    def test_unencodable_type_raises(self):
        with pytest.raises(CorpusFormatError):
            encode_value(object())

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_content_hash_is_byte_sensitive(self):
        assert content_hash("x") != content_hash("x ")


class TestEntryKey:
    def test_stable_across_calls(self):
        assert entry_key("f", (3, 2), 1) == entry_key("f", (3, 2), 1)

    def test_sensitive_to_each_component(self):
        base = entry_key("f", 3, 0)
        assert entry_key("g", 3, 0) != base
        assert entry_key("f", 4, 0) != base
        assert entry_key("f", 3, 1) != base

    def test_format_version_in_key(self):
        # The version string participates in the hash, so a bump can
        # never alias old entries.
        blob = canonical_json([FORMAT_VERSION, "f", "3", 0])
        import hashlib

        assert entry_key("f", 3) == hashlib.sha256(
            blob.encode()
        ).hexdigest()[:16]


class TestInstanceRoundTrip:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: cycle_instance(12),
            lambda: balanced_tree_instance(4),
            lambda: leaf_coloring_instance(4, rng=random.Random(7)),
        ],
    )
    def test_handwritten_families(self, build):
        instance = build()
        payload = instance_to_payload(instance)
        json.dumps(payload)  # must already be JSON-safe
        assert _instances_equal(instance, payload_to_instance(payload))

    def test_every_registered_family_round_trips(self):
        load_components()
        for entry in FAMILIES:
            param = entry.quick[0]
            instance = entry.factory(param)
            restored = payload_to_instance(instance_to_payload(instance))
            assert _instances_equal(instance, restored), entry.name

    def test_round_trip_is_canonical_fixed_point(self):
        # Serializing the restored instance must reproduce the exact
        # bytes — the property that makes content addressing coherent.
        instance = balanced_tree_instance(3)
        text = canonical_json(instance_to_payload(instance))
        again = canonical_json(
            instance_to_payload(payload_to_instance(json.loads(text)))
        )
        assert again == text

    def test_dangling_ports_round_trip(self):
        from repro.graphs.labelings import Instance, Labeling
        from repro.graphs.port_graph import PortGraph

        graph = PortGraph(3)
        graph.add_node(1, 3)
        graph.add_node(2, 1)
        graph.add_edge(1, 2, 2, 1)  # ports 1 and 3 of node 1 dangle
        instance = Instance(graph, Labeling({}), name="dangling")
        restored = payload_to_instance(instance_to_payload(instance))
        assert restored.graph.neighbor_at(1, 1) is None
        assert restored.graph.neighbor_at(1, 2) == 2
        assert restored.graph.neighbor_at(1, 3) is None

    def test_wrong_format_version_rejected(self):
        payload = instance_to_payload(cycle_instance(4))
        payload["format"] = "repro-corpus/999"
        with pytest.raises(CorpusFormatError):
            payload_to_instance(payload)

    def test_entry_payload_carries_provenance(self):
        instance = cycle_instance(6)
        payload = entry_payload("cycle", 6, 1, instance)
        assert payload["family"] == "cycle"
        assert payload["param"] == 6
        assert payload["param_repr"] == "6"
        assert payload["seed"] == 1
        assert payload["instance"]["n"] == 6
