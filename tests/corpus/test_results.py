"""The sqlite campaign store: idempotent appends, replay, concurrency."""

import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import ResultStore, ResultStoreError, store_from_env

SRC = str(Path(__file__).resolve().parents[2] / "src")


def trial_record(trial: int, **overrides):
    record = {
        "kind": "trial",
        "trial": trial,
        "seed": 100 + trial,
        "valid": trial % 2 == 0,
        "max_volume": 10 + trial,
        "max_distance": 3,
        "max_queries": 10 + trial,
        "random_bits": 5 * trial,
    }
    record.update(overrides)
    return record


class TestSweepRows:
    def test_points_round_trip(self, tmp_result_store):
        store = tmp_result_store
        store.record_sweep_meta("abc", "walk", {"metric": "volume"}, 2)
        store.record_sweep_point(
            "abc", 0, param_repr="3", n=15, cost=7.0,
            detail={"rate": 0.5}, elapsed=0.1,
        )
        store.record_sweep_point(
            "abc", 1, param_repr="4", n=31, cost=9.0,
            detail=None, elapsed=0.2,
        )
        assert store.sweep_describe("abc") == {"metric": "volume"}
        assert store.sweep_describe("nope") is None
        points = store.sweep_points("abc")
        assert sorted(points) == [0, 1]
        assert points[0] == {
            "n": 15, "cost": 7.0, "detail": {"rate": 0.5}, "elapsed": 0.1,
        }
        assert points[1]["detail"] is None

    def test_inserts_are_idempotent_first_writer_wins(self, tmp_result_store):
        store = tmp_result_store
        store.record_sweep_meta("abc", "walk", {"v": 1}, 1)
        store.record_sweep_meta("abc", "other", {"v": 2}, 9)
        assert store.sweep_describe("abc") == {"v": 1}
        store.record_sweep_point(
            "abc", 0, param_repr="3", n=15, cost=7.0, detail=None,
            elapsed=0.1,
        )
        store.record_sweep_point(
            "abc", 0, param_repr="3", n=15, cost=999.0, detail=None,
            elapsed=0.1,
        )
        assert store.sweep_points("abc")[0]["cost"] == 7.0


class TestTrialRows:
    def test_records_round_trip_in_journal_format(self, tmp_result_store):
        store = tmp_result_store
        store.record_trial_run("run1", {"base_seed": 7})
        records = [trial_record(t) for t in (1, 0, 2)]
        store.record_trials("run1", records)
        restored = store.trial_records("run1")
        assert [r["trial"] for r in restored] == [0, 1, 2]  # trial order
        assert restored[1] == trial_record(1)
        assert store.trial_records("other") == []

    def test_non_trial_records_filtered(self, tmp_result_store):
        store = tmp_result_store
        store.record_trials("run1", [
            {"kind": "meta", "note": "ignored"},
            trial_record(0),
        ])
        assert len(store.trial_records("run1")) == 1
        store.record_trials("run1", [{"kind": "meta"}])  # all filtered

    def test_rewrite_is_idempotent(self, tmp_result_store):
        store = tmp_result_store
        store.record_trials("run1", [trial_record(0)])
        store.record_trials(
            "run1", [trial_record(0, max_volume=999), trial_record(1)]
        )
        restored = store.trial_records("run1")
        assert len(restored) == 2
        assert restored[0]["max_volume"] == 10  # first writer won


class TestServiceResponses:
    def test_round_trip_exact_bytes(self, tmp_result_store):
        body = b'{"result":{"max_volume":7},"valid":true}\n'
        assert tmp_result_store.get_response("k1") is None
        tmp_result_store.record_response("k1", body, endpoint="/solve")
        assert tmp_result_store.get_response("k1") == body

    def test_first_writer_wins(self, tmp_result_store):
        tmp_result_store.record_response("k1", b"first\n", endpoint="/mc")
        tmp_result_store.record_response("k1", b"second\n", endpoint="/mc")
        assert tmp_result_store.get_response("k1") == b"first\n"

    def test_reopening_preserves_bodies(self, tmp_path):
        path = tmp_path / "r.sqlite"
        ResultStore(path).record_response("k", b"x\n", endpoint="/solve")
        assert ResultStore(path).get_response("k") == b"x\n"

    def test_pre_serve_store_gains_table_on_reopen(self, tmp_path):
        # Stores created before the service_responses table existed are
        # upgraded in place: the additive CREATE TABLE IF NOT EXISTS runs
        # on every open, so a reopen is enough.
        path = tmp_path / "r.sqlite"
        ResultStore(path)
        with sqlite3.connect(path) as conn:
            conn.execute("DROP TABLE service_responses")
        store = ResultStore(path)
        store.record_response("k", b"x\n", endpoint="/solve")
        assert store.get_response("k") == b"x\n"


class TestStoreFile:
    def test_summary_counts_rows(self, tmp_result_store):
        store = tmp_result_store
        assert store.summary() == {
            "sweeps": 0, "sweep_points": 0, "trial_runs": 0, "trials": 0,
            "service_responses": 0,
        }
        store.record_sweep_meta("abc", "walk", {}, 1)
        store.record_trials("run1", [trial_record(0), trial_record(1)])
        store.record_response("k1", b'{"a":1}\n', endpoint="/solve")
        assert store.summary() == {
            "sweeps": 1, "sweep_points": 0, "trial_runs": 0, "trials": 2,
            "service_responses": 1,
        }

    def test_reopening_preserves_rows(self, tmp_path):
        path = tmp_path / "r.sqlite"
        ResultStore(path).record_trials("run1", [trial_record(0)])
        assert ResultStore(path).trial_records("run1")[0]["trial"] == 0

    def test_non_sqlite_file_raises(self, tmp_path):
        path = tmp_path / "r.sqlite"
        path.write_text("this is not a database")
        with pytest.raises(ResultStoreError, match="not a usable"):
            ResultStore(path)

    def test_future_schema_version_refused(self, tmp_path):
        path = tmp_path / "r.sqlite"
        ResultStore(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE store_meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
        with pytest.raises(ResultStoreError, match="schema version"):
            ResultStore(path)

    def test_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert store_from_env() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "e.sqlite"))
        store = store_from_env()
        assert store is not None
        assert store.path == tmp_path / "e.sqlite"


_APPEND_SCRIPT = """
import sys
sys.path.insert(0, sys.argv[4])
from repro.corpus import ResultStore

path, run_key, start = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = ResultStore(path)
store.record_trial_run(run_key, {"writer": "race"})
for trial in range(start, start + 40):
    store.record_trials(run_key, [{
        "kind": "trial", "trial": trial, "seed": trial, "valid": True,
        "max_volume": trial, "max_distance": 1, "max_queries": trial,
        "random_bits": 0,
    }])
"""


@pytest.mark.slow
class TestConcurrentAppends:
    def test_two_processes_lose_no_rows(self, tmp_path):
        """Two writers interleaving single-row commits on one store.

        Overlapping trial ranges exercise both contention (WAL + busy
        timeout must retry, not fail) and idempotence (duplicate trials
        converge on one row).
        """
        path = tmp_path / "r.sqlite"
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _APPEND_SCRIPT,
                    str(path), "shared-run", str(start), SRC,
                ],
                env={"PATH": "/usr/bin:/bin"},
                stderr=subprocess.PIPE,
            )
            for start in (0, 20)  # trials 0..59, overlap on 20..39
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        store = ResultStore(path)
        records = store.trial_records("shared-run")
        assert [r["trial"] for r in records] == list(range(60))
        assert store.summary()["trial_runs"] == 1
