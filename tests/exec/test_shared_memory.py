"""Shared-memory transport: fidelity, lifecycle, and leak-freedom.

The contract (DESIGN.md §9.2): the publisher owns the segment and
unlinks it at the end of the dispatch that published it — success,
worker exception, or ``close()`` — so ``published_segments()`` is empty
and ``/dev/shm`` holds no new ``psm_*`` entries after every backend
interaction.  Attached instances must round-trip the complete oracle
surface, and results must be bitwise identical with shared memory on,
off, and serial.
"""

import os
import pickle
import random

import pytest

from repro.algorithms.balanced_tree_algs import BalancedTreeDistanceSolver
from repro.algorithms.leaf_coloring_algs import RWtoLeaf
from repro.exec import shm
from repro.exec.backends import (
    FixedInstanceFactory,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    leaf_coloring_instance,
)
from repro.model.probe import ProbeAlgorithm
from repro.model.runner import run_algorithm
from repro.problems.leaf_coloring import LeafColoring

INSTANCE = balanced_tree_instance(4, rng=random.Random(7))
LEAF_INSTANCE = leaf_coloring_instance(4, rng=random.Random(5))


def _shm_entries():
    """Current ``psm_*`` segment files (POSIX shm lives in /dev/shm)."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm host
        return set()


class ExplodingAlgorithm(ProbeAlgorithm):
    """Module-level (hence picklable) algorithm that fails in workers."""

    name = "exploding"

    def run(self, view):
        raise RuntimeError("boom")


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave the registry and /dev/shm as it found them."""
    before = _shm_entries()
    assert shm.published_segments() == []
    yield
    assert shm.published_segments() == []
    assert _shm_entries() == before


class TestRoundTrip:
    def test_attached_instance_matches_original(self):
        handle = shm.publish_instance(INSTANCE)
        try:
            attachment = shm.attach_instance(handle)
            try:
                clone = attachment.instance
                frozen = INSTANCE.graph.freeze()
                assert clone.n == INSTANCE.n
                assert clone.name == INSTANCE.name
                assert dict(clone.meta) == dict(INSTANCE.meta)
                assert list(clone.graph.nodes()) == list(frozen.nodes())
                for node in frozen.nodes():
                    assert clone.graph.degree(node) == frozen.degree(node)
                    assert clone.label(node) == INSTANCE.label(node)
                    ports = range(1, frozen.num_ports(node) + 1)
                    for port in ports:
                        assert clone.graph.neighbor_at(
                            node, port
                        ) == frozen.neighbor_at(node, port)
            finally:
                attachment.close()
        finally:
            shm.unpublish(handle)

    def test_handle_pickles_in_constant_size(self):
        small = shm.publish_instance(balanced_tree_instance(2))
        large = shm.publish_instance(balanced_tree_instance(6))
        try:
            small_len = len(pickle.dumps(small))
            large_len = len(pickle.dumps(large))
            # The handle is name + six integers — never the instance.
            assert small_len < 512
            assert abs(large_len - small_len) < 64
        finally:
            shm.unpublish(small)
            shm.unpublish(large)

    def test_unpublish_is_idempotent(self):
        handle = shm.publish_instance(INSTANCE)
        shm.unpublish(handle)
        shm.unpublish(handle)


class TestBackendLifecycle:
    def test_run_unlinks_after_normal_completion(self):
        with ProcessPoolBackend(workers=2, chunk_size=4) as pool:
            run_algorithm(INSTANCE, BalancedTreeDistanceSolver(),
                          backend=pool)
            assert shm.published_segments() == []

    def test_run_unlinks_after_worker_exception(self):
        with ProcessPoolBackend(workers=2, chunk_size=4) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                run_algorithm(INSTANCE, ExplodingAlgorithm(), backend=pool)
            assert shm.published_segments() == []

    def test_trial_batch_unlinks_after_completion(self):
        factory = FixedInstanceFactory(LEAF_INSTANCE)
        with ProcessPoolBackend(workers=2, chunk_size=2) as pool:
            pool.run_trial_batch(
                LeafColoring(), factory, RWtoLeaf(), range(6), base_seed=1
            )
            assert shm.published_segments() == []

    def test_close_drains_live_handles(self):
        pool = ProcessPoolBackend(workers=2)
        handle = pool._publish(INSTANCE)
        assert handle is not None
        assert shm.published_segments() == [handle.name]
        pool.close()
        assert shm.published_segments() == []


class TestEquivalence:
    def test_shm_and_pickle_transport_are_bitwise_identical(self):
        serial = run_algorithm(
            INSTANCE, BalancedTreeDistanceSolver(), backend=SerialBackend()
        )
        for shared in (True, False):
            with ProcessPoolBackend(
                workers=2, chunk_size=4, shared_memory=shared
            ) as pool:
                pooled = run_algorithm(
                    INSTANCE, BalancedTreeDistanceSolver(), backend=pool
                )
            assert pooled.outputs == serial.outputs
            assert pooled.profiles == serial.profiles

    def test_randomized_trials_identical_across_transports(self):
        factory = FixedInstanceFactory(LEAF_INSTANCE)
        baseline = SerialBackend().run_trial_batch(
            LeafColoring(), factory, RWtoLeaf(), range(8), base_seed=3
        )
        for shared in (True, False):
            with ProcessPoolBackend(
                workers=2, chunk_size=2, shared_memory=shared
            ) as pool:
                outcomes = pool.run_trial_batch(
                    LeafColoring(), factory, RWtoLeaf(), range(8),
                    base_seed=3,
                )
            assert outcomes == baseline

    def test_non_fixed_factory_uses_pickle_path(self):
        """Per-trial instance draws cannot share one segment: still OK."""
        def factory(trial):
            return LEAF_INSTANCE

        # A local function does not pickle, so this also exercises the
        # fall-back-to-serial safety net with shared memory enabled.
        with ProcessPoolBackend(workers=2, chunk_size=2) as pool:
            outcomes = pool.run_trial_batch(
                LeafColoring(), factory, RWtoLeaf(), range(4), base_seed=3
            )
        baseline = SerialBackend().run_trial_batch(
            LeafColoring(), factory, RWtoLeaf(), range(4), base_seed=3
        )
        assert outcomes == baseline


class TestSpecParsing:
    def test_transport_suffixes(self):
        shm_backend = get_backend("process:2:shm")
        pickle_backend = get_backend("process:2:pickle")
        try:
            assert shm_backend.workers == 2
            assert shm_backend.shared_memory is True
            assert pickle_backend.workers == 2
            assert pickle_backend.shared_memory is False
        finally:
            shm_backend.close()
            pickle_backend.close()

    def test_default_transport_is_shared_memory(self):
        backend = get_backend("process:3")
        try:
            assert backend.shared_memory is True
        finally:
            backend.close()

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            get_backend("process:2:carrier-pigeon")


class TestChunking:
    def test_tiny_trailing_chunk_is_merged(self):
        pool = ProcessPoolBackend(workers=2, chunk_size=10)
        try:
            chunks = pool._chunk(list(range(21)))
            assert [len(c) for c in chunks] == [10, 11]
            assert [x for c in chunks for x in c] == list(range(21))
        finally:
            pool.close()

    def test_balanced_trailing_chunk_is_kept(self):
        pool = ProcessPoolBackend(workers=2, chunk_size=10)
        try:
            chunks = pool._chunk(list(range(25)))
            assert [len(c) for c in chunks] == [10, 10, 5]
        finally:
            pool.close()

    def test_single_chunk_never_merges(self):
        pool = ProcessPoolBackend(workers=2, chunk_size=10)
        try:
            assert pool._chunk(list(range(3))) == [[0, 1, 2]]
            assert pool._chunk([]) == []
        finally:
            pool.close()
