"""Sweep orchestrator: declarative specs, caching, reporting."""

import random

import pytest

from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepSpec,
    cache_from_env,
    run_sweep,
    run_sweeps,
)
from repro.graphs.generators import leaf_coloring_instance


def leaf_family(params=(3, 4, 5)):
    return InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        params,
    )


class TestInstanceFamily:
    def test_memoizes_builds(self):
        builds = []

        def factory(d):
            builds.append(d)
            return leaf_coloring_instance(d)

        family = InstanceFamily("leaf", factory, [3, 4])
        a = family.instance(3)
        b = family.instance(3)
        assert a is b
        family.instances()
        assert builds == [3, 4]
        family.clear()
        family.instance(3)
        assert builds == [3, 4, 3]

    def test_list_params_hashable(self):
        family = InstanceFamily(
            "leaf", lambda p: leaf_coloring_instance(p[0]), [[3, 0], [4, 1]]
        )
        assert family.instance([3, 0]) is family.instance([3, 0])


class TestSweepSpec:
    def test_requires_algorithm_or_measure(self):
        with pytest.raises(ValueError):
            SweepSpec("x", "Θ(n)", leaf_family())

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            SweepSpec("x", "Θ(n)", leaf_family(), "rounds", RWtoLeaf)

    def test_cache_key_stable_and_sensitive(self):
        family = leaf_family()
        a = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=1)
        b = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=1)
        c = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()


class TestRunSweep:
    def test_measures_all_points(self):
        spec = SweepSpec(
            "walk volume", "Θ(log n)", leaf_family(), "volume", RWtoLeaf,
            seed=7, candidates=["log n", "n"],
        )
        result = run_sweep(spec)
        assert len(result.points) == 3
        assert result.ns == [15, 31, 63]
        assert all(c >= 1 for c in result.costs)
        assert result.fitted().best == "log n"
        assert "claimed" in result.format_row()

    def test_nodes_selector(self):
        spec = SweepSpec(
            "root gather", "Θ(n)", leaf_family(), "volume",
            LeafColoringFullGather,
            nodes=lambda inst, d: [inst.meta["root"]],
        )
        result = run_sweep(spec)
        assert result.costs == [15.0, 31.0, 63.0]

    def test_custom_measure(self):
        spec = SweepSpec(
            "graph size", "Θ(n)", leaf_family(),
            measure=lambda inst, d: inst.graph.num_nodes,
        )
        result = run_sweep(spec)
        assert result.costs == result.ns

    def test_backend_equivalence(self):
        spec = SweepSpec(
            "walk volume", "Θ(log n)", leaf_family(), "volume", RWtoLeaf,
            seed=3,
        )
        serial = run_sweep(spec, SerialBackend())
        with ProcessPoolBackend(workers=2, chunk_size=8) as pool:
            parallel = run_sweep(spec, pool)
        assert serial.costs == parallel.costs

    def test_progress_reporting(self):
        lines = []
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family((3, 4)), "volume", RWtoLeaf
        )
        run_sweep(spec, progress=lines.append)
        assert len(lines) == 2
        assert "[walk] 1/2" in lines[0]

    def test_run_sweeps_batch(self):
        family = leaf_family()
        results = run_sweeps([
            SweepSpec("dist", "Θ(log n)", family, "distance",
                      LeafColoringDistanceSolver),
            SweepSpec("vol", "Θ(log n)", family, "volume", RWtoLeaf),
        ])
        assert [r.spec.label for r in results] == ["dist", "vol"]


class TestSweepCache:
    def test_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf, seed=7
        )
        measured = run_sweep(spec, cache=cache)
        assert not measured.from_cache
        hits = []
        cached = run_sweep(spec, cache=cache, progress=hits.append)
        assert cached.from_cache
        assert cached.ns == measured.ns
        assert cached.costs == measured.costs
        assert [p.param for p in cached.points] == [3, 4, 5]
        assert any("cached" in line for line in hits)

    def test_spec_change_invalidates(self, tmp_path):
        cache = SweepCache(tmp_path)
        family = leaf_family()
        run_sweep(
            SweepSpec("walk", "Θ(log n)", family, "volume", RWtoLeaf, seed=7),
            cache=cache,
        )
        other = run_sweep(
            SweepSpec("walk", "Θ(log n)", family, "volume", RWtoLeaf, seed=8),
            cache=cache,
        )
        assert not other.from_cache

    def test_measure_body_edit_invalidates(self, tmp_path):
        cache = SweepCache(tmp_path)
        family = leaf_family()
        first = run_sweep(
            SweepSpec("m", "Θ(n)", family,
                      measure=lambda inst, d: inst.graph.num_nodes),
            cache=cache,
        )
        # Same label/family/qualname, different body: must re-measure.
        second = run_sweep(
            SweepSpec("m", "Θ(n)", family,
                      measure=lambda inst, d: 2 * inst.graph.num_nodes),
            cache=cache,
        )
        assert not second.from_cache
        assert second.costs == [2 * c for c in first.costs]

    def test_corrupt_file_remeasures(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf
        )
        run_sweep(spec, cache=cache)
        cache._path(spec).write_text("{not json")
        result = run_sweep(spec, cache=cache)
        assert not result.from_cache

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        cache = cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path
