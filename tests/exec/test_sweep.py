"""Sweep orchestrator: declarative specs, caching, reporting."""

import random

import pytest

from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepSpec,
    cache_from_env,
    run_sweep,
    run_sweeps,
)
from repro.graphs.generators import leaf_coloring_instance


def leaf_family(params=(3, 4, 5)):
    return InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        params,
    )


class TestInstanceFamily:
    def test_memoizes_builds(self):
        builds = []

        def factory(d):
            builds.append(d)
            return leaf_coloring_instance(d)

        family = InstanceFamily("leaf", factory, [3, 4])
        a = family.instance(3)
        b = family.instance(3)
        assert a is b
        family.instances()
        assert builds == [3, 4]
        family.clear()
        family.instance(3)
        assert builds == [3, 4, 3]

    def test_list_params_hashable(self):
        family = InstanceFamily(
            "leaf", lambda p: leaf_coloring_instance(p[0]), [[3, 0], [4, 1]]
        )
        assert family.instance([3, 0]) is family.instance([3, 0])


class TestSweepSpec:
    def test_requires_algorithm_or_measure(self):
        with pytest.raises(ValueError):
            SweepSpec("x", "Θ(n)", leaf_family())

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            SweepSpec("x", "Θ(n)", leaf_family(), "rounds", RWtoLeaf)

    def test_cache_key_stable_and_sensitive(self):
        family = leaf_family()
        a = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=1)
        b = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=1)
        c = SweepSpec("x", "Θ(n)", family, "volume", RWtoLeaf, seed=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()


class TestRunSweep:
    def test_measures_all_points(self):
        spec = SweepSpec(
            "walk volume", "Θ(log n)", leaf_family(), "volume", RWtoLeaf,
            seed=7, candidates=["log n", "n"],
        )
        result = run_sweep(spec)
        assert len(result.points) == 3
        assert result.ns == [15, 31, 63]
        assert all(c >= 1 for c in result.costs)
        assert result.fitted().best == "log n"
        assert "claimed" in result.format_row()

    def test_nodes_selector(self):
        spec = SweepSpec(
            "root gather", "Θ(n)", leaf_family(), "volume",
            LeafColoringFullGather,
            nodes=lambda inst, d: [inst.meta["root"]],
        )
        result = run_sweep(spec)
        assert result.costs == [15.0, 31.0, 63.0]

    def test_custom_measure(self):
        spec = SweepSpec(
            "graph size", "Θ(n)", leaf_family(),
            measure=lambda inst, d: inst.graph.num_nodes,
        )
        result = run_sweep(spec)
        assert result.costs == result.ns

    def test_backend_equivalence(self):
        spec = SweepSpec(
            "walk volume", "Θ(log n)", leaf_family(), "volume", RWtoLeaf,
            seed=3,
        )
        serial = run_sweep(spec, SerialBackend())
        with ProcessPoolBackend(workers=2, chunk_size=8) as pool:
            parallel = run_sweep(spec, pool)
        assert serial.costs == parallel.costs

    def test_progress_reporting(self):
        lines = []
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family((3, 4)), "volume", RWtoLeaf
        )
        run_sweep(spec, progress=lines.append)
        assert len(lines) == 2
        assert "[walk] 1/2" in lines[0]

    def test_run_sweeps_batch(self):
        family = leaf_family()
        results = run_sweeps([
            SweepSpec("dist", "Θ(log n)", family, "distance",
                      LeafColoringDistanceSolver),
            SweepSpec("vol", "Θ(log n)", family, "volume", RWtoLeaf),
        ])
        assert [r.spec.label for r in results] == ["dist", "vol"]


class TestCacheHitReporting:
    """Regression: cached sweeps must not be counted as executed.

    The run_sweeps summary line used to report every sweep as executed;
    on a warm cache that overstated the work done.  Cache hits are now
    reported separately.
    """

    def _spec(self):
        return SweepSpec(
            "walk", "Θ(log n)", leaf_family((3, 4)), "volume", RWtoLeaf,
            seed=7,
        )

    def test_warm_cache_reports_zero_executed(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweeps([self._spec()], cache=cache)  # warm the cache
        lines = []
        results = run_sweeps([self._spec()], cache=cache,
                             progress=lines.append)
        assert all(r.from_cache for r in results)
        assert "sweeps: 0 executed, 1 cache hit" in lines[-1]

    def test_cold_cache_reports_all_executed(self, tmp_path):
        lines = []
        run_sweeps([self._spec()], cache=SweepCache(tmp_path),
                   progress=lines.append)
        assert "sweeps: 1 executed, 0 cache hits" in lines[-1]

    def test_mixed_batch_splits_the_counts(self, tmp_path):
        cache = SweepCache(tmp_path)
        cached_spec = self._spec()
        run_sweeps([cached_spec], cache=cache)
        fresh_spec = SweepSpec(
            "walk-fresh", "Θ(log n)", leaf_family((3, 4)), "volume",
            RWtoLeaf, seed=8,
        )
        lines = []
        results = run_sweeps([cached_spec, fresh_spec], cache=cache,
                             progress=lines.append)
        assert [r.from_cache for r in results] == [True, False]
        assert "sweeps: 1 executed, 1 cache hit" in lines[-1]


class TestSuccessRateMetric:
    """SweepSpec trial-policy fields: the Monte-Carlo sweep metric."""

    def _spec(self, policy=None, **kwargs):
        from repro.montecarlo.engine import TrialPolicy
        from repro.problems.leaf_coloring import LeafColoring

        return SweepSpec(
            "walk success", "Θ(1)", leaf_family((3, 4)), "success_rate",
            RWtoLeaf, seed=7,
            problem_factory=LeafColoring,
            trial_policy=policy or TrialPolicy(
                min_trials=4, max_trials=16, batch_size=4, tolerance=0.15
            ),
            **kwargs,
        )

    def test_measures_rates_with_detail(self):
        result = run_sweep(self._spec())
        assert all(0.0 <= c <= 1.0 for c in result.costs)
        for point in result.points:
            assert point.detail is not None
            assert point.detail["trials"] >= 4
            assert point.detail["ci_low"] <= point.cost
            assert point.cost <= point.detail["ci_high"]
            assert point.detail["stopped"] in ("converged", "budget")

    def test_rate_matches_direct_engine_call(self):
        from repro.montecarlo.engine import TrialPolicy, run_trials
        from repro.problems.leaf_coloring import LeafColoring

        policy = TrialPolicy.fixed(8)
        result = run_sweep(self._spec(policy=policy))
        family = leaf_family((3, 4))
        for point, param in zip(result.points, (3, 4)):
            direct = run_trials(
                LeafColoring(), family.instance(param), RWtoLeaf(), policy,
                base_seed=7,
            )
            assert point.cost == direct.rate
            assert point.detail["trials"] == direct.trials

    def test_detail_round_trips_through_cache(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = self._spec()
        measured = run_sweep(spec, cache=cache)
        cached = run_sweep(spec, cache=cache)
        assert cached.from_cache
        assert [p.detail for p in cached.points] == [
            p.detail for p in measured.points
        ]

    def test_policy_change_invalidates_cache(self, tmp_path):
        from repro.montecarlo.engine import TrialPolicy

        cache = SweepCache(tmp_path)
        run_sweep(self._spec(), cache=cache)
        other = run_sweep(
            self._spec(policy=TrialPolicy(
                min_trials=4, max_trials=16, batch_size=4, tolerance=0.05
            )),
            cache=cache,
        )
        assert not other.from_cache

    def test_success_rate_requires_policy_and_problem(self):
        from repro.montecarlo.engine import TrialPolicy
        from repro.problems.leaf_coloring import LeafColoring

        with pytest.raises(ValueError, match="needs a problem_factory"):
            SweepSpec(
                "x", "Θ(1)", leaf_family(), "success_rate", RWtoLeaf,
            )
        with pytest.raises(ValueError, match="only applies"):
            SweepSpec(
                "x", "Θ(1)", leaf_family(), "volume", RWtoLeaf,
                problem_factory=LeafColoring,
                trial_policy=TrialPolicy(),
            )
        # A custom measure bypasses the engine entirely, so pairing it
        # with a trial_policy is a contradiction whatever the metric.
        with pytest.raises(ValueError, match="custom measure"):
            SweepSpec(
                "x", "Θ(1)", leaf_family(), "success_rate",
                measure=lambda inst, d: 1.0,
                trial_policy=TrialPolicy(),
            )
        # Validity is over every node's output, so a start-node
        # selector would be silently ignored — reject it up front.
        with pytest.raises(ValueError, match="nodes selector"):
            SweepSpec(
                "x", "Θ(1)", leaf_family(), "success_rate", RWtoLeaf,
                nodes=lambda inst, d: [1],
                problem_factory=LeafColoring,
                trial_policy=TrialPolicy(),
            )


class TestSweepCache:
    def test_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf, seed=7
        )
        measured = run_sweep(spec, cache=cache)
        assert not measured.from_cache
        hits = []
        cached = run_sweep(spec, cache=cache, progress=hits.append)
        assert cached.from_cache
        assert cached.ns == measured.ns
        assert cached.costs == measured.costs
        assert [p.param for p in cached.points] == [3, 4, 5]
        assert any("cached" in line for line in hits)

    def test_spec_change_invalidates(self, tmp_path):
        cache = SweepCache(tmp_path)
        family = leaf_family()
        run_sweep(
            SweepSpec("walk", "Θ(log n)", family, "volume", RWtoLeaf, seed=7),
            cache=cache,
        )
        other = run_sweep(
            SweepSpec("walk", "Θ(log n)", family, "volume", RWtoLeaf, seed=8),
            cache=cache,
        )
        assert not other.from_cache

    def test_measure_body_edit_invalidates(self, tmp_path):
        cache = SweepCache(tmp_path)
        family = leaf_family()
        first = run_sweep(
            SweepSpec("m", "Θ(n)", family,
                      measure=lambda inst, d: inst.graph.num_nodes),
            cache=cache,
        )
        # Same label/family/qualname, different body: must re-measure.
        second = run_sweep(
            SweepSpec("m", "Θ(n)", family,
                      measure=lambda inst, d: 2 * inst.graph.num_nodes),
            cache=cache,
        )
        assert not second.from_cache
        assert second.costs == [2 * c for c in first.costs]

    def test_corrupt_file_remeasures(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf
        )
        run_sweep(spec, cache=cache)
        cache._path(spec).write_text("{not json")
        result = run_sweep(spec, cache=cache)
        assert not result.from_cache

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        cache = cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path


class TestCacheDurability:
    """PR 9 satellite: SweepCache.store follows the Journal discipline."""

    def test_failed_rewrite_leaves_old_file_intact(self, tmp_path,
                                                   monkeypatch):
        import os as os_mod

        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf, seed=7
        )
        result = run_sweep(spec, cache=cache)
        good = cache._path(spec).read_text()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os_mod, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            cache.store(result)
        monkeypatch.undo()
        # The committed file is untouched and no temp file survived.
        assert cache._path(spec).read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == [
            cache._path(spec).name
        ]
        assert run_sweep(spec, cache=cache).from_cache

    def test_store_write_is_not_torn_by_interrupt(self, tmp_path,
                                                  monkeypatch):
        # Die between temp-file write and rename: the cache entry simply
        # does not exist yet, rather than existing half-written.
        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "walk", "Θ(log n)", leaf_family(), "volume", RWtoLeaf, seed=7
        )
        result = run_sweep(spec)
        import os as os_mod

        monkeypatch.setattr(
            os_mod, "replace",
            lambda src, dst: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        with pytest.raises(KeyboardInterrupt):
            cache.store(result)
        monkeypatch.undo()
        assert not cache._path(spec).exists()
        assert list(tmp_path.iterdir()) == []


class TestJsonifyKeys:
    """PR 9 satellite: non-string detail keys normalize consistently."""

    def test_int_keyed_detail_round_trips_through_cache(self, tmp_path):
        # A detail dict keyed by ints (e.g. per-node histograms) must
        # come back from the cache identical to the freshly-measured
        # result instead of mismatching forever on the str-keyed copy.
        from repro.exec.sweep import SweepPoint, SweepResult, _jsonify

        detail = {3: "a", 10: "b", True: "t"}
        assert _jsonify(detail) == {"3": "a", "10": "b", "true": "t"}
        # json round trip equals direct normalization: both sides of
        # the cache's describe comparison see the same document.
        import json as json_mod

        assert json_mod.loads(json_mod.dumps(detail)) == _jsonify(detail)

        cache = SweepCache(tmp_path)
        spec = SweepSpec(
            "int-keys", "Θ(n)", leaf_family((3,)),
            measure=lambda inst, d: float(inst.graph.num_nodes),
        )
        result = SweepResult(spec=spec)
        result.points.append(SweepPoint(
            param=3, n=15, cost=15.0, elapsed=0.0, detail=_jsonify(detail),
        ))
        cache.store(result)
        restored = cache.load(spec)
        assert restored is not None
        assert restored.points[0].detail == _jsonify(detail)

    def test_key_collision_raises_instead_of_silent_overwrite(self):
        from repro.exec.sweep import _jsonify

        with pytest.raises(ValueError, match="collide"):
            _jsonify({1: "int", "1": "str"})
        with pytest.raises(ValueError, match="collide"):
            _jsonify({True: "bool", "true": "str"})

    def test_uncoercible_key_raises(self):
        from repro.exec.sweep import _jsonify

        with pytest.raises(TypeError):
            _jsonify({(1, 2): "tuple-key"})

    def test_describe_with_int_keys_hits_cache(self, tmp_path):
        cache = SweepCache(tmp_path)
        family = leaf_family()

        def measure(instance, param):
            return float(instance.graph.num_nodes)

        def spec_with_candidates():
            return SweepSpec(
                "c", "Θ(n)", family, measure=measure,
                candidates=["n", "log n"],
            )

        run_sweep(spec_with_candidates(), cache=cache)
        assert run_sweep(spec_with_candidates(), cache=cache).from_cache
