"""Backend equivalence: every backend must match the serial reference.

The load-bearing property (module docstring of ``repro.exec.backends``):
random tapes are seeded per ``(seed, node_id)``, so executions are
order- and process-independent and parallel dispatch must be *bitwise*
identical to serial — same outputs, same profiles, same probabilities.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.balanced_tree_algs import BalancedTreeDistanceSolver
from repro.algorithms.leaf_coloring_algs import RWtoLeaf, SecretRWtoLeaf
from repro.exec.backends import (
    BatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    leaf_coloring_instance,
)
from repro.model.probe import ProbeAlgorithm
from repro.model.runner import run_algorithm, success_probability
from repro.problems.leaf_coloring import LeafColoring


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(workers=2, chunk_size=16)
    yield backend
    backend.close()


def assert_bitwise_equal(a, b):
    assert a.outputs == b.outputs
    assert a.profiles == b.profiles
    assert a.algorithm == b.algorithm
    assert a.instance == b.instance


class TestRunEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_randomized_walk_serial_vs_process(self, pool, seed):
        """Property: same seed → identical RunResults on both backends."""
        instance = leaf_coloring_instance(5, rng=random.Random(3))
        serial = run_algorithm(
            instance, RWtoLeaf(), seed=seed, backend=SerialBackend()
        )
        parallel = run_algorithm(
            instance, RWtoLeaf(), seed=seed, backend=pool
        )
        assert_bitwise_equal(serial, parallel)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_secret_randomness_serial_vs_process(self, pool, seed):
        instance = leaf_coloring_instance(4, rng=random.Random(9))
        serial = run_algorithm(instance, SecretRWtoLeaf(), seed=seed)
        parallel = run_algorithm(
            instance, SecretRWtoLeaf(), seed=seed, backend=pool
        )
        assert_bitwise_equal(serial, parallel)

    def test_deterministic_solver_all_backends(self, pool):
        instance = balanced_tree_instance(4, rng=random.Random(1))
        reference = run_algorithm(instance, BalancedTreeDistanceSolver())
        for backend in (BatchBackend(), pool):
            other = run_algorithm(
                instance, BalancedTreeDistanceSolver(), backend=backend
            )
            assert_bitwise_equal(reference, other)

    def test_node_subset_preserves_order_and_content(self, pool):
        instance = leaf_coloring_instance(5, rng=random.Random(2))
        nodes = sorted(instance.graph.nodes())[::3]
        serial = run_algorithm(instance, RWtoLeaf(), seed=11, nodes=nodes)
        parallel = run_algorithm(
            instance, RWtoLeaf(), seed=11, nodes=nodes, backend=pool
        )
        assert list(serial.outputs) == nodes
        assert list(parallel.outputs) == nodes
        assert_bitwise_equal(serial, parallel)

    def test_truncation_profiles_identical(self, pool):
        instance = leaf_coloring_instance(5, rng=random.Random(4))
        serial = run_algorithm(instance, RWtoLeaf(), seed=5, max_volume=6)
        parallel = run_algorithm(
            instance, RWtoLeaf(), seed=5, max_volume=6, backend=pool
        )
        assert_bitwise_equal(serial, parallel)
        assert serial.truncated_nodes == parallel.truncated_nodes


def _fresh_instance(trial):
    return leaf_coloring_instance(4, rng=random.Random(trial))


class TestSuccessProbabilityEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(base_seed=st.integers(min_value=0, max_value=2**20))
    def test_all_backends_agree(self, pool, base_seed):
        problem = LeafColoring()
        values = {
            backend.name: success_probability(
                problem,
                _fresh_instance,
                RWtoLeaf(),
                trials=6,
                base_seed=base_seed,
                backend=backend,
            )
            for backend in (SerialBackend(), BatchBackend(), pool)
        }
        assert len(set(values.values())) == 1, values

    def test_unpicklable_factory_falls_back_to_serial(self):
        problem = LeafColoring()
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        try:
            p = success_probability(
                problem,
                lambda t: leaf_coloring_instance(4, rng=random.Random(t)),
                RWtoLeaf(),
                trials=4,
                backend=backend,
            )
        finally:
            backend.close()
        serial = success_probability(
            problem, _fresh_instance, RWtoLeaf(), trials=4
        )
        assert p == serial

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            success_probability(
                LeafColoring(), _fresh_instance, RWtoLeaf(), trials=0
            )


class TestBatchBackend:
    def test_oracle_reused_for_same_instance(self):
        backend = BatchBackend()
        instance = leaf_coloring_instance(3)
        o1 = backend._oracle_for(instance)
        o2 = backend._oracle_for(instance)
        assert o1 is o2

    def test_cache_eviction_bounded(self):
        backend = BatchBackend(max_cached=2)
        instances = [leaf_coloring_instance(3) for _ in range(5)]
        for instance in instances:
            backend._oracle_for(instance)
        assert len(backend._oracles) == 2


class TestGetBackend:
    def test_resolution(self):
        assert isinstance(get_backend(None), SerialBackend)
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("batch"), BatchBackend)
        pool = get_backend("process:3")
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.workers == 3
        passthrough = SerialBackend()
        assert get_backend(passthrough) is passthrough

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_backend("gpu")
        with pytest.raises(ValueError):
            get_backend(42)

    def test_custom_backend_is_pluggable(self):
        calls = []

        class CountingBackend(SerialBackend):
            name = "counting"

            def run(self, instance, algorithm, nodes=None, **kw):
                calls.append(algorithm.name)
                return super().run(instance, algorithm, nodes, **kw)

        instance = leaf_coloring_instance(3)

        class Const(ProbeAlgorithm):
            name = "const"

            def run(self, view):
                return "ok"

        result = run_algorithm(instance, Const(), backend=CountingBackend())
        assert calls == ["const"]
        assert set(result.outputs.values()) == {"ok"}

    def test_abc_not_instantiable(self):
        with pytest.raises(TypeError):
            ExecutionBackend()


class TestEmptyRunResult:
    def test_empty_nodes_run_is_zero_cost(self):
        instance = leaf_coloring_instance(3)
        result = run_algorithm(instance, RWtoLeaf(), nodes=[])
        assert result.outputs == {}
        assert result.max_volume == 0
        assert result.max_distance == 0
        assert result.max_queries == 0
        assert result.mean_volume == 0.0
        assert result.total_random_bits == 0
        assert result.truncated_nodes == []
