"""The CSR gather kernel must replicate the scalar gather bit-for-bit.

DESIGN.md §9.3's contract: :meth:`CsrGatherKernel.ball` returns the same
:class:`~repro.model.views.Ball` — content *and* every dict insertion
order — and the same :class:`~repro.model.probe.CostProfile` as running
``gather_ball`` through the scalar probe engine, for every start node
and radius.  ``summarize`` agrees with ``ball`` on the flat summary.
"""

import random

import pytest

from repro.algorithms.generic import FullGatherAlgorithm
from repro.graphs.generators import (
    balanced_tree_instance,
    leaf_coloring_instance,
)
from repro.model.batched import CsrGatherKernel, gather_kernel
from repro.model.oracle import StaticOracle, compile_oracle
from repro.model.probe import ProbeAlgorithm, execute_at
from repro.model.views import gather_ball
from repro.registry import iter_compatible, load_components

load_components()
CELLS = list(iter_compatible())


class _BallCapture(ProbeAlgorithm):
    """Scalar reference: run ``gather_ball`` and return the Ball itself."""

    name = "ball-capture"

    def __init__(self, radius: int) -> None:
        self.radius = radius

    def run(self, view):
        return gather_ball(view, self.radius)


def _instances():
    """A diverse sample: generator families plus registry quick points."""
    out = [
        balanced_tree_instance(3, rng=random.Random(1)),
        leaf_coloring_instance(4, rng=random.Random(2)),
    ]
    for cell in CELLS[:: max(1, len(CELLS) // 5)]:
        out.append(cell.family.instance(cell.family.quick[0]))
    return out


def _assert_balls_identical(scalar, batched):
    assert batched.center == scalar.center
    assert batched.radius == scalar.radius
    # Content equality *and* insertion-order equality, at every level.
    assert batched.distance == scalar.distance
    assert list(batched.distance) == list(scalar.distance)
    assert batched.info == scalar.info
    assert list(batched.info) == list(scalar.info)
    assert batched.adjacency == scalar.adjacency
    assert list(batched.adjacency) == list(scalar.adjacency)
    for node, row in scalar.adjacency.items():
        assert list(batched.adjacency[node]) == list(row)


class TestBallReplication:
    @pytest.mark.parametrize("radius", [0, 1, 2, 10**6])
    def test_ball_matches_scalar_gather(self, radius):
        for instance in _instances():
            oracle = compile_oracle(instance)
            kernel = oracle.gather_kernel()
            for node in instance.graph.nodes():
                scalar_ball, scalar_profile = execute_at(
                    oracle, _BallCapture(radius), node
                )
                ball, profile = kernel.ball(node, radius)
                _assert_balls_identical(scalar_ball, ball)
                assert profile == scalar_profile

    def test_summarize_agrees_with_ball(self):
        for instance in _instances():
            kernel = compile_oracle(instance).gather_kernel()
            radius = max(1, instance.n)
            for node in instance.graph.nodes():
                ball, profile = kernel.ball(node, radius)
                size, depth, queries = kernel.summarize(node, radius)
                assert size == len(ball.distance) == profile.volume
                assert depth == profile.distance
                assert queries == profile.queries


class TestDispatch:
    def test_compiled_oracle_memoizes_kernel(self):
        oracle = compile_oracle(balanced_tree_instance(2))
        kernel = gather_kernel(oracle)
        assert isinstance(kernel, CsrGatherKernel)
        assert gather_kernel(oracle) is kernel

    def test_reference_oracle_has_no_kernel(self):
        oracle = StaticOracle(balanced_tree_instance(2))
        assert gather_kernel(oracle) is None

    def test_full_gather_batch_falls_back_without_kernel(self):
        instance = balanced_tree_instance(2)
        algorithm = FullGatherAlgorithm(lambda local: {}, name="noop")
        assert algorithm.run_node_batch(StaticOracle(instance), []) is None

    def test_full_gather_batch_matches_scalar_runs(self):
        cells = [
            c
            for c in CELLS
            if isinstance(c.algorithm.make(), FullGatherAlgorithm)
        ]
        assert cells, "registry lost its full-gather algorithms"
        cell = cells[0]
        instance = cell.family.instance(cell.family.quick[0])
        oracle = compile_oracle(instance)
        algorithm = cell.algorithm.make()
        nodes = list(instance.graph.nodes())
        batched = algorithm.run_node_batch(oracle, nodes)
        assert batched is not None
        assert [node for node, _, _ in batched] == nodes
        for node, output, profile in batched:
            scalar_output, scalar_profile = execute_at(
                oracle, algorithm, node
            )
            assert output == scalar_output
            assert profile == scalar_profile
