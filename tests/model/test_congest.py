"""Tests for the CONGEST simulator's accounting and guardrails."""

import pytest

from repro.graphs.generators import cycle_instance
from repro.model.congest import (
    CongestAlgorithm,
    CongestError,
    Message,
    run_congest,
)
from repro.model.oracle import NodeInfo


class EchoOnce(CongestAlgorithm):
    """Round 1: everyone sends its ID; round 2: output the received IDs."""

    def init_state(self, info: NodeInfo, n: int) -> dict:
        return {"info": info, "seen": {}}

    def step(self, state, round_index, inbox):
        if round_index == 1:
            msg = Message(payload=state["info"].node_id, bits=16)
            return {p: msg for p in state["info"].ports}, None
        for port, msg in inbox.items():
            state["seen"][port] = msg.payload
        return {}, tuple(sorted(state["seen"].values()))


class Oversender(CongestAlgorithm):
    def init_state(self, info, n):
        return {"info": info}

    def step(self, state, round_index, inbox):
        return {state["info"].ports[0]: Message(payload=0, bits=10**6)}, None


class TestCongest:
    def test_message_requires_positive_bits(self):
        with pytest.raises(CongestError):
            Message(payload="x", bits=0)

    def test_echo_round_trip(self):
        inst = cycle_instance(6, shuffle_ids=False)
        result = run_congest(inst, EchoOnce(), bandwidth=16, max_rounds=5)
        assert result.all_terminated
        assert result.rounds == 2
        for node, output in result.outputs.items():
            assert set(output) == set(inst.graph.neighbors(node))

    def test_bandwidth_enforced(self):
        inst = cycle_instance(4, shuffle_ids=False)
        with pytest.raises(CongestError):
            run_congest(inst, Oversender(), bandwidth=8, max_rounds=3)

    def test_bit_accounting(self):
        inst = cycle_instance(5, shuffle_ids=False)
        result = run_congest(inst, EchoOnce(), bandwidth=16, max_rounds=5)
        # 5 nodes x 2 ports x 16 bits in round 1
        assert result.total_bits == 5 * 2 * 16
        assert result.max_bits_on_edge == 16

    def test_round_cap(self):
        class Chatter(EchoOnce):
            def step(self, state, round_index, inbox):
                msg = Message(payload=0, bits=1)
                return {p: msg for p in state["info"].ports}, None

        inst = cycle_instance(4, shuffle_ids=False)
        result = run_congest(inst, Chatter(), bandwidth=8, max_rounds=7)
        assert result.rounds == 7
        assert not result.all_terminated

    def test_bad_bandwidth(self):
        inst = cycle_instance(4, shuffle_ids=False)
        with pytest.raises(CongestError):
            run_congest(inst, EchoOnce(), bandwidth=0, max_rounds=2)

    def test_done_predicate_stops_early(self):
        class Forever(EchoOnce):
            def step(self, state, round_index, inbox):
                state["rounds"] = round_index
                return {}, None

        inst = cycle_instance(4, shuffle_ids=False)
        result = run_congest(
            inst,
            Forever(),
            bandwidth=8,
            max_rounds=50,
            done_predicate=lambda outs: True,
        )
        assert result.rounds <= 1


class TestVerifierHelpers:
    def test_outputs_within_alphabet(self):
        from repro.lcl.verifier import outputs_within_alphabet
        from repro.problems import LeafColoring

        problem = LeafColoring()
        good = {1: "R", 2: "B"}
        bad = {1: "R", 2: "purple"}
        assert outputs_within_alphabet(problem, good) == []
        assert outputs_within_alphabet(problem, bad) == [2]

    def test_callable_alphabet(self):
        from repro.lcl.verifier import outputs_within_alphabet
        from repro.problems import BalancedTree

        problem = BalancedTree()
        assert outputs_within_alphabet(problem, {1: ("B", 1)}) == []
        assert outputs_within_alphabet(problem, {1: "nope"}) == [1]
