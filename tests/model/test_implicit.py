"""The implicit-oracle layer (DESIGN.md §10) and the `as_oracle` front door.

Differential core: for every family registered with ``implicit=True``
the generator must reproduce its materialized factory *bit for bit* —
port maps, labelings, NodeInfo tables, and resolve responses — at
every node of small instances, because the giant-n sweeps rest
entirely on that equivalence.  The rest pins the API-redesign spine:
``InstanceSpec`` pickling in O(1) bytes, the bounded LRU, the
``as_oracle`` dispatch matrix, the documented backend-spec grammar,
and the runner's deprecation shims.
"""

import importlib
import pickle
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.backends import (
    BACKEND_SPEC_GRAMMAR,
    BackendSpec,
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    parse_backend_spec,
)
from repro.graphs.port_graph import PortGraphError
from repro.model.implicit import (
    MATERIALIZE_LIMIT,
    ImplicitFamilyFactory,
    ImplicitOracle,
    InstanceSpec,
    as_oracle,
    implicit_families,
    iter_node_ids,
)
from repro.model.oracle import CompiledOracle, StaticOracle
from repro.model.runner import run_algorithm, solve_and_check
from repro.registry import ALGORITHMS, FAMILIES, PROBLEMS, load_components

# Per-family grid parameters landing near n = 15 / 63 / 255 — small
# enough to materialize, large enough to cross every structural case
# (root, internal, leaf, chain boundaries, cycle wrap-around).
SMALL_PARAMS = {
    "leaf-coloring-hard": (3, 5, 7),
    "balanced-tree": (3, 5, 7),
    "cycle-uniform": (15, 63, 255),
    "hierarchical-thc-det(2)": (3, 7, 15),
}

# Parameters taking each family to n >= 10^6, the hypothesis-probe
# regime (well past anything the differential pass materializes).
GIANT_PARAMS = {
    "leaf-coloring-hard": 19,  # n = 2^20 - 1
    "balanced-tree": 19,  # n = 2^20 - 1
    "cycle-uniform": 1_000_000,
    "hierarchical-thc-det(2)": 1_000,  # n = 1,001,000
}

DIFFERENTIAL_CASES = [
    (family, param)
    for family in SMALL_PARAMS
    for param in SMALL_PARAMS[family]
]


@pytest.fixture(scope="module", autouse=True)
def _components():
    load_components()


def materialized_row(instance, node):
    graph = instance.graph
    return tuple(
        graph.neighbor_at(node, port)
        for port in range(1, graph.num_ports(node) + 1)
    )


class TestDifferentialEquivalence:
    """Implicit generator == materialized factory, node for node."""

    @pytest.mark.parametrize("family,param", DIFFERENTIAL_CASES)
    def test_rows_labels_and_oracles_are_identical(self, family, param):
        spec = InstanceSpec(family, param)
        instance = spec.materialize()
        implicit = ImplicitOracle(spec)
        reference = StaticOracle(instance)
        assert spec.n == instance.n
        assert spec.name == instance.name
        assert implicit.n == reference.n
        for node in instance.graph.nodes():
            row, label = spec.generator.node_row(node)
            assert row == materialized_row(instance, node)
            assert label == instance.labeling[node]
            want = reference.node_info(node)
            assert implicit.node_info(node) == want
            ports = max(want.ports, default=0)
            for port in range(0, ports + 2):
                assert implicit.resolve(node, port) == reference.resolve(
                    node, port
                )

    @pytest.mark.parametrize("family,param", DIFFERENTIAL_CASES)
    def test_meta_matches_materialized(self, family, param):
        spec = InstanceSpec(family, param)
        instance = spec.materialize()
        for key, value in spec.meta.items():
            assert instance.meta[key] == value

    @pytest.mark.parametrize("family", sorted(SMALL_PARAMS))
    def test_unknown_nodes_raise_port_graph_error(self, family):
        oracle = ImplicitOracle(
            InstanceSpec(family, SMALL_PARAMS[family][0])
        )
        for bad in (0, -1, oracle.n + 1):
            with pytest.raises(PortGraphError, match="unknown node"):
                oracle.node_info(bad)
            with pytest.raises(PortGraphError, match="unknown node"):
                oracle.resolve(bad, 1)


class TestRegistryConsistency:
    def test_registry_implicit_flags_match_generator_table(self):
        registered = {entry.name for entry in FAMILIES if entry.implicit}
        assert registered == set(implicit_families())

    def test_every_implicit_family_has_small_and_giant_params(self):
        assert set(SMALL_PARAMS) == set(implicit_families())
        assert set(GIANT_PARAMS) == set(implicit_families())

    def test_unknown_family_names_the_implicit_ones(self):
        with pytest.raises(ValueError, match="leaf-coloring-hard"):
            InstanceSpec("no-such-family", 3).n

    def test_implicit_family_factory_builds_specs(self):
        factory = ImplicitFamilyFactory("cycle-uniform")
        spec = factory(63)
        assert isinstance(spec, InstanceSpec)
        assert spec.n == 63


class TestGiantProbes:
    """Hypothesis-driven node-id probes at n >= 10^6.

    Every giant family admits ids 1..10^6, so one strategy serves all;
    ``derandomize`` keeps the sampled ids stable across CI runs.
    """

    @pytest.mark.parametrize("family", sorted(GIANT_PARAMS))
    @settings(max_examples=50, derandomize=True, deadline=None)
    @given(node=st.integers(min_value=1, max_value=1_000_000))
    def test_sampled_nodes_are_self_consistent(self, family, node):
        oracle = ImplicitOracle(InstanceSpec(family, GIANT_PARAMS[family]))
        info = oracle.node_info(node)
        assert info.node_id == node
        assert info.degree == len(info.ports)
        assert oracle.resolve(node, 0) is None
        assert oracle.resolve(node, max(info.ports, default=0) + 1) is None
        for port in info.ports:
            neighbor = oracle.resolve(node, port)
            assert neighbor is not None
            assert 1 <= neighbor <= oracle.n
            back = oracle.node_info(neighbor)
            assert any(
                oracle.resolve(neighbor, q) == node for q in back.ports
            )


class TestInstanceSpecValue:
    def test_pickles_to_constant_bytes(self):
        sizes = {
            len(pickle.dumps(InstanceSpec("leaf-coloring-hard", param)))
            for param in (3, 23, 26)
        }
        assert len(sizes) == 1, "pickle size must not grow with n"
        assert sizes.pop() < 256

    def test_pickle_round_trips(self):
        spec = InstanceSpec("balanced-tree", 23, seed=5)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.n == 2**24 - 1

    def test_materialize_refuses_giant_n(self):
        spec = InstanceSpec("balanced-tree", 25)
        assert spec.n > MATERIALIZE_LIMIT
        with pytest.raises(ValueError, match="materialize"):
            spec.materialize()


class TestImplicitOracleLRU:
    def test_realized_nodes_stay_bounded(self):
        oracle = ImplicitOracle(
            InstanceSpec("cycle-uniform", 1_000_000), max_realized=16
        )
        for node in range(1, 201):
            oracle.node_info(node)
        assert oracle.realized <= 16
        assert oracle.realized_total == 200

    def test_evicted_nodes_are_recomputed_identically(self):
        spec = InstanceSpec("leaf-coloring-hard", 7)
        bounded = ImplicitOracle(spec, max_realized=4)
        unbounded = ImplicitOracle(spec)
        first = [bounded.node_info(node) for node in range(1, bounded.n + 1)]
        again = [bounded.node_info(node) for node in range(1, bounded.n + 1)]
        assert first == again
        assert first == [
            unbounded.node_info(node) for node in range(1, bounded.n + 1)
        ]
        assert bounded.realized <= 4


class TestAsOracleDispatch:
    def test_spec_modes(self):
        spec = InstanceSpec("cycle-uniform", 15)
        assert isinstance(as_oracle(spec), ImplicitOracle)
        assert isinstance(as_oracle(spec, mode="implicit"), ImplicitOracle)
        assert isinstance(as_oracle(spec, mode="compiled"), CompiledOracle)
        assert isinstance(as_oracle(spec, mode="reference"), StaticOracle)

    def test_instance_modes(self):
        instance = InstanceSpec("cycle-uniform", 15).materialize()
        assert isinstance(as_oracle(instance), CompiledOracle)
        assert isinstance(
            as_oracle(instance, mode="reference"), StaticOracle
        )
        with pytest.raises(ValueError, match="implicit"):
            as_oracle(instance, mode="implicit")

    def test_bare_graph_is_wrapped(self):
        graph = InstanceSpec("cycle-uniform", 15).materialize().graph
        oracle = as_oracle(graph, mode="reference")
        assert isinstance(oracle, StaticOracle)
        assert oracle.n == 15

    def test_rejects_unknown_modes_and_types(self):
        spec = InstanceSpec("cycle-uniform", 15)
        with pytest.raises(ValueError, match="unknown oracle mode"):
            as_oracle(spec, mode="quantum")
        with pytest.raises(TypeError, match="cannot build an oracle"):
            as_oracle(42)


class TestIterNodeIds:
    def test_small_spec_enumerates_every_node(self):
        spec = InstanceSpec("cycle-uniform", 15)
        assert list(iter_node_ids(spec)) == list(range(1, 16))
        assert list(iter_node_ids(spec.materialize())) == list(range(1, 16))

    def test_giant_spec_demands_explicit_nodes(self):
        with pytest.raises(ValueError, match="nodes="):
            iter_node_ids(InstanceSpec("balanced-tree", 25))


class TestRunnerAcceptsSpecs:
    def test_run_algorithm_on_giant_spec_is_bounded(self):
        spec = InstanceSpec("leaf-coloring-hard", 21)  # n = 2^22 - 1
        algo = ALGORITHMS.get("leaf-coloring/rw-to-leaf")
        result = run_algorithm(spec, algo.make(), seed=7, nodes=[1])
        assert result.outputs[1] is not None
        assert result.max_volume <= 4 * 22  # Θ(log n), generous slack

    def test_solve_and_check_validates_small_specs(self):
        spec = InstanceSpec("leaf-coloring-hard", 4)
        problem = PROBLEMS.get("leaf-coloring").make()
        algo = ALGORITHMS.get("leaf-coloring/distance")
        report = solve_and_check(problem, spec, algo.make(), seed=algo.seed)
        assert report.valid

    def test_solve_and_check_refuses_giant_specs(self):
        spec = InstanceSpec("leaf-coloring-hard", 23)
        problem = PROBLEMS.get("leaf-coloring").make()
        algo = ALGORITHMS.get("leaf-coloring/rw-to-leaf")
        with pytest.raises(ValueError, match="run_algorithm"):
            solve_and_check(problem, spec, algo.make(), seed=7)


class TestRunnerDeprecationShims:
    def test_bare_graph_warns_and_still_runs(self):
        instance = InstanceSpec("cycle-uniform", 8).materialize()
        algo = ALGORITHMS.get("constant/echo-ok")
        with pytest.warns(DeprecationWarning, match="bare graph"):
            result = run_algorithm(instance.graph, algo.make())
        assert len(result.outputs) == 8

    def test_prebuilt_oracle_warns_and_unwraps(self):
        instance = InstanceSpec("cycle-uniform", 8).materialize()
        algo = ALGORITHMS.get("constant/echo-ok")
        with pytest.warns(DeprecationWarning, match="pre-built oracle"):
            result = run_algorithm(StaticOracle(instance), algo.make())
        assert len(result.outputs) == 8


class TestLowerBoundShims:
    @pytest.mark.parametrize("module", [
        "repro.lower_bounds.disjointness",
        "repro.lower_bounds.hierarchical_adversary",
        "repro.lower_bounds.leaf_coloring_adversary",
    ])
    def test_import_warns_but_reexports(self, module):
        sys.modules.pop(module, None)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            shim = importlib.import_module(module)
        for name in shim.__all__:
            assert getattr(shim, name) is not None


class TestParseBackendSpec:
    @pytest.mark.parametrize("spec", [
        "serial",
        "reference",
        "batch",
        "process",
        "process:4",
        "process:4:shm",
        "process:4:pickle",
    ])
    def test_str_round_trips(self, spec):
        parsed = parse_backend_spec(spec)
        assert str(parsed) == spec
        assert parse_backend_spec(str(parsed)) == parsed

    def test_make_builds_the_named_backend(self):
        assert isinstance(parse_backend_spec("serial").make(), SerialBackend)
        assert isinstance(parse_backend_spec("batch").make(), BatchBackend)
        reference = parse_backend_spec("reference").make()
        assert isinstance(reference, SerialBackend)
        assert reference.oracle_mode == "reference"
        pool = parse_backend_spec("process:3:pickle").make()
        try:
            assert isinstance(pool, ProcessPoolBackend)
            assert pool.workers == 3
        finally:
            pool.close()

    def test_errors_name_the_grammar(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            parse_backend_spec("gpu")
        with pytest.raises(ValueError, match="'serial', 'reference'"):
            parse_backend_spec("gpu")
        with pytest.raises(ValueError, match="takes no arguments"):
            parse_backend_spec("serial:2")
        with pytest.raises(ValueError, match="transport"):
            parse_backend_spec("process:2:carrier-pigeon")
        with pytest.raises(ValueError, match="worker count"):
            parse_backend_spec("process:two")
        with pytest.raises(ValueError, match="worker count"):
            parse_backend_spec("process:0")
        with pytest.raises(TypeError, match="must be a string"):
            parse_backend_spec(42)

    def test_get_backend_accepts_spec_values(self):
        backend = get_backend(BackendSpec("serial"))
        assert isinstance(backend, SerialBackend)
        assert BACKEND_SPEC_GRAMMAR in str(
            pytest.raises(ValueError, get_backend, 42).value
        )

    def test_backend_spec_validates_on_construction(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            BackendSpec("gpu")
        with pytest.raises(ValueError, match="takes no workers"):
            BackendSpec("serial", workers=2)
        with pytest.raises(ValueError, match="workers must be positive"):
            BackendSpec("process", workers=0)


class TestNewFamiliesMaterialize:
    """The two families added for the implicit layer validate end to end."""

    @pytest.mark.parametrize(
        "family", ["cycle-uniform", "hierarchical-thc-det(2)"]
    )
    def test_factories_validate_under_registered_problems(self, family):
        entry = FAMILIES.get(family)
        assert entry.implicit
        for problem_name in entry.problems:
            problem = PROBLEMS.get(problem_name).make()
            for algorithm in ALGORITHMS:
                if algorithm.problem != problem_name:
                    continue
                report = solve_and_check(
                    problem,
                    entry.factory(entry.quick[0]),
                    algorithm.make(),
                    seed=algorithm.seed,
                )
                assert report.valid, (family, problem_name, algorithm.name)
