"""Word-batched tape generation must reproduce the per-bit sequence.

The historical implementation drew one ``getrandbits(1)`` per bit; the
batched one draws ``getrandbits(32 * W)`` and extracts each 32-bit
word's top bit.  CPython's Mersenne Twister serves ``getrandbits(1)`` as
the top bit of a fresh word and packs multi-word requests little-endian,
so the two sequences are identical — these tests pin that equality (and
a hardcoded golden prefix, so a platform/CPython drift would be caught
even if both implementations drifted together).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.randomness import Tape, TapeStore

# First 64 bits of the seed-0/node-0 tape ("repro-tape:0:0"), as produced
# by the original per-bit implementation.  Stable across CPython >= 3.2
# (str seeding and the MT output path are both frozen by bug-for-bug
# compatibility guarantees).
GOLDEN_SEED_0_NODE_0 = [
    0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0,
    0, 1, 1, 1, 0, 1, 1, 0, 0, 1, 1, 0, 0, 0, 1, 1,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1,
    0, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0,
]


def per_bit_reference(seed_material: str, count: int):
    """The historical implementation: one RNG round-trip per bit."""
    rng = random.Random(seed_material)
    return [rng.getrandbits(1) for _ in range(count)]


class TestSequenceRegression:
    def test_golden_prefix(self):
        tape = Tape("repro-tape:0:0")
        assert [tape.bit(i) for i in range(64)] == GOLDEN_SEED_0_NODE_0

    def test_golden_matches_per_bit_reference(self):
        assert per_bit_reference("repro-tape:0:0", 64) == GOLDEN_SEED_0_NODE_0

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        node=st.integers(min_value=0, max_value=10**6),
        count=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_bit_for_any_seed(self, seed, node, count):
        material = f"repro-tape:{seed}:{node}"
        tape = Tape(material)
        assert [tape.bit(i) for i in range(count)] == per_bit_reference(
            material, count
        )

    def test_random_access_order_is_irrelevant(self):
        """Reading index 200 first materializes 0..200 sequentially."""
        material = "repro-tape:7:42"
        eager = Tape(material)
        first = eager.bit(200)
        reference = per_bit_reference(material, 201)
        assert first == reference[200]
        assert [eager.bit(i) for i in range(201)] == reference

    def test_store_keys_are_preserved(self):
        """TapeStore seeds tapes by (seed, node_id) exactly as before."""
        store = TapeStore(13)
        for node in (0, 5, 999):
            expected = per_bit_reference(f"repro-tape:13:{node}", 40)
            assert [store.tape_for(node).bit(i) for i in range(40)] == expected
        public = per_bit_reference("repro-tape:13:public", 40)
        assert [store.public_tape().bit(i) for i in range(40)] == public


class TestBoundSemantics:
    def test_bits_generated_is_highest_index_plus_one(self):
        """The paper's bound b must not round up to a word boundary."""
        tape = Tape("repro-tape:1:1")
        assert tape.bits_generated == 0
        tape.bit(0)
        assert tape.bits_generated == 1
        tape.bit(10)
        assert tape.bits_generated == 11
        tape.bit(3)  # re-reads never extend the tape
        assert tape.bits_generated == 11
        tape.bit(100)  # beyond one 64-bit chunk
        assert tape.bits_generated == 101

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            Tape("x").bit(-1)

    def test_store_total_counts_materialized_bits_only(self):
        store = TapeStore(3)
        store.tape_for(1).bit(9)
        store.tape_for(2).bit(0)
        assert store.total_bits_generated() == 11
