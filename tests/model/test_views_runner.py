"""Tests for ball gathering, the probe topology adapter, and the runner."""


from repro.graphs import tree_structure as ts
from repro.graphs.generators import (
    cycle_instance,
    hierarchical_thc_instance,
    leaf_coloring_instance,
)
from repro.lcl.base import LCLProblem, Violation
from repro.model.oracle import StaticOracle
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.model.runner import run_algorithm, solve_and_check
from repro.model.views import ProbeTopology, gather_ball


def det_view(instance, start):
    oracle = StaticOracle(instance)
    return ProbeView(
        oracle,
        start,
        RandomnessContext(
            None, RandomnessModel.DETERMINISTIC, start, lambda nid: True
        ),
    )


class TestGatherBall:
    def test_radius_zero(self):
        inst = leaf_coloring_instance(3)
        view = det_view(inst, inst.meta["root"])
        ball = gather_ball(view, 0)
        assert ball.nodes() == [inst.meta["root"]]

    def test_ball_matches_graph_ball(self):
        inst = leaf_coloring_instance(4)
        root = inst.meta["root"]
        for radius in (1, 2, 3):
            view = det_view(inst, root)
            ball = gather_ball(view, radius)
            assert ball.nodes() == inst.graph.ball(root, radius)
            assert view.distance_cost() == radius

    def test_ball_distances_correct(self):
        inst = leaf_coloring_instance(3)
        root = inst.meta["root"]
        view = det_view(inst, root)
        ball = gather_ball(view, 2)
        truth = inst.graph.bfs_distances(root, max_distance=2)
        assert ball.distance == truth

    def test_ball_volume_cost(self):
        """Lemma 2.5: a distance-r gather costs at most Δ^r + ... volume."""
        inst = leaf_coloring_instance(5)
        root = inst.meta["root"]
        view = det_view(inst, root)
        gather_ball(view, 3)
        assert view.volume == len(inst.graph.ball(root, 3))

    def test_ball_stops_at_graph_end(self):
        inst = leaf_coloring_instance(2)
        view = det_view(inst, inst.meta["root"])
        ball = gather_ball(view, 50)
        assert len(ball.nodes()) == inst.graph.num_nodes


class TestProbeTopology:
    def test_predicates_work_over_probes(self):
        inst = leaf_coloring_instance(3)
        root = inst.meta["root"]
        view = det_view(inst, root)
        topo = ProbeTopology(view)
        assert ts.is_internal(topo, root)
        leaf_view = det_view(inst, inst.meta["leaves"][0])
        leaf_topo = ProbeTopology(leaf_view)
        assert ts.is_leaf(leaf_topo, inst.meta["leaves"][0])

    def test_memoized_resolution_saves_queries(self):
        inst = leaf_coloring_instance(3)
        root = inst.meta["root"]
        view = det_view(inst, root)
        topo = ProbeTopology(view)
        ts.is_internal(topo, root)
        q1 = view.queries
        ts.is_internal(topo, root)
        assert view.queries == q1

    def test_level_probe_cost_is_o_of_k(self):
        """Observation 5.3: levels are computable from O(k)-radius views."""
        k = 3
        inst = hierarchical_thc_instance(k, 4)
        root = inst.meta["root"]
        view = det_view(inst, root)
        topo = ProbeTopology(view)
        assert ts.level_of(topo, root, cap=k) == k
        assert view.volume <= 2 * k + 1


class ConstantAlgorithm(ProbeAlgorithm):
    name = "constant"

    def run(self, view):
        return "ok"


class ConstantProblem(LCLProblem):
    name = "constant-problem"
    output_labels = ("ok",)

    def check_node(self, topology, node, outputs):
        if outputs.get(node) != "ok":
            return [Violation(node, "const", "expected 'ok'")]
        return []


class TestRunner:
    def test_run_all_nodes(self):
        inst = leaf_coloring_instance(3)
        result = run_algorithm(inst, ConstantAlgorithm())
        assert set(result.outputs) == set(inst.graph.nodes())
        assert result.max_volume == 1
        assert result.max_distance == 0

    def test_solve_and_check_valid(self):
        inst = leaf_coloring_instance(2)
        report = solve_and_check(ConstantProblem(), inst, ConstantAlgorithm())
        assert report.valid
        assert report.violations == []

    def test_solve_and_check_detects_violation(self):
        class Wrong(ProbeAlgorithm):
            name = "wrong"

            def run(self, view):
                return "nope"

        inst = leaf_coloring_instance(2)
        report = solve_and_check(ConstantProblem(), inst, Wrong())
        assert not report.valid
        assert len(report.violations) == inst.graph.num_nodes

    def test_node_subset(self):
        inst = cycle_instance(8)
        some = sorted(inst.graph.nodes())[:3]
        result = run_algorithm(inst, ConstantAlgorithm(), nodes=some)
        assert sorted(result.outputs) == some
