"""Tests for the probe engine: accounting, constraints, budgets."""

import pytest

from repro.graphs.generators import leaf_coloring_instance
from repro.model.oracle import StaticOracle
from repro.model.probe import (
    BudgetExceeded,
    CostProfile,
    ProbeAlgorithm,
    ProbeError,
    ProbeView,
    execute_at,
)
from repro.model.randomness import (
    RandomnessContext,
    RandomnessError,
    RandomnessModel,
    TapeStore,
)


def make_view(instance, start, model=RandomnessModel.DETERMINISTIC, **kw):
    oracle = StaticOracle(instance)
    store = TapeStore(0) if model is not RandomnessModel.DETERMINISTIC else None
    view = ProbeView(
        oracle,
        start,
        RandomnessContext(store, model, start, lambda nid: view.is_visited(nid)),
        **kw,
    )
    return view


@pytest.fixture
def tree():
    return leaf_coloring_instance(3)


class TestVisitedSetSemantics:
    def test_start_counts_toward_volume(self, tree):
        view = make_view(tree, tree.meta["root"])
        assert view.volume == 1
        assert view.distance_cost() == 0

    def test_query_reveals_id_degree_label(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root)
        info = view.query(root, 1)  # root's left child
        assert info is not None
        assert info.node_id == 2
        assert info.degree == 3
        assert info.label.color is not None

    def test_cannot_query_unvisited(self, tree):
        view = make_view(tree, tree.meta["root"])
        with pytest.raises(ProbeError):
            view.query(5, 1)

    def test_dangling_port_returns_none_but_counts(self, tree):
        leaf = tree.meta["leaves"][0]
        view = make_view(tree, leaf)
        assert view.query(leaf, 3) is None
        assert view.queries == 1
        assert view.volume == 1

    def test_requery_does_not_grow_volume(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root)
        view.query(root, 1)
        view.query(root, 1)
        assert view.volume == 2
        assert view.queries == 2

    def test_info_requires_visit(self, tree):
        view = make_view(tree, tree.meta["root"])
        with pytest.raises(ProbeError):
            view.info(99)


class TestCosts:
    def test_distance_is_explored_bfs(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root)
        child = view.query(root, 1).node_id
        grandchild = view.query(child, 2).node_id
        assert view.distance_cost() == 2
        view.query(grandchild, 1)  # back toward child: no growth
        assert view.distance_cost() == 2

    def test_distance_cache_repeated_calls(self, tree):
        """cost_profile() after exploring is O(1) on repeat calls."""
        root = tree.meta["root"]
        view = make_view(tree, root)
        node = root
        for _ in range(3):
            node = view.query(node, 1 if node == root else 2).node_id
        first = view.distance_cost()
        assert view.distance_cost() == first
        assert view.cost_profile().distance == first

    def test_distance_cache_invalidated_by_shortcut_edge(self):
        """A new edge between two *visited* nodes must refresh the BFS.

        Walking a 5-cycle one way puts the far node at explored distance
        4; closing the cycle afterwards (no new visit!) shortens it to 1.
        """
        from repro.graphs.generators import cycle_instance

        inst = cycle_instance(5, shuffle_ids=False)
        view = make_view(inst, 1)
        node = 1
        for _ in range(4):  # 1 -> 2 -> 3 -> 4 -> 5 via successor ports
            node = view.query(node, 2).node_id
        assert view.distance_cost() == 4
        view.query(1, 1)  # predecessor of 1 is node 5: closes the cycle
        assert view.distance_cost() == 2

    def test_volume_bounds_distance(self, tree):
        """First inequality of Lemma 2.5 at the execution level."""
        root = tree.meta["root"]
        view = make_view(tree, root)
        node = root
        for _ in range(3):
            info = view.query(node, 1 if node == root else 2)
            node = info.node_id
        assert view.distance_cost() <= view.volume

    def test_cost_profile_fields(self, tree):
        view = make_view(tree, tree.meta["root"])
        view.query(tree.meta["root"], 1)
        profile = view.cost_profile()
        assert profile == CostProfile(
            volume=2, distance=1, queries=1, random_bits=0, truncated=False
        )


class TestBudgets:
    def test_volume_budget(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root, max_volume=2)
        view.query(root, 1)
        with pytest.raises(BudgetExceeded):
            view.query(root, 2)

    def test_query_budget(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root, max_queries=1)
        view.query(root, 1)
        with pytest.raises(BudgetExceeded):
            view.query(root, 1)

    def test_execute_at_truncates_to_fallback(self, tree):
        class Gobble(ProbeAlgorithm):
            name = "gobble"

            def run(self, view):
                frontier = [view.start]
                for node in frontier:
                    for port in view.info(node).ports:
                        nxt = view.query(node, port)
                        if nxt is not None and nxt.node_id not in frontier:
                            frontier.append(nxt.node_id)
                return "done"

            def fallback(self, view):
                return "truncated"

        oracle = StaticOracle(tree)
        output, profile = execute_at(
            oracle, Gobble(), tree.meta["root"], max_volume=4
        )
        assert output == "truncated"
        assert profile.truncated
        assert profile.volume <= 4


class TestRandomnessDisciplines:
    def test_deterministic_forbids_randomness(self, tree):
        view = make_view(tree, tree.meta["root"])
        with pytest.raises(RandomnessError):
            view.random_bit(tree.meta["root"], 0)

    def test_private_requires_visit(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root, model=RandomnessModel.PRIVATE)
        assert view.random_bit(root, 0) in (0, 1)
        with pytest.raises(RandomnessError):
            view.random_bit(12345, 0)
        child = view.query(root, 1).node_id
        assert view.random_bit(child, 0) in (0, 1)

    def test_secret_only_own_tape(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root, model=RandomnessModel.SECRET)
        assert view.random_bit(root, 0) in (0, 1)
        child = view.query(root, 1).node_id
        with pytest.raises(RandomnessError):
            view.random_bit(child, 0)

    def test_public_shared_across_nodes(self, tree):
        root = tree.meta["root"]
        oracle = StaticOracle(tree)
        store = TapeStore(3)
        bits = []
        for start in (root, root + 1):
            view = ProbeView(
                oracle,
                start,
                RandomnessContext(
                    store,
                    RandomnessModel.PUBLIC,
                    start,
                    lambda nid: True,
                ),
            )
            bits.append([view.random_bit(start, i) for i in range(16)])
        assert bits[0] == bits[1]

    def test_private_tapes_agree_across_executions(self, tree):
        """Different executions reading r_w see the same bits (Prop 3.10)."""
        root = tree.meta["root"]
        oracle = StaticOracle(tree)
        store = TapeStore(7)
        reads = []
        for start in (root, 2):
            view = ProbeView(
                oracle,
                start,
                RandomnessContext(
                    store,
                    RandomnessModel.PRIVATE,
                    start,
                    lambda nid: view.is_visited(nid),  # noqa: B023
                ),
            )
            if start == root:
                target = view.query(root, 1).node_id
            else:
                target = start
            reads.append([view.random_bit(target, i) for i in range(8)])
        assert reads[0] == reads[1]

    def test_bit_reads_are_counted(self, tree):
        root = tree.meta["root"]
        view = make_view(tree, root, model=RandomnessModel.PRIVATE)
        view.random_bit(root, 0)
        view.random_bit(root, 1)
        assert view.cost_profile().random_bits == 2

    def test_same_seed_same_tape(self):
        a = TapeStore(5).tape_for(9)
        b = TapeStore(5).tape_for(9)
        assert [a.bit(i) for i in range(32)] == [b.bit(i) for i in range(32)]

    def test_different_seeds_differ(self):
        a = TapeStore(5).tape_for(9)
        b = TapeStore(6).tape_for(9)
        assert [a.bit(i) for i in range(64)] != [b.bit(i) for i in range(64)]
