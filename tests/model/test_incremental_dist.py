"""Incremental DIST labels must equal the reference BFS at every step.

The engine maintains per-node distance labels updated on each visit and
edge insertion (DESIGN.md §6.3); these tests interleave arbitrary query
sequences with ``distance_cost()`` reads and compare against
``distance_cost_reference()`` — the BFS-from-scratch specification —
after *every* mutation, so any transient divergence (not just a wrong
final answer) fails.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import cycle_graph, path_graph
from repro.graphs.labelings import Instance, Labeling
from repro.model.oracle import CompiledOracle, StaticOracle
from repro.model.probe import BudgetExceeded, ProbeView
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.registry import iter_compatible, load_components

load_components()
CELLS = list(iter_compatible())


def make_view(instance, start, distance_mode="incremental", **kwargs):
    context = RandomnessContext(None, RandomnessModel.DETERMINISTIC, start)
    return ProbeView(
        CompiledOracle(instance), start, context,
        distance_mode=distance_mode, **kwargs,
    )


def unlabeled(graph, name):
    return Instance(graph=graph, labeling=Labeling(), name=name)


class TestShortcutRelaxation:
    def test_cycle_shortcut_lowers_far_label(self):
        """Walking a 5-cycle one way, then closing it the other way.

        The far node sits at explored distance 4 until the closing edge
        reveals the 2-step path; the relaxation wave must propagate the
        improvement (this mirrors the reference-mode cache test in
        test_probe.py).
        """
        instance = unlabeled(cycle_graph(5), "cycle-5")
        view = make_view(instance, 1)
        node = 1
        for _ in range(4):  # walk the successor direction all the way
            node = view.query(node, 2).node_id
        assert view.distance_cost() == 4
        assert view.distance_cost_reference() == 4
        view.query(1, 1)  # close the cycle: 5 is now 1 step from 1
        assert view.distance_cost() == 2
        assert view.distance_cost_reference() == 2

    def test_even_cycle_both_arms(self):
        instance = unlabeled(cycle_graph(8), "cycle-8")
        view = make_view(instance, 1)
        forward = backward = 1
        for _ in range(3):
            forward = view.query(forward, 2).node_id
            backward = view.query(backward, 1).node_id
            assert view.distance_cost() == view.distance_cost_reference()
        # Meet in the middle: the remaining two edges close the cycle.
        view.query(forward, 2)
        assert view.distance_cost() == view.distance_cost_reference() == 4
        view.query(backward, 1)
        assert view.distance_cost() == view.distance_cost_reference() == 4

    def test_start_only_is_zero(self):
        view = make_view(unlabeled(path_graph(4), "p4"), 2)
        assert view.distance_cost() == 0
        assert view.distance_cost_reference() == 0


class TestTruncatedRuns:
    def test_budget_exceeded_leaves_labels_consistent(self):
        instance = unlabeled(path_graph(6), "p6")
        view = make_view(instance, 1, max_volume=3)
        assert view.query(1, 1).node_id == 2
        assert view.query(2, 2).node_id == 3
        with pytest.raises(BudgetExceeded):
            view.query(3, 2)
        # The refused endpoint is adjacency-known but unvisited: DIST
        # ignores it on both paths.
        assert view.volume == 3
        assert view.distance_cost() == view.distance_cost_reference() == 2
        assert view.cost_profile(truncated=True).distance == 2


class TestRandomExplorations:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_labels_match_reference_after_every_query(self, data):
        cell = data.draw(st.sampled_from(CELLS), label="cell")
        instance = cell.family.instance(cell.family.quick[0])
        graph = instance.graph
        nodes = list(graph.nodes())
        start = data.draw(st.sampled_from(nodes), label="start")
        view = make_view(instance, start)
        steps = data.draw(st.integers(min_value=1, max_value=40))
        for _ in range(steps):
            visited = sorted(view._visited)
            source = data.draw(st.sampled_from(visited))
            ports = view.info(source).ports
            if not ports:
                continue
            port = data.draw(st.sampled_from(list(ports)))
            view.query(source, port)
            assert view.distance_cost() == view.distance_cost_reference()
        profile = view.cost_profile()
        assert profile.distance == view.distance_cost_reference()

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_incremental_and_reference_views_agree_end_to_end(self, data):
        """Replay one query sequence through both engine modes."""
        cell = data.draw(st.sampled_from(CELLS), label="cell")
        instance = cell.family.instance(cell.family.quick[0])
        start = data.draw(
            st.sampled_from(list(instance.graph.nodes())), label="start"
        )
        fast = make_view(instance, start)
        slow = ProbeView(
            StaticOracle(instance),
            start,
            RandomnessContext(None, RandomnessModel.DETERMINISTIC, start),
            distance_mode="reference",
        )
        for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
            visited = sorted(fast._visited)
            source = data.draw(st.sampled_from(visited))
            ports = fast.info(source).ports
            if not ports:
                continue
            port = data.draw(st.sampled_from(list(ports)))
            fast_info = fast.query(source, port)
            slow_info = slow.query(source, port)
            assert fast_info == slow_info
        assert fast.cost_profile() == slow.cost_profile()
        assert fast.volume == slow.volume
