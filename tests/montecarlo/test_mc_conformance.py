"""Differential conformance: the MC engine vs fixed-count reference runs.

The contract of PR 5: with ``early_stop=off`` the streaming engine is
*bitwise identical* to the legacy fixed-count path — same per-trial
verdicts, same tape draws (total random bits consumed), same cost maxima
— for every registry-enumerated problem × algorithm × family cell and on
every execution backend.  The reference here is the definition itself: a
hand-rolled loop of :func:`~repro.model.runner.solve_and_check` calls at
seeds ``base_seed + trial`` on the uncompiled reference engine.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.backends import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    TrialOutcome,
)
from repro.model.runner import solve_and_check
from repro.montecarlo.engine import TrialPolicy, run_trials
from repro.registry import iter_compatible, load_components

load_components()
CELLS = list(iter_compatible())
CELL_IDS = ["{}@{}".format(c.algorithm.name, c.family.name) for c in CELLS]

REFERENCE = SerialBackend(compiled=False)
TRIALS = 4


def reference_outcomes(cell, instance, trials, base_seed):
    """The fixed-count reference: the definition, spelled out by hand."""
    problem = cell.problem.make()
    outcomes = []
    for trial in range(trials):
        report = solve_and_check(
            problem,
            instance,
            cell.algorithm.make(),
            seed=base_seed + trial,
            backend=REFERENCE,
        )
        outcomes.append(
            TrialOutcome(
                trial=trial,
                seed=base_seed + trial,
                valid=bool(report.valid),
                max_volume=report.run.max_volume,
                max_distance=report.run.max_distance,
                max_queries=report.run.max_queries,
                random_bits=report.run.total_random_bits,
            )
        )
    return outcomes


def engine_outcomes(cell, instance, trials, base_seed, backend):
    result = run_trials(
        cell.problem.make(),
        instance,
        cell.algorithm.make(),
        TrialPolicy.fixed(trials),
        base_seed=base_seed,
        backend=backend,
    )
    return result.outcomes


class TestRegistryMatrix:
    """Every cell: engine (early_stop=off) == fixed-count reference."""

    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_engine_matches_reference_per_trial(self, cell):
        instance = cell.family.instance(cell.family.quick[0])
        base_seed = cell.algorithm.seed
        expected = reference_outcomes(cell, instance, TRIALS, base_seed)
        for backend in (SerialBackend(), BatchBackend()):
            got = engine_outcomes(
                cell, instance, TRIALS, base_seed, backend
            )
            # TrialOutcome equality covers verdicts, tape draws
            # (random_bits), and the per-trial cost maxima at once.
            assert got == expected, backend.name

    @pytest.mark.parametrize("cell", CELLS, ids=CELL_IDS)
    def test_adaptive_verdicts_are_a_reference_prefix(self, cell):
        """Early stopping only truncates the stream, never rewrites it."""
        instance = cell.family.instance(cell.family.quick[0])
        base_seed = cell.algorithm.seed
        adaptive = run_trials(
            cell.problem.make(),
            instance,
            cell.algorithm.make(),
            TrialPolicy(min_trials=2, max_trials=TRIALS, batch_size=2,
                        tolerance=0.2),
            base_seed=base_seed,
        )
        expected = reference_outcomes(cell, instance, TRIALS, base_seed)
        assert adaptive.outcomes == expected[: adaptive.trials]


class TestProcessPool:
    """The pool fan-out on a cell sample (workers are expensive to fork)."""

    CASES = [CELLS[0], CELLS[len(CELLS) // 2], CELLS[-1]]

    @pytest.mark.parametrize(
        "cell",
        CASES,
        ids=["{}@{}".format(c.algorithm.name, c.family.name) for c in CASES],
    )
    def test_pool_matches_reference(self, cell):
        instance = cell.family.instance(cell.family.quick[0])
        base_seed = cell.algorithm.seed
        expected = reference_outcomes(cell, instance, 6, base_seed)
        with ProcessPoolBackend(workers=2, chunk_size=2) as pool:
            got = engine_outcomes(cell, instance, 6, base_seed, pool)
        assert got == expected


class TestPropertyConformance:
    """Randomized draws over cells, trial counts, seeds, and backends."""

    @given(data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_cell_any_budget(self, data):
        cell = data.draw(st.sampled_from(CELLS), label="cell")
        param = data.draw(
            st.sampled_from(list(cell.family.quick)), label="param"
        )
        trials = data.draw(st.integers(min_value=1, max_value=5),
                           label="trials")
        base_seed = data.draw(st.integers(min_value=0, max_value=3),
                              label="base_seed")
        backend = data.draw(
            st.sampled_from(["serial", "batch", "reference"]),
            label="backend",
        )
        batch_size = data.draw(st.integers(min_value=1, max_value=trials),
                               label="batch_size")
        instance = cell.family.instance(param)
        expected = reference_outcomes(cell, instance, trials, base_seed)
        result = run_trials(
            cell.problem.make(),
            instance,
            cell.algorithm.make(),
            TrialPolicy(min_trials=1, max_trials=trials,
                        batch_size=batch_size, early_stop=False),
            base_seed=base_seed,
            backend=backend,
        )
        assert result.outcomes == expected
        assert result.rate == sum(o.valid for o in expected) / trials
