"""Statistical unit tests: interval math against closed forms (PR 5).

The Wilson bounds are recomputed here from the textbook formula with an
independently derived z; the Clopper–Pearson bounds are checked against
(a) the exact closed forms at the s ∈ {0, n} boundaries and (b) values
precomputed with scipy.stats.beta.ppf (hardcoded — the runtime stays
stdlib-only).  The early-stopping rule is exercised on synthetic
Bernoulli streams with pinned seeds: whenever the engine reports
``converged``, the interval really is inside tolerance, and it stopped
at the *first* batch boundary where the rule held.
"""

import math
import random
from statistics import NormalDist

import pytest

from repro.exec.backends import ExecutionBackend, TrialOutcome
from repro.montecarlo.engine import (
    STOP_BUDGET,
    STOP_CONVERGED,
    TrialPolicy,
    run_trials,
)
from repro.montecarlo.stats import (
    QuantileSketch,
    SuccessStats,
    binomial_interval,
    clopper_pearson_interval,
    regularized_incomplete_beta,
    wilson_interval,
)

# (successes, trials, confidence) -> scipy.stats.beta.ppf reference.
CLOPPER_PEARSON_REFERENCE = {
    (3, 10, 0.95): (0.0667395111777345, 0.6524528500599973),
    (17, 40, 0.9): (0.29184657878614506, 0.5668609107163234),
    (1, 50, 0.99): (0.00010024581152369896, 0.1394041245610722),
    (8, 10, 0.95): (0.4439045376923585, 0.9747892736731666),
}


class TestWilson:
    def test_matches_textbook_formula(self):
        for s, n, conf in [(8, 10, 0.95), (3, 10, 0.9), (40, 40, 0.99)]:
            z = NormalDist().inv_cdf(0.5 + conf / 2.0)
            p = s / n
            denom = 1 + z * z / n
            center = (p + z * z / (2 * n)) / denom
            spread = (
                z
                * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
                / denom
            )
            low, high = wilson_interval(s, n, conf)
            assert low == pytest.approx(max(0.0, center - spread), abs=1e-12)
            assert high == pytest.approx(min(1.0, center + spread), abs=1e-12)

    def test_stays_inside_unit_interval_at_boundaries(self):
        for n in (1, 5, 100):
            low0, high0 = wilson_interval(0, n)
            lown, highn = wilson_interval(n, n)
            assert low0 == 0.0 and 0 < high0 <= 1
            assert highn == 1.0 and 0 <= lown < 1
            assert lown == pytest.approx(1.0 - high0, abs=1e-12)  # symmetry

    def test_narrows_with_more_trials(self):
        widths = [
            wilson_interval(n // 2, n)[1] - wilson_interval(n // 2, n)[0]
            for n in (10, 40, 160, 640)
        ]
        assert widths == sorted(widths, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, confidence=1.0)


class TestClopperPearson:
    def test_closed_form_boundaries(self):
        """upper(0, n) = 1 − (α/2)^(1/n) and lower(n, n) = (α/2)^(1/n)."""
        for n, conf in [(10, 0.95), (20, 0.95), (50, 0.9)]:
            alpha = 1 - conf
            low0, high0 = clopper_pearson_interval(0, n, conf)
            lown, highn = clopper_pearson_interval(n, n, conf)
            assert low0 == 0.0 and highn == 1.0
            assert high0 == pytest.approx(
                1.0 - (alpha / 2) ** (1.0 / n), abs=1e-9
            )
            assert lown == pytest.approx((alpha / 2) ** (1.0 / n), abs=1e-9)

    def test_matches_scipy_reference(self):
        for (s, n, conf), (low, high) in CLOPPER_PEARSON_REFERENCE.items():
            got_low, got_high = clopper_pearson_interval(s, n, conf)
            assert got_low == pytest.approx(low, abs=1e-9)
            assert got_high == pytest.approx(high, abs=1e-9)

    def test_symmetry(self):
        """CP(s, n).low == 1 − CP(n−s, n).high, by construction."""
        for s, n in [(3, 10), (17, 40), (1, 50)]:
            low, high = clopper_pearson_interval(s, n)
            mlow, mhigh = clopper_pearson_interval(n - s, n)
            assert low == pytest.approx(1.0 - mhigh, abs=1e-9)
            assert high == pytest.approx(1.0 - mlow, abs=1e-9)

    def test_covers_point_estimate_and_contains_wilson_center(self):
        for s, n in [(0, 7), (7, 7), (3, 7), (30, 100)]:
            low, high = clopper_pearson_interval(s, n)
            assert low <= s / n <= high

    def test_incomplete_beta_closed_forms(self):
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert regularized_incomplete_beta(x, 1, 1) == pytest.approx(x)
            assert regularized_incomplete_beta(x, 2, 1) == pytest.approx(
                x * x
            )
            assert regularized_incomplete_beta(x, 1, 3) == pytest.approx(
                1 - (1 - x) ** 3
            )
        # Symmetric beta: the median is 1/2.
        for a in (2, 5, 11):
            assert regularized_incomplete_beta(0.5, a, a) == pytest.approx(
                0.5, abs=1e-12
            )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            clopper_pearson_interval(-1, 10)
        with pytest.raises(ValueError):
            clopper_pearson_interval(2, 10, confidence=0.0)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(2.0, 1, 1)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(0.5, 0, 1)


class TestSuccessStats:
    def test_streaming_counts_and_rate(self):
        stats = SuccessStats()
        for outcome in (True, True, False, True):
            stats.record(outcome)
        assert stats.trials == 4
        assert stats.successes == 3
        assert stats.rate == 0.75
        assert stats.interval() == wilson_interval(3, 4)

    def test_empty_interval_is_vacuous(self):
        assert SuccessStats().interval() == (0.0, 1.0)
        assert SuccessStats().rate == 0.0

    def test_method_dispatch(self):
        cp = SuccessStats(method="clopper-pearson")
        for _ in range(6):
            cp.record(True)
        assert cp.interval(0.95) == clopper_pearson_interval(6, 6, 0.95)
        assert binomial_interval(6, 6, 0.95, "clopper-pearson") == (
            cp.interval(0.95)
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            SuccessStats(method="wald")
        with pytest.raises(ValueError):
            binomial_interval(1, 2, method="wald")


class TestQuantileSketch:
    def test_exact_before_compaction(self):
        sketch = QuantileSketch(capacity=256)
        sketch.extend(range(101))
        assert sketch.quantile(0.0) == 0
        assert sketch.quantile(0.5) == 50
        assert sketch.quantile(1.0) == 100
        assert not sketch.compacted

    def test_bounded_memory_and_exact_extremes(self):
        sketch = QuantileSketch(capacity=64)
        rnd = random.Random(3)
        values = [rnd.random() for _ in range(5000)]
        sketch.extend(values)
        assert sketch.compacted
        assert len(sketch._values) <= 64
        assert sketch.count == 5000
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)
        # Rank-approximate in the middle: within a loose band.
        assert abs(sketch.quantile(0.5) - 0.5) < 0.1

    def test_deterministic_across_runs(self):
        def build():
            sketch = QuantileSketch(capacity=32)
            rnd = random.Random(9)
            sketch.extend(rnd.random() for _ in range(1000))
            return sketch.summary()

        assert build() == build()

    def test_no_weight_skew_after_compaction(self):
        """Old survivors and fresh arrivals must stay equally weighted.

        Regression: a sort-and-halve compaction left survivors standing
        for 2^k stream values each while fresh arrivals stood for one,
        so a late minority could swamp the ranks.  1025 zeros followed
        by 100 ones are 8.9% ones — p90 of the stream is 0.
        """
        sketch = QuantileSketch(capacity=512)
        sketch.extend([0.0] * 1025)
        sketch.extend([1.0] * 100)
        assert sketch.quantile(0.9) == 0.0
        assert sketch.quantile(1.0) == 1.0  # exact max still tracked

    def test_stride_sample_tracks_stream_proportions(self):
        # ~30% ones (pinned pseudo-random arrivals — systematic
        # sampling would alias against a periodic pattern): the
        # retained sample keeps the proportion however many
        # compactions ran.
        sketch = QuantileSketch(capacity=32)
        rnd = random.Random(7)
        for _ in range(4000):
            sketch.add(1.0 if rnd.random() < 0.3 else 0.0)
        ones = sum(1 for v in sketch._values if v == 1.0)
        assert abs(ones / len(sketch._values) - 0.3) < 0.15

    def test_summary_keys(self):
        sketch = QuantileSketch()
        sketch.extend([3, 1, 2])
        assert sketch.summary() == {
            "count": 3, "min": 1, "p50": 2, "p90": 3, "max": 3,
        }

    def test_errors(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=4)
        with pytest.raises(ValueError):
            QuantileSketch(capacity=9)  # odd: stride phase would skew
        with pytest.raises(ValueError):
            QuantileSketch().quantile(0.5)
        sketch = QuantileSketch()
        sketch.add(1)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)


class BernoulliBackend(ExecutionBackend):
    """A stub backend: trial i succeeds iff hash-free pinned RNG says so.

    The verdict for trial ``i`` is drawn from ``random.Random((seed, i))``
    — a pure function of the trial index, like the real engine's tape
    derivation — so the stream is identical however it is batched.
    """

    name = "bernoulli"

    def __init__(self, p: float, stream_seed: int) -> None:
        self.p = p
        self.stream_seed = stream_seed

    def verdict(self, trial: int) -> bool:
        return (
            random.Random(f"bern:{self.stream_seed}:{trial}").random()
            < self.p
        )

    def run(self, *args, **kwargs):  # pragma: no cover - not used
        raise NotImplementedError

    def run_trial_batch(
        self, problem, factory, algorithm, trial_indices, *,
        base_seed=0, max_volume=None, max_queries=None,
    ):
        return [
            TrialOutcome(
                trial=t, seed=base_seed + t, valid=self.verdict(t),
                max_volume=1, max_distance=1, max_queries=1, random_bits=0,
            )
            for t in trial_indices
        ]


class TestEarlyStoppingOnBernoulliStreams:
    """The stopping rule never fires outside tolerance (pinned seeds)."""

    POLICIES = [
        TrialPolicy(min_trials=8, max_trials=96, batch_size=8,
                    tolerance=0.12),
        TrialPolicy(min_trials=16, max_trials=128, batch_size=16,
                    tolerance=0.08, method="clopper-pearson"),
    ]

    @pytest.mark.parametrize("p", [0.05, 0.3, 0.5, 0.8, 0.97, 1.0])
    @pytest.mark.parametrize("policy", POLICIES, ids=["wilson", "cp"])
    def test_converged_means_inside_tolerance(self, p, policy):
        for stream_seed in range(5):
            backend = BernoulliBackend(p, stream_seed)
            result = run_trials(None, None, None, policy, backend=backend)
            if result.stopped == STOP_CONVERGED:
                assert result.trials >= policy.min_trials
                assert result.half_width() <= policy.tolerance
            else:
                assert result.stopped == STOP_BUDGET
                assert result.trials == policy.max_trials

    @pytest.mark.parametrize("p", [0.5, 0.9, 1.0])
    def test_stops_at_first_qualifying_batch_boundary(self, p):
        policy = TrialPolicy(
            min_trials=8, max_trials=96, batch_size=8, tolerance=0.12
        )
        backend = BernoulliBackend(p, stream_seed=1)
        result = run_trials(None, None, None, policy, backend=backend)
        # Replay the stream and find the first boundary where the rule
        # holds; the engine must have stopped exactly there.
        stats = SuccessStats(policy.method)
        first = None
        for trial in range(policy.max_trials):
            stats.record(backend.verdict(trial))
            boundary = (trial + 1) % policy.batch_size == 0
            if (
                boundary
                and trial + 1 >= policy.min_trials
                and stats.half_width(policy.confidence) <= policy.tolerance
            ):
                first = trial + 1
                break
        if first is None:
            assert result.stopped == STOP_BUDGET
            assert result.trials == policy.max_trials
        else:
            assert result.stopped == STOP_CONVERGED
            assert result.trials == first

    def test_verdict_stream_is_batching_invariant(self):
        backend = BernoulliBackend(0.7, stream_seed=4)
        a = TrialPolicy(min_trials=1, max_trials=40, batch_size=5,
                        early_stop=False)
        b = TrialPolicy(min_trials=1, max_trials=40, batch_size=13,
                        early_stop=False)
        ra = run_trials(None, None, None, a, backend=backend)
        rb = run_trials(None, None, None, b, backend=backend)
        assert ra.verdicts == rb.verdicts
