"""Engine behavior: policies, stopping, resume determinism, backends."""

import pickle
import random

import pytest

from repro.exec.backends import BatchBackend, SerialBackend
from repro.graphs.generators import leaf_coloring_instance
from repro.model.runner import success_probability
from repro.montecarlo.engine import (
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_FIXED,
    FixedInstanceFactory,
    MonteCarloResult,
    TrialPolicy,
    run_trials,
)
from repro.problems.leaf_coloring import LeafColoring
from repro.registry import ALGORITHMS, load_components

load_components()
PROBLEM = LeafColoring()
INSTANCE = leaf_coloring_instance(4, rng=random.Random(4))


def _walker():
    return ALGORITHMS.get("leaf-coloring/rw-to-leaf").make()


class TestTrialPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrialPolicy(min_trials=0)
        with pytest.raises(ValueError):
            TrialPolicy(min_trials=10, max_trials=5)
        with pytest.raises(ValueError):
            TrialPolicy(batch_size=0)
        with pytest.raises(ValueError):
            TrialPolicy(confidence=1.5)
        with pytest.raises(ValueError):
            TrialPolicy(tolerance=0.0)
        with pytest.raises(ValueError):
            TrialPolicy(method="wald")

    def test_fixed_helper_disables_early_stopping(self):
        policy = TrialPolicy.fixed(24)
        assert policy.max_trials == 24
        assert policy.batch_size == 24
        assert policy.early_stop is False

    def test_with_early_stop(self):
        policy = TrialPolicy.fixed(8).with_early_stop(True)
        assert policy.early_stop is True
        assert policy.max_trials == 8

    def test_describe_round_trips_as_json(self):
        import json

        described = TrialPolicy().describe()
        assert json.loads(json.dumps(described)) == described


class TestFixedCountSemantics:
    def test_matches_legacy_success_probability(self):
        """early_stop=off reproduces the legacy fixed-count estimate."""
        policy = TrialPolicy.fixed(20)
        result = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=7
        )
        legacy = success_probability(
            PROBLEM,
            FixedInstanceFactory(INSTANCE),
            _walker(),
            20,
            base_seed=7,
        )
        assert result.stopped == STOP_FIXED
        assert result.trials == 20
        assert result.rate == legacy
        assert [o.seed for o in result.outcomes] == list(range(7, 27))

    def test_batching_does_not_change_outcomes(self):
        a = run_trials(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(12), base_seed=3
        )
        b = run_trials(
            PROBLEM,
            INSTANCE,
            _walker(),
            TrialPolicy(min_trials=1, max_trials=12, batch_size=5,
                        early_stop=False),
            base_seed=3,
        )
        assert a.outcomes == b.outcomes


class TestEarlyStopping:
    def test_stops_converged_inside_tolerance(self):
        policy = TrialPolicy(
            min_trials=8, max_trials=64, batch_size=8, tolerance=0.1
        )
        result = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=7
        )
        assert result.stopped == STOP_CONVERGED
        assert result.trials < 64
        assert result.half_width() <= 0.1
        assert result.trials % 8 == 0  # stops only at batch boundaries

    def test_budget_exhaustion_reported(self):
        policy = TrialPolicy(
            min_trials=8, max_trials=8, batch_size=8, tolerance=0.0001
        )
        result = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=7
        )
        assert result.stopped == STOP_BUDGET
        assert result.trials == 8

    def test_adaptive_is_prefix_of_fixed(self):
        fixed = run_trials(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(32), base_seed=7
        )
        adaptive = run_trials(
            PROBLEM,
            INSTANCE,
            _walker(),
            TrialPolicy(min_trials=8, max_trials=32, batch_size=8,
                        tolerance=0.1),
            base_seed=7,
        )
        assert adaptive.trials <= fixed.trials
        assert adaptive.outcomes == fixed.outcomes[: adaptive.trials]


class TestResume:
    def test_resume_is_bitwise_identical(self):
        policy = TrialPolicy.fixed(24)
        full = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=7
        )
        # Interrupt after 8 trials, then resume under the same policy.
        prefix = run_trials(
            PROBLEM,
            INSTANCE,
            _walker(),
            TrialPolicy(min_trials=1, max_trials=8, batch_size=8,
                        early_stop=False),
            base_seed=7,
        )
        partial = MonteCarloResult(policy=policy, base_seed=7)
        for outcome in prefix.outcomes:
            partial.record(outcome)
        resumed = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=7,
            resume=partial,
        )
        assert resumed.outcomes == full.outcomes
        assert resumed.rate == full.rate
        assert resumed.interval() == full.interval()
        assert resumed.volume_sketch.summary() == full.volume_sketch.summary()
        assert (
            resumed.distance_sketch.summary()
            == full.distance_sketch.summary()
        )

    def test_resume_of_complete_run_is_a_no_op(self):
        policy = TrialPolicy.fixed(8)
        done = run_trials(PROBLEM, INSTANCE, _walker(), policy, base_seed=1)
        again = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=1, resume=done
        )
        assert again.outcomes == done.outcomes

    def test_resume_rejects_mismatched_policy_or_seed(self):
        policy = TrialPolicy.fixed(8)
        done = run_trials(PROBLEM, INSTANCE, _walker(), policy, base_seed=1)
        with pytest.raises(ValueError, match="same policy"):
            run_trials(
                PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(16),
                base_seed=1, resume=done,
            )
        with pytest.raises(ValueError, match="same policy"):
            run_trials(
                PROBLEM, INSTANCE, _walker(), policy, base_seed=2,
                resume=done,
            )


class TestDispatch:
    def test_instance_and_factory_entry_points_agree(self):
        policy = TrialPolicy.fixed(6)
        by_instance = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=5
        )
        by_factory = run_trials(
            PROBLEM, FixedInstanceFactory(INSTANCE), _walker(), policy,
            base_seed=5,
        )
        assert by_instance.outcomes == by_factory.outcomes

    def test_backend_string_and_instance_specs(self):
        policy = TrialPolicy.fixed(6)
        serial = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=5,
            backend=SerialBackend(),
        )
        with BatchBackend() as batch:
            batched = run_trials(
                PROBLEM, INSTANCE, _walker(), policy, base_seed=5,
                backend=batch,
            )
        reference = run_trials(
            PROBLEM, INSTANCE, _walker(), policy, base_seed=5,
            backend="reference",
        )
        assert serial.outcomes == batched.outcomes == reference.outcomes

    def test_fixed_instance_compiles_oracle_once_per_run(self, monkeypatch):
        """The streaming loop amortizes compilation across batches.

        Regression: the serial path used to wrap *each* batch in a
        transient BatchBackend, recompiling the fixed instance's oracle
        once per batch (16 times for the default policy).
        """
        import repro.exec.backends as backends

        calls = []
        real = backends.as_oracle

        def counting(instance, mode="auto"):
            calls.append(instance)
            return real(instance, mode=mode)

        monkeypatch.setattr(backends, "as_oracle", counting)
        run_trials(
            PROBLEM,
            INSTANCE,
            _walker(),
            TrialPolicy(min_trials=4, max_trials=12, batch_size=4,
                        early_stop=False),
            base_seed=1,
        )
        assert len(calls) == 1

    def test_fixed_instance_factory_pickles(self):
        factory = FixedInstanceFactory(INSTANCE)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone(0).name == INSTANCE.name

    def test_string_spec_pool_backend_is_closed(self, monkeypatch):
        """Backends built from a string spec are owned by the run."""
        import repro.exec.backends as backends

        closed = []
        original = backends.ProcessPoolBackend.close

        def counting(self):
            closed.append(self)
            original(self)

        monkeypatch.setattr(backends.ProcessPoolBackend, "close", counting)
        run_trials(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(4),
            base_seed=1, backend="process:2",
        )
        assert closed

    def test_string_spec_pool_closed_on_pre_loop_exception(
        self, monkeypatch
    ):
        """Even failures before the first batch must tear the pool down.

        A resume-validation error fires after the backend has been
        constructed but before any trial runs; the owned pool (and any
        shared-memory segment it published) must still be closed.
        """
        import repro.exec.backends as backends

        closed = []
        original = backends.ProcessPoolBackend.close

        def counting(self):
            closed.append(self)
            original(self)

        monkeypatch.setattr(backends.ProcessPoolBackend, "close", counting)
        stale = run_trials(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(4), base_seed=1
        )
        closed.clear()
        with pytest.raises(ValueError, match="resume"):
            run_trials(
                PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(4),
                base_seed=2, backend="process:2", resume=stale,
            )
        assert closed

    def test_progress_lines(self):
        lines = []
        run_trials(
            PROBLEM, INSTANCE, _walker(),
            TrialPolicy(min_trials=4, max_trials=8, batch_size=4,
                        early_stop=False),
            base_seed=1, progress=lines.append,
        )
        assert len(lines) == 2
        assert "trials=4" in lines[0]
        assert "ci=" in lines[1]

    def test_estimate_success_probability_defaults(self):
        from repro.montecarlo.engine import estimate_success_probability

        result = estimate_success_probability(
            PROBLEM, INSTANCE, _walker(), base_seed=7
        )
        assert result.policy == TrialPolicy()
        assert result.trials >= TrialPolicy().min_trials
        explicit = estimate_success_probability(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(4), base_seed=7
        )
        assert explicit.trials == 4

    def test_payload_shape(self):
        result = run_trials(
            PROBLEM, INSTANCE, _walker(), TrialPolicy.fixed(4), base_seed=1
        )
        payload = result.to_payload()
        assert payload["trials"] == 4
        assert 0.0 <= payload["ci_low"] <= payload["rate"]
        assert payload["rate"] <= payload["ci_high"] <= 1.0
        assert payload["stopped"] == STOP_FIXED
        assert set(payload["volume"]) == {"count", "min", "p50", "p90", "max"}
