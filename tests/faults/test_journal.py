"""Crash-safe journals: durability, torn tails, and exact resume.

The contract under test: a run interrupted at *any* byte boundary
resumes from its journal and produces a result bitwise identical to the
uninterrupted run — completed trials replay from disk instead of
re-executing, torn tails are truncated (never welded onto), and a
journal bound to a different spec is refused loudly.
"""

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algorithms.leaf_coloring_algs import RWtoLeaf
from repro.exec.sweep import (
    InstanceFamily,
    SweepSpec,
    open_sweep_journal,
    run_sweeps,
    sweep_journal_key,
)
from repro.faults.journal import (
    MAGIC,
    Journal,
    JournalError,
    JournalKeyError,
)
from repro.graphs.generators import leaf_coloring_instance
from repro.montecarlo.engine import (
    TrialPolicy,
    run_trials,
    trial_journal_key,
)
from repro.problems.leaf_coloring import LeafColoring


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, "k1", meta={"x": 1}) as jour:
            jour.append({"kind": "trial", "trial": 0})
            jour.append_many(
                [{"kind": "trial", "trial": i} for i in (1, 2)]
            )
        reopened = Journal(path, "k1")
        assert [r["trial"] for r in reopened.records] == [0, 1, 2]
        reopened.close()

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path, "k1").close()
        Journal(path, "k1").close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["journal"] == MAGIC

    def test_key_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path, "k1").close()
        with pytest.raises(JournalKeyError):
            Journal(path, "k2")

    def test_torn_tail_truncated_then_appendable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, "k1") as jour:
            jour.append({"kind": "trial", "trial": 0})
            jour.append({"kind": "trial", "trial": 1})
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "trial", "tri')  # crash mid-write
        jour = Journal(path, "k1")
        assert [r["trial"] for r in jour.records] == [0, 1]
        assert path.stat().st_size == intact_size  # tail physically gone
        jour.append({"kind": "trial", "trial": 2})
        jour.close()
        final = Journal(path, "k1")
        assert [r["trial"] for r in final.records] == [0, 1, 2]
        final.close()

    def test_mid_file_corruption_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, "k1") as jour:
            jour.append({"kind": "trial", "trial": 0})
        raw = path.read_bytes().replace(b'"trial": 0', b"garbage!!!")
        path.write_bytes(raw + b'{"kind": "trial", "trial": 1}\n')
        with pytest.raises(JournalError):
            Journal(path, "k1")

    def test_close_idempotent(self, tmp_path):
        jour = Journal(tmp_path / "j.jsonl", "k1")
        jour.close()
        jour.close()


def _instance():
    return leaf_coloring_instance(3, rng=random.Random(5))


POLICY = TrialPolicy(
    min_trials=8, max_trials=24, batch_size=8, early_stop=False
)


def _run(journal=None, resume=None, policy=POLICY):
    return run_trials(
        LeafColoring(),
        _instance(),
        RWtoLeaf(),
        policy,
        base_seed=17,
        journal=journal,
        resume=resume,
    )


class TestTrialJournal:
    def test_key_binds_full_spec(self):
        key1, meta = trial_journal_key(
            LeafColoring(), _instance(), RWtoLeaf(), POLICY, 17, None, None
        )
        key2, _ = trial_journal_key(
            LeafColoring(), _instance(), RWtoLeaf(), POLICY, 18, None, None
        )
        assert key1 != key2  # base_seed is part of the identity
        assert meta["base_seed"] == 17

    def test_journaled_equals_plain(self, tmp_path):
        plain = _run()
        journaled = _run(journal=tmp_path / "mc.jsonl")
        assert journaled.outcomes == plain.outcomes
        assert journaled.rate == plain.rate

    def test_resume_replays_instead_of_rerunning(self, tmp_path):
        path = tmp_path / "mc.jsonl"
        full = _run(journal=path)
        before = path.stat().st_size
        again = _run(journal=path)
        # Nothing re-executed → nothing re-journaled.
        assert path.stat().st_size == before
        assert again.outcomes == full.outcomes

    def test_resume_after_partial_run(self, tmp_path):
        path = tmp_path / "mc.jsonl"
        full = _run(journal=path)
        # Simulate a crash after the first batch: keep the header plus
        # 8 trial records, drop the rest (exactly what a dead process
        # leaves behind — every completed batch was fsynced).
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:9]))
        key, _ = trial_journal_key(
            LeafColoring(), _instance(), RWtoLeaf(), POLICY, 17, None, None
        )
        probe = Journal(path, key)
        assert len(probe.records) == 8
        probe.close()
        # Resuming completes the remaining trials and the union is
        # bitwise identical to the uninterrupted run.
        resumed = _run(journal=path)
        assert resumed.outcomes == full.outcomes

    def test_journal_and_resume_are_exclusive(self, tmp_path):
        partial = _run()
        with pytest.raises(ValueError):
            _run(journal=tmp_path / "mc.jsonl", resume=partial)

    def test_wrong_spec_refused(self, tmp_path):
        path = tmp_path / "mc.jsonl"
        _run(journal=path)
        with pytest.raises(JournalKeyError):
            run_trials(
                LeafColoring(),
                _instance(),
                RWtoLeaf(),
                POLICY,
                base_seed=99,  # different spec, same file
                journal=path,
            )


_KILL_SCRIPT = """
import os, random, sys
from repro.algorithms.leaf_coloring_algs import RWtoLeaf
from repro.exec.backends import BatchBackend
from repro.graphs.generators import leaf_coloring_instance
from repro.montecarlo.engine import TrialPolicy, run_trials
from repro.problems.leaf_coloring import LeafColoring

class DyingBackend(BatchBackend):
    batches = 0
    def run_trial_batch(self, *args, **kwargs):
        if DyingBackend.batches == 2:
            os._exit(9)  # SIGKILL-grade: no atexit, no finally, no flush
        DyingBackend.batches += 1
        return super().run_trial_batch(*args, **kwargs)

policy = TrialPolicy(min_trials=8, max_trials=24, batch_size=8,
                     early_stop=False)
run_trials(
    LeafColoring(),
    leaf_coloring_instance(3, rng=random.Random(5)),
    RWtoLeaf(),
    policy,
    base_seed=17,
    backend=DyingBackend(),
    journal=sys.argv[1],
)
"""


@pytest.mark.slow
class TestKillMinusNine:
    def test_resume_survives_hard_kill(self, tmp_path):
        """kill -9 mid-run → resume → bitwise-identical final result."""
        path = tmp_path / "mc.jsonl"
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT, str(path)],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 9, proc.stderr.decode()
        resumed = _run(journal=path)
        baseline = _run()
        assert resumed.outcomes == baseline.outcomes
        assert resumed.trials == baseline.trials


def _leaf_family():
    return InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        (3, 4),
    )


def _specs():
    return [
        SweepSpec(
            "leaf-volume",
            "Θ(n)",
            _leaf_family(),
            metric="volume",
            algorithm_factory=RWtoLeaf,
            seed=3,
        )
    ]


class TestSweepJournal:
    def test_points_restored_not_remeasured(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = run_sweeps(_specs(), journal=path)
        lines_after_first = path.read_text().count("\n")
        progress = []
        second = run_sweeps(_specs(), journal=path, progress=progress.append)
        assert path.read_text().count("\n") == lines_after_first
        assert any("journal" in line for line in progress)
        assert [p.cost for p in second[0].points] == [
            p.cost for p in first[0].points
        ]

    def test_key_rejects_different_batch(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_sweeps(_specs(), journal=path)
        other = [
            SweepSpec(
                "leaf-volume",
                "Θ(n)",
                _leaf_family(),
                metric="volume",
                algorithm_factory=RWtoLeaf,
                seed=4,  # different seed → different cache_key
            )
        ]
        assert sweep_journal_key(other) != sweep_journal_key(_specs())
        with pytest.raises(JournalKeyError):
            run_sweeps(other, journal=path)

    def test_open_sweep_journal_meta(self, tmp_path):
        specs = _specs()
        jour = open_sweep_journal(tmp_path / "sweep.jsonl", specs)
        jour.close()
        header = json.loads(
            (tmp_path / "sweep.jsonl").read_text().splitlines()[0]
        )
        assert header["meta"]["sweeps"][0]["label"] == "leaf-volume"
