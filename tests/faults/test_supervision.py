"""Supervised dispatch: every injected failure mode must heal bitwise.

Chunk outcomes are pure functions of ``(chunk, seed)`` (per-node tapes
seeded from the node id), so supervision is purely a dispatch problem:
whatever the fault plan kills, delays, corrupts, or degrades, the
surviving result must equal the fault-free serial run *bit for bit*.
Also covers the shared-memory hardening and the BatchBackend true-LRU
oracle cache (the satellite regressions of the same PR).
"""

import random
import warnings

import pytest

from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    RWtoLeaf,
)
from repro.exec import shm as shm_layer
from repro.exec import backends as backends_module
from repro.exec.backends import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.graphs.generators import leaf_coloring_instance
from repro.model.probe import ProbeAlgorithm
from repro.model.runner import run_algorithm, success_probability
from repro.problems.leaf_coloring import LeafColoring


def _instance(depth=4, seed=3):
    return leaf_coloring_instance(depth, rng=random.Random(seed))


def _fixed_instance(trial):
    return _instance(depth=3)


def _pool(plan, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("chunk_size", 2)
    kwargs.setdefault(
        "retry", RetryPolicy(base_delay=0.01, max_delay=0.05)
    )
    if plan is not None:
        kwargs.setdefault(
            "fault_injector", FaultInjector(plan)
        )
    return ProcessPoolBackend(**kwargs)


def assert_bitwise_equal(a, b):
    assert a.outputs == b.outputs
    assert a.profiles == b.profiles


class TestFaultRecovery:
    @pytest.mark.parametrize(
        "kind",
        ["kill-worker", "corrupt-payload", "transient-oserror"],
    )
    def test_single_kind_recovers_bitwise(self, kind):
        instance = _instance()
        serial = run_algorithm(instance, RWtoLeaf(), seed=11)
        plan = FaultPlan(
            seed=1, kinds=(kind,), rate=1.0, max_faults=2, max_attempt=0
        )
        pool = _pool(plan)
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=11, backend=pool
            )
        finally:
            pool.close()
        assert len(pool.fault_log) > 0
        assert_bitwise_equal(serial, chaotic)

    def test_shm_attach_fail_degrades_to_pickle(self):
        instance = _instance()
        serial = run_algorithm(instance, RWtoLeaf(), seed=7)
        plan = FaultPlan(
            seed=2,
            kinds=("shm-attach-fail",),
            rate=1.0,
            max_faults=2,
            max_attempt=0,
        )
        pool = _pool(plan, shared_memory=True)
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=7, backend=pool
            )
        finally:
            pool.close()
        assert_bitwise_equal(serial, chaotic)
        actions = [e.action for e in pool.fault_log]
        assert "degrade:pickle" in actions

    def test_shm_publish_fail_falls_back_to_pickle(self):
        instance = _instance()
        serial = run_algorithm(instance, RWtoLeaf(), seed=7)
        plan = FaultPlan(
            seed=2, kinds=("shm-publish-fail",), rate=1.0, max_faults=1
        )
        pool = _pool(plan, shared_memory=True)
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=7, backend=pool
            )
        finally:
            pool.close()
        assert_bitwise_equal(serial, chaotic)
        kinds = [e.kind for e in pool.fault_log]
        assert "shm-publish" in kinds
        assert shm_layer.published_segments() == []

    def test_delay_chunk_hits_timeout_then_recovers(self):
        instance = _instance(depth=3)
        serial = run_algorithm(instance, RWtoLeaf(), seed=5)
        plan = FaultPlan(
            seed=4,
            kinds=("delay-chunk",),
            rate=1.0,
            max_faults=1,
            delay_s=1.0,
            max_attempt=0,
        )
        pool = _pool(plan, timeout=0.2)
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=5, backend=pool
            )
        finally:
            pool.close()
        assert_bitwise_equal(serial, chaotic)
        assert "timeout" in pool.fault_log.counts()

    def test_degradation_chain_exhausts_to_serial(self):
        # Budget far above the retry allowance: the chunks must walk the
        # whole shm -> pickle -> serial chain and still come back equal.
        instance = _instance(depth=3)
        serial = run_algorithm(instance, RWtoLeaf(), seed=13)
        plan = FaultPlan(
            seed=6,
            kinds=("kill-worker",),
            rate=1.0,
            max_faults=30,
            max_attempt=10,
        )
        pool = _pool(
            plan,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.02
            ),
        )
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=13, backend=pool
            )
        finally:
            pool.close()
        assert_bitwise_equal(serial, chaotic)
        actions = {e.action for e in pool.fault_log}
        assert "degrade:serial" in actions

    def test_fault_log_rides_on_result(self):
        instance = _instance(depth=3)
        plan = FaultPlan(
            seed=1, kinds=("kill-worker",), rate=1.0, max_faults=1,
            max_attempt=0,
        )
        pool = _pool(plan)
        try:
            chaotic = run_algorithm(
                instance, RWtoLeaf(), seed=3, backend=pool
            )
        finally:
            pool.close()
        assert chaotic.fault_log is not None
        assert len(chaotic.fault_log) > 0
        # Equality ignores the log: a recovered run IS the clean run.
        clean = run_algorithm(instance, RWtoLeaf(), seed=3)
        assert clean.fault_log is None
        assert clean == chaotic

    def test_no_faults_no_log(self):
        instance = _instance(depth=3)
        pool = _pool(None)
        try:
            result = run_algorithm(
                instance, RWtoLeaf(), seed=3, backend=pool
            )
        finally:
            pool.close()
        assert result.fault_log is None
        assert len(pool.fault_log) == 0

    def test_trial_batches_recover_bitwise(self):
        problem = LeafColoring()
        reference = success_probability(
            problem, _fixed_instance, RWtoLeaf(), trials=8, base_seed=2
        )
        plan = FaultPlan(
            seed=3,
            kinds=("kill-worker", "transient-oserror"),
            rate=1.0,
            max_faults=2,
            max_attempt=0,
        )
        pool = _pool(plan)
        try:
            chaotic = success_probability(
                problem, _fixed_instance, RWtoLeaf(), trials=8, base_seed=2,
                backend=pool,
            )
        finally:
            pool.close()
        assert len(pool.fault_log) > 0
        assert chaotic == reference

    def test_unsupervised_mode_still_works(self):
        instance = _instance(depth=3)
        serial = run_algorithm(instance, RWtoLeaf(), seed=9)
        pool = ProcessPoolBackend(
            workers=2, chunk_size=4, supervised=False
        )
        try:
            parallel = run_algorithm(
                instance, RWtoLeaf(), seed=9, backend=pool
            )
        finally:
            pool.close()
        assert_bitwise_equal(serial, parallel)

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(timeout=0.0)


class _AlwaysRaises(ProbeAlgorithm):
    name = "test/always-raises"

    def run(self, view):
        raise ZeroDivisionError("application bug, not infrastructure")


class TestApplicationErrors:
    def test_app_error_surfaces_real_exception(self):
        """Worker app errors degrade to serial, which reproduces them.

        The supervisor must not burn the whole retry/degradation budget
        on a deterministic application bug, and the caller must see the
        *real* traceback, not a BrokenProcessPool shell.
        """
        instance = _instance(depth=3)
        pool = _pool(None)
        try:
            with pytest.raises(ZeroDivisionError, match="application bug"):
                run_algorithm(
                    instance, _AlwaysRaises(), seed=1, backend=pool
                )
        finally:
            pool.close()
        counts = pool.fault_log.counts()
        assert counts.get("chunk-error", 0) > 0
        assert "degrade:serial" in {e.action for e in pool.fault_log}


class TestShmHardening:
    def test_attachment_close_idempotent(self):
        handle = shm_layer.publish_instance(_instance(depth=3))
        try:
            attachment = shm_layer.attach_instance(handle)
            attachment.close()
            attachment.close()  # second close must be a no-op
        finally:
            shm_layer.unpublish(handle)
        assert handle.name not in shm_layer.published_segments()

    def test_unpublish_all_idempotent(self):
        shm_layer.publish_instance(_instance(depth=3))
        shm_layer.unpublish_all()
        shm_layer.unpublish_all()
        assert shm_layer.published_segments() == []

    def test_unavailable_shm_is_a_publish_error(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(
            shm_layer.shared_memory, "SharedMemory", refuse
        )
        with pytest.raises(shm_layer.ShmPublishError, match="cannot create"):
            shm_layer.publish_instance(_instance(depth=3))

    def test_backend_warns_once_then_runs_on_pickle(self, monkeypatch):
        def refuse(instance):
            raise shm_layer.ShmPublishError("injected: shm exhausted")

        monkeypatch.setattr(backends_module.shm_layer, "publish_instance", refuse)
        monkeypatch.setattr(backends_module, "_SHM_FALLBACK_WARNED", False)
        instance = _instance(depth=3)
        serial = run_algorithm(instance, RWtoLeaf(), seed=21)
        pool = ProcessPoolBackend(workers=2, chunk_size=4)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = run_algorithm(
                    instance, RWtoLeaf(), seed=21, backend=pool
                )
                second = run_algorithm(
                    instance, RWtoLeaf(), seed=21, backend=pool
                )
        finally:
            pool.close()
        assert_bitwise_equal(serial, first)
        assert_bitwise_equal(serial, second)
        relevant = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(relevant) == 1  # actionable, and said exactly once


class TestBatchBackendLRU:
    def test_eviction_is_least_recently_used(self):
        backend = BatchBackend(max_cached=2)
        a, b, c = (_instance(depth=3, seed=s) for s in (1, 2, 3))
        oracle_a = backend._oracle_for(a)
        backend._oracle_for(b)
        # Touch a: it becomes most-recently used, so adding c must evict
        # b (insertion-order caching would wrongly evict a here).
        assert backend._oracle_for(a) is oracle_a
        backend._oracle_for(c)
        assert backend._oracle_for(a) is oracle_a  # still cached
        assert len(backend._oracles) == 2
        assert id(b) not in backend._oracles  # b was the LRU victim

    def test_capacity_one(self):
        backend = BatchBackend(max_cached=1)
        a, b = (_instance(depth=3, seed=s) for s in (1, 2))
        oracle_a = backend._oracle_for(a)
        assert backend._oracle_for(a) is oracle_a
        backend._oracle_for(b)
        assert len(backend._oracles) == 1
        assert backend._oracle_for(a) is not oracle_a  # rebuilt

    def test_hit_equivalence_with_solver(self):
        # The cache must be invisible to results: repeated runs on the
        # same instance return bitwise-identical outputs.
        backend = BatchBackend(max_cached=2)
        instance = _instance(depth=4)
        first = run_algorithm(
            instance, LeafColoringDistanceSolver(), backend=backend
        )
        second = run_algorithm(
            instance, LeafColoringDistanceSolver(), backend=backend
        )
        assert first.outputs == second.outputs
        assert len(backend._oracles) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchBackend(max_cached=0)
