"""Fault plans, injector budget, retry backoff, and the fault log.

The load-bearing property: a :class:`FaultPlan` is a *pure value*.
``draw(scope, unit, attempt)`` depends only on its arguments and the
plan fields — never on wall clock, call order, or process identity — so
a failing chaos seed replays the exact same fault schedule anywhere.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import (
    FAULT_KINDS,
    WORKER_KINDS,
    FaultDirective,
    FaultInjector,
    FaultPlan,
    ShmAttachError,
    apply_directive,
    faulted_worker,
    wrap_payload,
)
from repro.faults.retry import FaultEvent, FaultLog, RetryPolicy


class TestFaultPlan:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        unit=st.integers(min_value=-1, max_value=64),
        attempt=st.integers(min_value=0, max_value=2),
    )
    def test_draw_is_pure(self, seed, unit, attempt):
        plan = FaultPlan(seed=seed, rate=0.5)
        first = plan.draw("run:1", unit, attempt)
        # A fresh, field-identical plan gives the same answer — no
        # hidden state accumulates across draws.
        again = FaultPlan(seed=seed, rate=0.5).draw("run:1", unit, attempt)
        assert first == again
        assert first is None or first in FAULT_KINDS

    def test_draw_independent_of_query_order(self):
        plan = FaultPlan(seed=7, rate=0.9)
        coords = [("run:1", u, a) for u in range(8) for a in range(3)]
        forward = [plan.draw(*c) for c in coords]
        backward = [plan.draw(*c) for c in reversed(coords)]
        assert forward == list(reversed(backward))

    def test_rate_bounds(self):
        never = FaultPlan(seed=1, rate=0.0)
        always = FaultPlan(seed=1, rate=1.0)
        for unit in range(32):
            assert never.draw("s", unit, 0) is None
            assert always.draw("s", unit, 0) in FAULT_KINDS

    def test_max_attempt_silences_late_retries(self):
        plan = FaultPlan(seed=3, rate=1.0, max_attempt=1)
        assert plan.draw("s", 0, 1) in FAULT_KINDS
        assert plan.draw("s", 0, 2) is None

    def test_scope_and_seed_decorrelate_schedules(self):
        # Not a proof, but across 64 units two schedules that agreed
        # everywhere would mean the coordinates are being ignored.
        a = [FaultPlan(seed=5, rate=0.5).draw("run:1", u, 0) for u in range(64)]
        b = [FaultPlan(seed=6, rate=0.5).draw("run:1", u, 0) for u in range(64)]
        c = [FaultPlan(seed=5, rate=0.5).draw("run:2", u, 0) for u in range(64)]
        assert a != b
        assert a != c

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kinds": ()},
            {"kinds": ("segfault",)},
            {"rate": -0.1},
            {"rate": 1.5},
            {"max_faults": -1},
            {"delay_s": -1.0},
            {"max_attempt": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_describe_round_trips(self):
        plan = FaultPlan(seed=9, rate=0.75, max_faults=2)
        desc = plan.describe()
        assert FaultPlan(
            seed=desc["seed"],
            kinds=tuple(desc["kinds"]),
            rate=desc["rate"],
            max_faults=desc["max_faults"],
            delay_s=desc["delay_s"],
            max_attempt=desc["max_attempt"],
        ) == plan


class TestFaultInjector:
    def test_budget_consumed_in_query_order(self):
        plan = FaultPlan(seed=2, rate=1.0, max_faults=3)
        injector = FaultInjector(plan)
        fired = [injector.fault_for("s", u, 0) for u in range(10)]
        assert [f is not None for f in fired] == [True] * 3 + [False] * 7
        assert injector.remaining == 0
        assert [(f.scope, f.unit, f.attempt) for f in injector.fired] == [
            ("s", 0, 0),
            ("s", 1, 0),
            ("s", 2, 0),
        ]

    def test_allowed_filter_preserves_budget(self):
        plan = FaultPlan(seed=2, rate=1.0, max_faults=2)
        injector = FaultInjector(plan)
        # Filtering everything out must not consume the budget...
        for unit in range(5):
            assert injector.fault_for("s", unit, 0, allowed=()) is None
        assert injector.remaining == 2
        # ...so the unfiltered queries still get their faults.
        assert injector.fault_for("s", 0, 0) is not None

    def test_zero_budget_never_fires(self):
        injector = FaultInjector(FaultPlan(seed=2, rate=1.0, max_faults=0))
        assert injector.fault_for("s", 0, 0) is None
        assert injector.fired == []


def _echo_worker(payload):
    return pickle.loads(payload)


class TestWorkerDirectives:
    def test_corrupt_payload_truncates(self):
        plan = FaultPlan(seed=0)
        payload = pickle.dumps(list(range(100)))
        worker, mangled = wrap_payload("corrupt-payload", plan, _echo_worker, payload)
        assert worker is _echo_worker
        assert len(mangled) < len(payload)
        with pytest.raises(Exception):  # UnpicklingError / EOFError
            pickle.loads(mangled)

    def test_noop_kind_passes_through(self):
        plan = FaultPlan(seed=0)
        payload = pickle.dumps("x")
        assert wrap_payload("no-such-kind", plan, _echo_worker, payload) == (
            _echo_worker,
            payload,
        )

    def test_delay_directive_then_identical_result(self):
        plan = FaultPlan(seed=0, delay_s=0.0)
        payload = pickle.dumps([1, 2, 3])
        worker, wrapped = wrap_payload("delay-chunk", plan, _echo_worker, payload)
        assert worker is faulted_worker
        assert worker(wrapped) == [1, 2, 3]

    def test_transient_oserror_directive(self):
        plan = FaultPlan(seed=0)
        worker, wrapped = wrap_payload(
            "transient-oserror", plan, _echo_worker, pickle.dumps("x")
        )
        with pytest.raises(OSError):
            worker(wrapped)

    def test_shm_attach_directive(self):
        with pytest.raises(ShmAttachError):
            apply_directive(FaultDirective("shm-attach-fail"))

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError):
            apply_directive(FaultDirective("segfault"))

    def test_worker_kinds_are_fault_kinds(self):
        assert set(WORKER_KINDS) <= set(FAULT_KINDS)
        assert "corrupt-payload" in FAULT_KINDS


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay("0:run:1:3", 2) == policy.delay("0:run:1:3", 2)

    @settings(max_examples=25, deadline=None)
    @given(attempt=st.integers(min_value=0, max_value=10))
    def test_delay_within_jittered_envelope(self, attempt):
        policy = RetryPolicy(
            base_delay=0.05, backoff=2.0, max_delay=2.0, jitter=0.5
        )
        raw = min(2.0, 0.05 * 2.0**attempt)
        d = policy.delay("k", attempt)
        assert raw * 0.5 <= d <= raw

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, backoff=3.0, jitter=0.0)
        assert policy.delay("k", 0) == 0.1
        assert policy.delay("k", 1) == pytest.approx(0.3)
        assert policy.delay("k", 10) == policy.max_delay

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"app_attempts": 0},
            {"base_delay": -1.0},
            {"backoff": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultLog:
    def test_record_since_counts(self):
        log = FaultLog()
        assert not log
        log.record(FaultEvent("worker-crash", "run:1", 0, 0, "retry"))
        mark = len(log)
        log.record(FaultEvent("timeout", "run:1", 1, 0, "retry"))
        log.record(FaultEvent("timeout", "run:1", 1, 1, "degrade:pickle"))
        assert len(log) == 3
        tail = log.since(mark)
        assert len(tail) == 2
        assert all(e.kind == "timeout" for e in tail)
        assert log.counts() == {"timeout": 2, "worker-crash": 1}
        assert "timeout x2" in log.summary()

    def test_event_payload(self):
        event = FaultEvent("timeout", "run:1", 3, 1, "retry", detail="5s")
        payload = event.to_payload()
        assert payload["kind"] == "timeout"
        assert payload["unit"] == 3
        assert payload["action"] == "retry"
        assert payload["detail"] == "5s"
