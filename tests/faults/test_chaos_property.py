"""Property suite: *every* seeded fault plan must leave no trace.

Hypothesis drives fault plans (seed x rate x budget x kind subsets)
across transports, registry cells, and workload shapes; the invariants
are always the same three:

1. the chaotic result is bitwise equal to the fault-free serial run,
2. ``/dev/shm`` is exactly as clean after the run as before it,
3. a journal cut at any record boundary resumes to the identical result.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.leaf_coloring_algs import RWtoLeaf
from repro.faults.chaos import run_chaos, shm_entries
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.graphs.generators import leaf_coloring_instance
from repro.montecarlo.engine import TrialPolicy, run_trials
from repro.problems.leaf_coloring import LeafColoring
from repro.cli import resolve_cell
from repro.registry import load_components

SPEED = {"delay_s": 0.05}  # keep delay-chunk faults fast under test


def _instance():
    return leaf_coloring_instance(3, rng=random.Random(5))


def _plan_strategy():
    kinds = st.sampled_from(
        [
            FAULT_KINDS,
            ("kill-worker", "corrupt-payload"),
            ("transient-oserror", "delay-chunk"),
            ("shm-attach-fail", "shm-publish-fail", "kill-worker"),
        ]
    )
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=10_000),
        kinds=kinds,
        rate=st.sampled_from([0.3, 0.6, 1.0]),
        max_faults=st.integers(min_value=0, max_value=4),
        delay_s=st.just(SPEED["delay_s"]),
        max_attempt=st.integers(min_value=0, max_value=2),
    )


class TestChaosInvariants:
    @settings(max_examples=8, deadline=None)
    @given(plan=_plan_strategy(), transport=st.sampled_from(["shm", "pickle"]))
    def test_whole_instance_runs_survive_any_plan(self, plan, transport):
        report = run_chaos(
            LeafColoring(),
            _instance(),
            RWtoLeaf(),
            plan=plan,
            workers=2,
            transport=transport,
            seed=11,
            chunk_size=2,
        )
        assert report.ok, report.format_line()
        assert report.leaked == []

    @settings(max_examples=5, deadline=None)
    @given(plan=_plan_strategy())
    def test_trial_batches_survive_any_plan(self, plan):
        report = run_chaos(
            LeafColoring(),
            _instance(),
            RWtoLeaf(),
            plan=plan,
            workers=2,
            transport="shm",
            seed=11,
            trials=8,
            chunk_size=2,
        )
        assert report.ok, report.format_line()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_registry_cells_survive(self, seed):
        load_components()
        for algo in ("leaf-coloring/distance", "leaf-coloring/rw-to-leaf"):
            problem, algorithm, family = resolve_cell(algo)
            report = run_chaos(
                problem.make(),
                family.instance(family.quick[0]),
                algorithm.make(),
                plan=FaultPlan(
                    seed=seed, rate=0.6, max_faults=3, **SPEED
                ),
                workers=2,
                transport="shm",
                chunk_size=2,
            )
            assert report.ok, report.format_line()

    def test_shm_is_clean_right_now(self):
        # A tripwire for leaks from *other* tests in this suite: by the
        # time this module runs nothing should be published.
        from repro.exec.shm import published_segments

        assert published_segments() == []
        assert isinstance(shm_entries(), set)


POLICY = TrialPolicy(
    min_trials=8, max_trials=24, batch_size=8, early_stop=False
)


def _trials(journal=None):
    return run_trials(
        LeafColoring(),
        _instance(),
        RWtoLeaf(),
        POLICY,
        base_seed=17,
        journal=journal,
    )


@pytest.fixture(scope="module")
def journal_lines(tmp_path_factory):
    """Header + 24 fsynced trial records from one complete run."""
    path = tmp_path_factory.mktemp("baseline") / "mc.jsonl"
    _trials(journal=path)
    return path.read_text().splitlines(keepends=True)


@pytest.fixture(scope="module")
def baseline():
    return _trials()


class TestJournalCutProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.integers(min_value=0, max_value=24))
    def test_resume_from_any_record_boundary(
        self, tmp_path, journal_lines, baseline, cut
    ):
        """A crash after any fsynced record resumes bitwise-identically.

        ``cut`` keeps the header plus the first ``cut`` trial records —
        exactly the on-disk state a kill -9 leaves after that many
        durable appends (every earlier line is intact by append order).
        """
        path = tmp_path / f"cut-{cut}.jsonl"
        path.write_text("".join(journal_lines[: 1 + cut]))
        resumed = _trials(journal=path)
        assert resumed.outcomes == baseline.outcomes
        assert resumed.rate == baseline.rate

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        cut=st.integers(min_value=0, max_value=23),
        torn=st.integers(min_value=1, max_value=40),
    )
    def test_resume_past_a_torn_tail(
        self, tmp_path, journal_lines, baseline, cut, torn
    ):
        """Same property with a torn partial record after the cut."""
        path = tmp_path / f"torn-{cut}-{torn}.jsonl"
        tail = journal_lines[1 + cut].rstrip("\n")[:torn]
        path.write_text("".join(journal_lines[: 1 + cut]) + tail)
        resumed = _trials(journal=path)
        assert resumed.outcomes == baseline.outcomes
