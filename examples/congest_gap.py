"""Example 7.6 and Observation 7.4: volume vs CONGEST, both directions.

* The relay graph (two trees, one bridge): O(log n) probes, Ω(n/B)
  CONGEST rounds — every input bit must cross one edge.
* BalancedTree: O(log n) CONGEST rounds (flood the defects), but Θ(n)
  probe volume (Proposition 4.9) — the exponential gap the other way.

Run:  python examples/congest_gap.py
"""

import math
import random

from repro.algorithms.balanced_tree_algs import BalancedTreeCongestFlood
from repro.algorithms.classic_algs import RelayCongest, RelayProbeSolver
from repro.graphs.generators import balanced_tree_instance, relay_instance
from repro.model.congest import run_congest
from repro.model.runner import run_algorithm
from repro.problems.balanced_tree import BalancedTree


def main() -> None:
    print("=== Example 7.6: the relay graph ===")
    depth = 5
    inst = relay_instance(depth, rng=random.Random(1))
    n = inst.graph.num_nodes
    id_bits = math.ceil(math.log2(n + 1))
    bandwidth = 2 * (id_bits + 1)

    probe = run_algorithm(inst, RelayProbeSolver(),
                          nodes=inst.meta["left_leaves"])
    left = set(inst.meta["left_leaves"])
    congest = run_congest(
        inst,
        RelayCongest(depth, id_bits, bandwidth),
        bandwidth=bandwidth,
        max_rounds=64 * 2**depth,
        done_predicate=lambda outs: all(outs[v] is not None for v in left),
    )
    print(f"n = {n}, bandwidth B = {bandwidth} bits")
    print(f"probe model:   max volume {probe.max_volume} (O(log n))")
    print(f"CONGEST model: {congest.rounds} rounds, "
          f"{congest.total_bits} total bits (Ω(n/B))")

    print()
    print("=== Observation 7.4: BalancedTree ===")
    bt = balanced_tree_instance(6, rng=random.Random(2))
    bt_bits = max(4, math.ceil(math.log2(bt.graph.num_nodes + 1)))
    flood = run_congest(
        bt,
        BalancedTreeCongestFlood(id_bits=bt_bits),
        bandwidth=16 * bt_bits + 80,
        max_rounds=4 * bt_bits + 16,
    )
    assert BalancedTree().validate(bt, flood.outputs) == []
    print(f"n = {bt.graph.num_nodes}")
    print(f"CONGEST: solved and verified in {flood.rounds} rounds (O(log n))")
    print(f"probe model: volume Θ(n) is unavoidable (Prop 4.9 via "
          f"disjointness)")


if __name__ == "__main__":
    main()
