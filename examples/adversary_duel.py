"""Watch the lower-bound adversaries defeat deterministic algorithms.

Two duels from the paper, now running on the unified interactive-adversary
engine (`repro.adversary`): every oracle answer is recorded into a
transcript that replays bitwise-identically against the finished
instance — the proof that the adversary never contradicted itself.

* Proposition 3.13 — the lazy-tree process vs a budgeted LeafColoring
  solver: the adversary colors the leaves *after* seeing the output.
* Proposition 5.20 — the phased process vs RecursiveHTHC(2), with the
  phase log showing the exemption-chasing binary searches.

Run:  python examples/adversary_duel.py
(Or from the CLI:  repro adversary run prop313/leaf-coloring)
"""

from repro.adversary.hierarchical import duel_hierarchical
from repro.adversary.leaf_coloring import duel_leaf_coloring
from repro.algorithms.hierarchical_algs import RecursiveHTHC
from repro.lower_bounds.yao_experiments import HorizonLimitedLeafColoring
from repro.model.implicit import as_oracle


def main() -> None:
    print("=== Proposition 3.13: LeafColoring, D-VOL = Ω(n) ===")
    algorithm = HorizonLimitedLeafColoring(horizon=3)
    outcome = duel_leaf_coloring(algorithm, n=300)
    print(f"algorithm: {algorithm.name}")
    print(f"queries used: {outcome.queries_used} (budget n/3 - 1 = 99)")
    print(f"root answered: {outcome.root_output!r}; adversary colored all "
          f"leaves {outcome.instance.meta['chi1']!r}")
    print(f"defeated: {outcome.defeated}")
    print(f"final instance size: {outcome.instance.graph.num_nodes}")
    divergences = outcome.transcript.replay(as_oracle(outcome.instance))
    print(f"transcript: {len(outcome.transcript)} events, "
          f"{len(divergences)} divergences on compiled replay")

    print()
    print("=== Proposition 5.20: Hierarchical-THC(2), D-VOL = Ω̃(n) ===")
    outcome2 = duel_hierarchical(RecursiveHTHC(2), k=2, volume_budget=50)
    for line in outcome2.phase_log:
        print(f"  {line}")
    print(f"defeated: {outcome2.defeated} "
          f"(n = {outcome2.instance.graph.num_nodes}, "
          f"{len(outcome2.transcript)} transcript events)")


if __name__ == "__main__":
    main()
