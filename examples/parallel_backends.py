"""Execution backends: identical results, different wall-clock.

Runs the heaviest Table-1 workload (Hybrid-THC(2) full gather from every
node — Θ(n) volume per start node, so Θ(n²) work) once per backend,
checks the ProcessPoolBackend / BatchBackend results are **bitwise
identical** to the serial reference, and reports wall-clock times.

On a multi-core machine the process pool shows near-linear speedup; on a
single core it only adds fork overhead — that is the point of the
backend abstraction: the science code is identical either way.

Run:  python examples/parallel_backends.py [workers] [depth]
"""

import random
import sys
import time

from repro.algorithms.hybrid_algs import HybridFullGather
from repro.exec.backends import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.graphs.generators import hybrid_thc_instance
from repro.model.runner import run_algorithm


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    shape = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    instance = hybrid_thc_instance(2, shape, shape, rng=random.Random(shape))
    algorithm = HybridFullGather(2)
    print(
        f"instance: {instance.name}, n = {instance.graph.num_nodes}; "
        f"algorithm: {algorithm.name} from every node"
    )

    results = {}
    timings = {}
    backends = [
        SerialBackend(),
        BatchBackend(),
        ProcessPoolBackend(workers=workers),
    ]
    for backend in backends:
        with backend:
            started = time.perf_counter()
            results[backend.name] = run_algorithm(
                instance, algorithm, seed=1, backend=backend
            )
            timings[backend.name] = time.perf_counter() - started

    reference = results["serial"]
    for name, result in results.items():
        identical = (
            result.outputs == reference.outputs
            and result.profiles == reference.profiles
        )
        speedup = timings["serial"] / timings[name]
        print(
            f"{name:<22} {timings[name]:7.2f}s  speedup {speedup:4.2f}x  "
            f"identical to serial: {identical}"
        )
        assert identical, f"{name} diverged from the serial reference!"
    print()
    print(
        f"max volume {reference.max_volume}, "
        f"max distance {reference.max_distance} — every backend agrees."
    )


if __name__ == "__main__":
    main()
