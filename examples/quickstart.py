"""Quickstart: define an instance, run algorithms, measure both costs.

Reproduces the paper's central contrast on LeafColoring (Section 3):
the deterministic distance solver sees *far but narrow is impossible*
(logarithmic distance, big volume at the root), while the randomized
walk sees *little of everything* (logarithmic volume).  The second half
shows the same contrast as a size sweep through the sweep orchestrator.

Run:  python examples/quickstart.py
"""

import random

from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    LeafColoringFullGather,
    RWtoLeaf,
)
from repro.exec.sweep import InstanceFamily, SweepSpec, run_sweeps
from repro.graphs.generators import leaf_coloring_instance
from repro.model.runner import solve_and_check
from repro.problems.leaf_coloring import LeafColoring


def main() -> None:
    # A complete binary tree of depth 8 (n = 511) with random leaf colors.
    instance = leaf_coloring_instance(8, rng=random.Random(0))
    problem = LeafColoring()
    print(f"instance: {instance.name}, n = {instance.graph.num_nodes}")
    print(f"{'algorithm':<28} {'valid':<6} {'max DIST':<9} {'max VOL':<8}")
    for algorithm in (
        LeafColoringDistanceSolver(),  # Prop 3.9: distance O(log n)
        RWtoLeaf(),                    # Alg 1:   volume  O(log n) w.h.p.
        LeafColoringFullGather(),      # trivial: volume  O(n)
    ):
        report = solve_and_check(problem, instance, algorithm, seed=42)
        print(
            f"{algorithm.name:<28} {str(report.valid):<6} "
            f"{report.max_distance:<9} {report.max_volume:<8}"
        )
    print()
    print("Note the Theorem 3.6 shape: all three agree on validity, the")
    print("distance solver minimizes how FAR it sees, the random walk")
    print("minimizes how MUCH it sees, and determinism pays linear volume.")

    # The same contrast as a declarative sweep: grow n, fit the class.
    print()
    print("Growth classes over depths 5..8 (via the sweep orchestrator):")
    family = InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        [5, 6, 7, 8],
    )
    cands = ["log n", "n^{1/2}", "n"]
    for result in run_sweeps([
        SweepSpec("distance solver DIST", "Θ(log n)", family, "distance",
                  LeafColoringDistanceSolver, candidates=cands),
        SweepSpec("random walk VOL", "Θ(log n)", family, "volume",
                  RWtoLeaf, seed=42, candidates=cands),
        SweepSpec("full gather VOL", "Θ(n)", family, "volume",
                  LeafColoringFullGather,
                  nodes=lambda inst, d: [inst.meta["root"]],
                  candidates=cands),
    ]):
        print("  " + result.format_row())


if __name__ == "__main__":
    main()
