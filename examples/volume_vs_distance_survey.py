"""Survey: all five constructions, four complexity measures each.

A compact, runnable version of Table 1 built on the sweep orchestrator:
each construction contributes one declarative instance family and a
distance/volume sweep pair; the orchestrator runs them (optionally on a
parallel backend — pass ``process:4`` as argv[1]), verifies validity on
the largest instance, and prints claimed vs fitted growth classes.

Run:  python examples/volume_vs_distance_survey.py [backend]
"""

import random
import sys

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.algorithms.hh_algs import HHDistanceSolver, HHWaypointSolver
from repro.algorithms.hierarchical_algs import RecursiveHTHC, WaypointHTHC
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridWaypointSolver,
)
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    RWtoLeaf,
)
from repro.exec.backends import get_backend
from repro.exec.sweep import InstanceFamily, SweepSpec, run_sweeps
from repro.graphs.generators import (
    balanced_tree_instance,
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
)
from repro.model.runner import solve_and_check
from repro.problems import (
    BalancedTree,
    HHTHC,
    HierarchicalTHC,
    HybridTHC,
    LeafColoring,
)

DIST_CANDS = ["log log n", "log n", "n^{1/3}", "n^{1/2}", "n"]
VOL_CANDS = ["log n", "n^{1/3}", "n^{1/2}", "n^{1/2} log n", "n"]


def construction_specs():
    """One family + (distance, volume) sweep pair per construction."""
    leaf = InstanceFamily(
        "leaf-coloring",
        lambda d: leaf_coloring_instance(d, rng=random.Random(d)),
        [5, 6, 7],
    )
    balanced = InstanceFamily(
        "balanced-tree",
        lambda d: balanced_tree_instance(d, rng=random.Random(d)),
        [4, 5, 6],
    )
    hierarchical = InstanceFamily(
        "hierarchical-thc-2",
        lambda m: hierarchical_thc_instance(2, m, rng=random.Random(m)),
        [6, 10, 14],
    )
    hybrid = InstanceFamily(
        "hybrid-thc-2",
        lambda s: hybrid_thc_instance(2, s, s, rng=random.Random(s)),
        [3, 4, 5],
    )
    hh = InstanceFamily(
        "hh-thc-2-3",
        lambda s: hh_thc_instance(2, 3, *s, rng=random.Random(s[0])),
        [(5, 4, 3), (6, 8, 3), (8, 8, 4)],
    )
    return [
        ("LeafColoring (§3)", LeafColoring(), leaf,
         LeafColoringDistanceSolver, RWtoLeaf,
         "D-DIST Θ(log n)", "R-VOL Θ(log n)"),
        ("BalancedTree (§4)", BalancedTree(), balanced,
         BalancedTreeDistanceSolver, BalancedTreeFullGather,
         "D-DIST Θ(log n)", "VOL Θ(n)"),
        ("Hierarchical-THC(2) (§5)", HierarchicalTHC(2), hierarchical,
         lambda: RecursiveHTHC(2), lambda: WaypointHTHC(2),
         "DIST Θ(n^{1/2})", "R-VOL Θ̃(n^{1/2})"),
        ("Hybrid-THC(2) (§6)", HybridTHC(2), hybrid,
         lambda: HybridDistanceSolver(2), lambda: HybridWaypointSolver(2),
         "DIST Θ(log n)", "R-VOL Θ̃(n^{1/2})"),
        ("HH-THC(2,3) (§6.1)", HHTHC(2, 3), hh,
         lambda: HHDistanceSolver(2, 3), lambda: HHWaypointSolver(2, 3),
         "DIST Θ(n^{1/3})", "R-VOL Θ̃(n^{1/2})"),
    ]


def main() -> None:
    backend = get_backend(sys.argv[1] if len(sys.argv) > 1 else None)
    print(f"backend: {backend.name}")
    for title, problem, family, dist_factory, vol_factory, dc, vc in (
        construction_specs()
    ):
        print(f"\n--- {title} ---")
        dist, vol = run_sweeps(
            [
                SweepSpec(f"{title} distance", dc, family, "distance",
                          dist_factory, seed=1, candidates=DIST_CANDS),
                SweepSpec(f"{title} volume", vc, family, "volume",
                          vol_factory, seed=1, candidates=VOL_CANDS),
            ],
            backend,
        )
        print("    " + dist.format_row())
        print("    " + vol.format_row())
        largest = family.instance(family.params[-1])
        for factory in (dist_factory, vol_factory):
            report = solve_and_check(
                problem, largest, factory(), seed=1, backend=backend
            )
            assert report.valid, report.violations[:3]
        print(f"    outputs verified on n = {largest.graph.num_nodes}")
    print("\nAll outputs verified against the paper-verbatim checkers.")


if __name__ == "__main__":
    main()
