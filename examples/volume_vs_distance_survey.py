"""Survey: all five constructions, four complexity measures each.

A compact, runnable version of Table 1: for each problem we take one
instance from its hard family, run the paper's algorithms, verify
validity, and print the measured worst-case costs side by side with the
claimed asymptotics.

Run:  python examples/volume_vs_distance_survey.py
"""

import random

from repro.algorithms.balanced_tree_algs import (
    BalancedTreeDistanceSolver,
    BalancedTreeFullGather,
)
from repro.algorithms.hh_algs import HHDistanceSolver, HHWaypointSolver
from repro.algorithms.hierarchical_algs import RecursiveHTHC, WaypointHTHC
from repro.algorithms.hybrid_algs import (
    HybridDistanceSolver,
    HybridWaypointSolver,
)
from repro.algorithms.leaf_coloring_algs import (
    LeafColoringDistanceSolver,
    RWtoLeaf,
)
from repro.graphs.generators import (
    balanced_tree_instance,
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
)
from repro.model.runner import solve_and_check
from repro.problems import (
    BalancedTree,
    HHTHC,
    HierarchicalTHC,
    HybridTHC,
    LeafColoring,
)


def survey(title, claims, problem, instance, dist_solver, vol_solver):
    print(f"\n--- {title}  (n = {instance.graph.num_nodes}) ---")
    print(f"    claims: {claims}")
    dist = solve_and_check(problem, instance, dist_solver, seed=1)
    vol = solve_and_check(problem, instance, vol_solver, seed=1)
    assert dist.valid, dist.violations[:3]
    assert vol.valid, vol.violations[:3]
    print(f"    distance solver: DIST = {dist.max_distance}, "
          f"VOL = {dist.max_volume}")
    print(f"    volume solver:   DIST = {vol.max_distance}, "
          f"VOL = {vol.max_volume}")


def main() -> None:
    rnd = random.Random(7)
    survey(
        "LeafColoring (§3)",
        "R-DIST=D-DIST=R-VOL=Θ(log n), D-VOL=Θ(n)",
        LeafColoring(),
        leaf_coloring_instance(7, rng=rnd),
        LeafColoringDistanceSolver(),
        RWtoLeaf(),
    )
    survey(
        "BalancedTree (§4)",
        "R-DIST=D-DIST=Θ(log n), R-VOL=D-VOL=Θ(n)",
        BalancedTree(),
        balanced_tree_instance(5, rng=rnd),
        BalancedTreeDistanceSolver(),
        BalancedTreeFullGather(),
    )
    survey(
        "Hierarchical-THC(2) (§5)",
        "DIST=Θ(n^1/2), R-VOL=Θ̃(n^1/2), D-VOL=Θ̃(n)",
        HierarchicalTHC(2),
        hierarchical_thc_instance(2, 10, rng=rnd),
        RecursiveHTHC(2),
        WaypointHTHC(2),
    )
    survey(
        "Hybrid-THC(2) (§6)",
        "DIST=Θ(log n), R-VOL=Θ̃(n^1/2), D-VOL=Θ̃(n)",
        HybridTHC(2),
        hybrid_thc_instance(2, 4, 4, rng=rnd),
        HybridDistanceSolver(2),
        HybridWaypointSolver(2),
    )
    survey(
        "HH-THC(2,3) (§6.1)",
        "DIST=Θ(n^1/3), R-VOL=Θ̃(n^1/2), D-VOL=Θ̃(n)",
        HHTHC(2, 3),
        hh_thc_instance(2, 3, 5, 4, 3, rng=rnd),
        HHDistanceSolver(2, 3),
        HHWaypointSolver(2, 3),
    )
    print("\nAll outputs verified against the paper-verbatim checkers.")


if __name__ == "__main__":
    main()
