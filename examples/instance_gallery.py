"""Render the paper's illustrative figures (4–7) as verified instances.

Figures 4–8 of the paper are example instances, not measurements; this
gallery constructs the corresponding objects, prints small ASCII
sketches, and verifies the input/output pairs the captions describe.

Run:  python examples/instance_gallery.py
"""

import random

from repro.graphs.generators import (
    disjointness_embedding,
    hierarchical_thc_instance,
    leaf_coloring_instance,
)
from repro.graphs.labelings import EXEMPT
from repro.graphs.tree_structure import InstanceTopology, all_backbones
from repro.problems.balanced_tree import BalancedTree
from repro.problems.balanced_tree import reference_solution as bt_reference
from repro.problems.hierarchical_thc import HierarchicalTHC
from repro.problems.hierarchical_thc import reference_solution as thc_reference
from repro.problems.leaf_coloring import LeafColoring
from repro.problems.leaf_coloring import reference_solution as lc_reference


def figure4() -> None:
    print("=== Figure 4: a LeafColoring instance and valid output ===")
    inst = leaf_coloring_instance(3, rng=random.Random(4))
    outputs = lc_reference(inst)
    assert LeafColoring().validate(inst, outputs) == []
    topo = InstanceTopology(inst)
    for depth, row in enumerate(
        [[1], [2, 3], [4, 5, 6, 7], [8, 9, 10, 11, 12, 13, 14, 15]]
    ):
        cells = [
            f"{v}:{inst.label(v).color}->{outputs[v]}" for v in row
        ]
        print("  " * (3 - depth) + "   ".join(cells))
    print("(each internal node's output equals one of its children's)")


def figure5() -> None:
    print("\n=== Figure 5: the disjointness embedding (Prop 4.9) ===")
    a = [0, 1, 0, 1]
    b = [1, 1, 0, 0]
    inst = disjointness_embedding(a, b)
    outputs = bt_reference(inst)
    assert BalancedTree().validate(inst, outputs) == []
    root = inst.meta["root"]
    disj = inst.meta["disjoint"]
    print(f"a = {a}, b = {b}: disj(a,b) = {disj}")
    print(f"root output: {outputs[root]} "
          f"({'B ⇔ compatible ⇔ disjoint' if disj else 'U: a∩b ≠ ∅'})")


def figure6_7() -> None:
    print("\n=== Figures 6/7: the hierarchical forest and a valid "
          "THC coloring ===")
    inst = hierarchical_thc_instance(3, 3, rng=random.Random(6))
    outputs = thc_reference(inst, 3)
    assert HierarchicalTHC(3).validate(inst, outputs) == []
    topo = InstanceTopology(inst)
    for backbone in all_backbones(inst, cap=3):
        marks = " ".join(f"{v}:{outputs[v]}" for v in backbone.nodes)
        print(f"  level {backbone.level} backbone: {marks}")
    exempt = sum(1 for v in outputs.values() if v == EXEMPT)
    print(f"({exempt} exempt nodes; every level-1 backbone is unanimously "
          "colored with its leaf's input color)")


def main() -> None:
    figure4()
    figure5()
    figure6_7()


if __name__ == "__main__":
    main()
