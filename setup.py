"""Setup shim.

This environment has no network access and no ``wheel`` package, so PEP-517
editable installs (which need ``bdist_wheel``) fail.  Keeping a classic
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
do a legacy develop install with the stock setuptools.
"""

from setuptools import setup

setup()
