"""Legacy setup shim — all real metadata lives in pyproject.toml.

Offline environments without ``wheel`` cannot do PEP-517 editable
installs (they need ``bdist_wheel``); keeping a classic ``setup.py``
lets ``pip install -e . --no-build-isolation --no-use-pep517`` do a
legacy develop install with the stock setuptools, which (>= 61) reads
the package metadata from pyproject.toml.
"""

from setuptools import setup

setup()
