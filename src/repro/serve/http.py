"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The repo's runtime is stdlib-only by design (DESIGN.md §0), and the
stdlib has no *async* HTTP server, so ``repro serve`` hand-rolls the
protocol subset it needs: request-line + headers + ``Content-Length``
bodies in, fixed-length responses out, with HTTP/1.1 keep-alive so a
load generator can pipeline thousands of requests over a handful of
connections.  Chunked transfer, trailers, and upgrades are deliberately
out of scope — every request and response this service exchanges is a
small JSON document of known length.

Responses are rendered canonically (``sort_keys`` + compact separators,
one trailing newline), which is what makes "bitwise-identical" a
meaningful contract for store-served repeats: the cached artifact is the
exact byte string the first execution produced (DESIGN.md §13.4).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Upper bound on accepted request bodies; every legitimate request to
#: this service is a small JSON document, so anything bigger is noise.
MAX_BODY_BYTES = 1 << 20

#: Upper bound on one header line (also bounds the request line).
MAX_LINE_BYTES = 16 << 10

#: Maximum number of header lines in one request.
MAX_HEADERS = 100

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(ValueError):
    """The peer sent bytes this server cannot parse as HTTP/1.1.

    ``status`` is the response code the connection handler should send
    before closing (400 for malformed requests, 413 for oversized ones).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request.

    Header names are lower-cased at parse time (HTTP headers are
    case-insensitive); ``path`` excludes any query string, which rides
    in ``query`` raw (this service's endpoints take JSON bodies, not
    query parameters, but a probe like ``GET /healthz?x=1`` must not
    404 on the ``?``).
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    query: str = ""

    def json(self):
        """The request body as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpProtocolError(f"request body is not JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the peer opts out."""
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response, rendered by :meth:`encode`."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
        return head + self.body


def canonical_json(payload) -> bytes:
    """The canonical response rendering: stable bytes for stable data.

    ``sort_keys`` + compact separators + one trailing newline — the same
    canonicalization the corpus format uses (DESIGN.md §12.1), so two
    renderings of equal payloads are equal as byte strings and a
    store-served repeat can be compared bitwise against the original.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def json_response(
    payload,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    return Response(
        status=status,
        body=canonical_json(payload),
        headers=dict(headers or {}),
    )


def error_response(
    message: str, status: int, headers: Optional[Dict[str, str]] = None
) -> Response:
    """The uniform error body: ``{"error": ..., "status": ...}``."""
    return json_response(
        {"error": message, "status": status}, status=status, headers=headers
    )


async def _read_line(reader) -> bytes:
    """One CRLF- (or bare-LF-) terminated line, size-bounded."""
    try:
        line = await reader.readuntil(b"\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        raise HttpProtocolError(f"truncated request: {exc}") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpProtocolError("header line too long", status=400)
    return line.rstrip(b"\r\n")


async def read_request(reader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    A clean EOF *before any bytes* of a request is how keep-alive
    connections end; EOF mid-request raises.
    """
    try:
        first = await reader.readuntil(b"\n")
    except Exception:
        # EOF (or reset) between requests: the peer is done.
        return None
    if not first.strip():
        # Tolerate a stray blank line between pipelined requests.
        try:
            first = await reader.readuntil(b"\n")
        except Exception:
            return None
    parts = first.rstrip(b"\r\n").decode("latin-1").split()
    if len(parts) != 3:
        raise HttpProtocolError(f"malformed request line: {first!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(f"unsupported protocol {version!r}")
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpProtocolError("too many headers")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpProtocolError(
                f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise HttpProtocolError(f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise HttpProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        try:
            body = await reader.readexactly(length)
        except Exception as exc:
            raise HttpProtocolError(f"truncated body: {exc}") from exc
    elif headers.get("transfer-encoding"):
        raise HttpProtocolError(
            "chunked transfer encoding is not supported"
        )
    return Request(
        method=method.upper(),
        path=path,
        headers=headers,
        body=body,
        query=query,
    )


__all__ = [
    "HttpProtocolError",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "canonical_json",
    "error_response",
    "json_response",
    "read_request",
]
