"""The micro-batching scheduler behind every compute endpoint.

Requests admitted by the service land on one bounded asyncio queue; a
single scheduler task drains it in *micro-batches* (it waits up to
``batch_window`` seconds for up to ``max_batch`` requests, then
dispatches whatever arrived) and runs each batch on one dedicated worker
thread that owns the shared oracle-caching execution backend.  Batching
is an amortization, never a semantic: every job's payload is a pure
function of its resolved request descriptor (DESIGN.md §13.4), so the
batch composition and the arrival order are unobservable in the
responses — a property the conformance suite pins with hypothesis.

Three layers sit in front of execution, checked in this order:

1. **single-flight** — a request whose key is already being computed
   joins the in-flight future instead of enqueueing a duplicate;
2. **store read-through** — a key with a recorded response in the
   :class:`~repro.corpus.results.ResultStore` is served the stored
   bytes, bitwise identical to the first execution, zero new work;
3. **admission control** — a full queue rejects *before* admission
   (:class:`Backpressure` → 429 upstream); an admitted job is never
   dropped, it only ever completes or fails with its own error.

The store write is *behind* the response: the worker resolves the
waiting future first and persists the body afterwards, so a cold-cache
burst pays no sqlite latency on the response path.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Callable, Dict, Optional, Tuple

from repro.serve.http import canonical_json


class Backpressure(RuntimeError):
    """The admission queue is full; the service replies 429."""


class SchedulerClosed(RuntimeError):
    """Submit after close: the service is shutting down (503)."""


@dataclass
class JobResult:
    """What one settled job hands back to the connection handler."""

    body: bytes
    from_store: bool = False
    coalesced: bool = False


@dataclass
class _Job:
    key: str
    fn: Callable[[], Tuple[dict, int]]
    future: "asyncio.Future[JobResult]"
    endpoint: str
    admitted_at: float = 0.0


@dataclass
class ServeStats:
    """Thread-safe service counters (worker thread + event loop).

    ``snapshot()`` is what ``GET /stats`` serves; the load harness
    diffs two snapshots to attribute work to a run.
    """

    started_at: float = field(default_factory=monotonic)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    requests: Counter = field(default_factory=Counter)
    responses: Counter = field(default_factory=Counter)
    executions: int = 0
    jobs_executed: int = 0
    store_hits: int = 0
    store_misses: int = 0
    corpus_hits: int = 0
    corpus_misses: int = 0
    coalesced: int = 0
    rejected: int = 0
    deadline_timeouts: int = 0
    faults_recovered: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    queue_wait_total: float = 0.0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def count(self, counter: str, key) -> None:
        with self._lock:
            getattr(self, counter)[key] += 1

    def snapshot(self, queue_depth: int, queue_limit: int) -> Dict[str, object]:
        with self._lock:
            batches = sum(self.batch_sizes.values())
            jobs = sum(
                size * count for size, count in self.batch_sizes.items()
            )
            return {
                "uptime": monotonic() - self.started_at,
                "requests": dict(self.requests),
                "responses": {str(k): v for k, v in self.responses.items()},
                "queue": {
                    "depth": queue_depth,
                    "limit": queue_limit,
                    "rejected": self.rejected,
                },
                "batches": {
                    "count": batches,
                    "jobs": jobs,
                    "histogram": {
                        str(size): count
                        for size, count in sorted(self.batch_sizes.items())
                    },
                    "max": max(self.batch_sizes, default=0),
                    "mean": jobs / batches if batches else None,
                },
                "store": {
                    "hits": self.store_hits,
                    "misses": self.store_misses,
                },
                "corpus": {
                    "hits": self.corpus_hits,
                    "misses": self.corpus_misses,
                },
                "executions": self.executions,
                "jobs_executed": self.jobs_executed,
                "coalesced": self.coalesced,
                "deadline_timeouts": self.deadline_timeouts,
                "faults_recovered": self.faults_recovered,
                "queue_wait_total": self.queue_wait_total,
            }


class BatchScheduler:
    """Coalesce admitted jobs into micro-batches on one worker thread.

    One worker on purpose: the shared oracle-caching backend is not
    thread-safe, and a single compute lane keeps batch composition (and
    therefore the ``/stats`` histogram) deterministic under a
    deterministic load.  Parallelism belongs *inside* a job — a
    ``process:N`` backend fans a single solve's nodes out across worker
    processes — not across jobs.
    """

    def __init__(
        self,
        *,
        backend,
        store=None,
        queue_limit: int = 64,
        batch_window: float = 0.005,
        max_batch: int = 8,
        stats: Optional[ServeStats] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.backend = backend
        self.store = store
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.stats = stats if stats is not None else ServeStats()
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=queue_limit
        )
        self._inflight: Dict[str, "asyncio.Future[JobResult]"] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._task = self._loop.create_task(self._run())

    async def close(self) -> None:
        """Drain nothing, fail pending jobs loudly, stop the worker."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if not job.future.done():
                job.future.set_exception(
                    SchedulerClosed("service shut down before execution")
                )
        self._inflight.clear()
        self._executor.shutdown(wait=True)
        self.backend.close()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self, key: str, endpoint: str, fn: Callable[[], Tuple[dict, int]]
    ) -> "asyncio.Future[JobResult]":
        """Admit one job; returns the future its response settles on.

        Raises :class:`Backpressure` when the admission queue is full
        (nothing was admitted, nothing will run) and
        :class:`SchedulerClosed` after shutdown began.  An identical
        in-flight key returns the *same* underlying future wrapped so
        every waiter sees ``coalesced=True`` except the original.
        """
        if self._closed:
            raise SchedulerClosed("service is shutting down")
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.bump("coalesced")
            return self._piggyback(existing)
        assert self._loop is not None, "scheduler not started"
        future: "asyncio.Future[JobResult]" = self._loop.create_future()
        job = _Job(
            key=key,
            fn=fn,
            future=future,
            endpoint=endpoint,
            admitted_at=perf_counter(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.stats.bump("rejected")
            raise Backpressure(
                f"admission queue full ({self.queue_limit} pending)"
            ) from None
        self._inflight[key] = future
        future.add_done_callback(lambda _f, k=key: self._forget(k))
        return future

    def _forget(self, key: str) -> None:
        self._inflight.pop(key, None)

    def _piggyback(
        self, future: "asyncio.Future[JobResult]"
    ) -> "asyncio.Future[JobResult]":
        """A dependent future marking its result as coalesced."""
        assert self._loop is not None
        waiter: "asyncio.Future[JobResult]" = self._loop.create_future()

        def _copy(done: "asyncio.Future[JobResult]") -> None:
            if waiter.done():
                return
            exc = done.exception() if not done.cancelled() else None
            if done.cancelled():
                waiter.cancel()
            elif exc is not None:
                waiter.set_exception(exc)
            else:
                result = done.result()
                waiter.set_result(
                    JobResult(
                        body=result.body,
                        from_store=result.from_store,
                        coalesced=True,
                    )
                )

        future.add_done_callback(_copy)
        return waiter

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._loop is not None
        while True:
            job = await self._queue.get()
            batch = [job]
            deadline = monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self.stats.count("batch_sizes", len(batch))
            waited = sum(
                perf_counter() - j.admitted_at for j in batch
            )
            with self.stats._lock:
                self.stats.queue_wait_total += waited
            await self._loop.run_in_executor(
                self._executor, self._run_batch, batch
            )

    def _run_batch(self, batch) -> None:
        """Worker thread: settle every job in the batch, no exceptions out."""
        assert self._loop is not None
        for job in batch:
            try:
                result = self._run_job(job)
            except BaseException as exc:  # noqa: BLE001 - settled, not lost
                self._loop.call_soon_threadsafe(
                    self._settle_error, job.future, exc
                )
            else:
                self._loop.call_soon_threadsafe(
                    self._settle, job.future, result
                )
                if not result.from_store and self.store is not None:
                    # Write-behind: the response future is already
                    # settling on the loop; the persist happens after.
                    try:
                        self.store.record_response(
                            job.key, result.body, endpoint=job.endpoint
                        )
                    except Exception:
                        # A failed persist degrades the cache, never
                        # the response that already settled.
                        pass

    def _run_job(self, job: _Job) -> JobResult:
        if self.store is not None:
            stored = self.store.get_response(job.key)
            if stored is not None:
                self.stats.bump("store_hits")
                return JobResult(body=stored, from_store=True)
            self.stats.bump("store_misses")
        payload, executions = job.fn()
        self.stats.bump("jobs_executed")
        if executions:
            self.stats.bump("executions", executions)
        return JobResult(body=canonical_json(payload), from_store=False)

    @staticmethod
    def _settle(future: "asyncio.Future[JobResult]", result: JobResult) -> None:
        if not future.done():
            future.set_result(result)

    @staticmethod
    def _settle_error(future: "asyncio.Future[JobResult]", exc) -> None:
        if not future.done():
            future.set_exception(exc)


__all__ = [
    "Backpressure",
    "BatchScheduler",
    "JobResult",
    "SchedulerClosed",
    "ServeStats",
]
