"""``repro.serve`` — the async solve-and-check service and its load harness.

The production framing of the ROADMAP's north star: a long-running
asyncio HTTP/JSON service (:mod:`repro.serve.service`) exposing the
registry — solve-and-check a cell, Monte-Carlo-estimate a success rate,
play an adversary budget point — behind a micro-batching scheduler
(:mod:`repro.serve.scheduler`) that shares one oracle-caching execution
backend, serves repeats bitwise-identically from the PR 9 result store,
and rejects overload with explicit backpressure.  The deterministic
load generator (:mod:`repro.serve.load`) turns "heavy traffic" into a
CI-gated number: p50/p95/p99 latency, requests/sec, batch-size
histogram, and store hit rate in the bench artifact's ``serving``
section.
"""

from repro.serve.http import (
    HttpProtocolError,
    Request,
    Response,
    canonical_json,
    json_response,
    read_request,
)
from repro.serve.load import LoadConfig, LoadReport, run_load
from repro.serve.scheduler import (
    Backpressure,
    BatchScheduler,
    JobResult,
    SchedulerClosed,
    ServeStats,
)
from repro.serve.service import (
    ReproService,
    ServeConfig,
    ServerThread,
    request_key,
    run_server,
)

__all__ = [
    "Backpressure",
    "BatchScheduler",
    "HttpProtocolError",
    "JobResult",
    "LoadConfig",
    "LoadReport",
    "ReproService",
    "Request",
    "Response",
    "SchedulerClosed",
    "ServeConfig",
    "ServeStats",
    "ServerThread",
    "canonical_json",
    "json_response",
    "read_request",
    "request_key",
    "run_server",
]
