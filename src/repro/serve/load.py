"""A deterministic load generator for ``repro serve``.

``repro load`` turns "heavy traffic" into a measured artifact.  The
request mix is drawn *from the registry matrix* under one RNG seed, so
two runs against equivalent servers issue byte-identical request
streams; the harness then drives two measured phases plus optional
error probes:

1. **cold** — ``requests`` unique descriptors (seeds drawn per request),
   shuffled, through the chosen loop mode;
2. **repeat** — the same descriptors reshuffled under a second seed
   derivation.  Against a store-backed server every one must come back
   ``X-Repro-Store: hit`` and *bitwise identical* to its phase-1 body,
   with the server's execution counter unmoved — the acceptance gate for
   read-through caching;
3. **probes** — deliberate 504s (microscopic per-request deadlines) and
   a best-effort 429 burst (more concurrent fresh requests than the
   admission queue holds).  These are the only non-2xx statuses a
   healthy run may produce; anything else fails the harness.

Loop modes: *closed* (``concurrency`` workers over persistent
connections, next request on response — measures service latency) and
*open* (Poisson-free fixed-rate arrival schedule; latency counted from
the scheduled arrival, so admission queueing is part of the number).

Latency quantiles are nearest-rank on the measured sample — no
interpolation, so a quantile is always a latency that actually
happened.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class LoadRequest:
    """One request in the mix: an endpoint and a JSON body."""

    path: str
    payload: Dict[str, object]

    def body(self) -> bytes:
        return json.dumps(self.payload, sort_keys=True).encode()


@dataclass
class LoadConfig:
    """Knobs for one harness run (defaults match ``repro load --quick``)."""

    host: str = "127.0.0.1"
    port: int = 8437
    requests: int = 32
    concurrency: int = 4
    mode: str = "closed"  # closed | open
    rate: float = 50.0  # open-loop arrivals per second
    seed: int = 1543
    adversary_share: float = 0.1
    mc_share: float = 0.2
    deadline_probes: int = 2
    burst_probes: int = 0
    request_timeout: float = 120.0
    p99_gate_ms: Optional[float] = None
    min_rps: Optional[float] = None
    require_cache: bool = False


# ----------------------------------------------------------------------
# the request mix
# ----------------------------------------------------------------------
def build_mix(config: LoadConfig) -> List[LoadRequest]:
    """``config.requests`` descriptors drawn from the registry matrix.

    Solve and MC requests take each cell's *smallest* quick-grid
    parameter (the latency-budget end of the matrix) and a per-request
    seed drawn from the mix RNG, so descriptors are unique across the
    phase and identical across runs of the same config.
    """
    from repro.registry import ADVERSARIES, iter_compatible, load_components

    load_components()
    cells = list(iter_compatible())
    if not cells:
        raise ValueError("registry has no compatible cells to draw from")
    adversaries = list(ADVERSARIES)
    rng = random.Random(config.seed)
    mix: List[LoadRequest] = []
    for _ in range(config.requests):
        roll = rng.random()
        if adversaries and roll < config.adversary_share:
            entry = rng.choice(adversaries)
            mix.append(LoadRequest("/adversary", {
                "adversary": entry.name,
                "budget": min(entry.quick),
                "verify": True,
            }))
        elif roll < config.adversary_share + config.mc_share:
            cell = rng.choice(cells)
            mix.append(LoadRequest("/mc", {
                "algorithm": cell.algorithm.name,
                "family": cell.family.name,
                "param": repr(min_param(cell.family)),
                "seed": rng.randrange(1 << 30),
                "policy": {
                    "quick": True,
                    "min_trials": 4,
                    "max_trials": 8,
                    "batch_size": 4,
                },
            }))
        else:
            cell = rng.choice(cells)
            mix.append(LoadRequest("/solve", {
                "algorithm": cell.algorithm.name,
                "family": cell.family.name,
                "param": repr(min_param(cell.family)),
                "seed": rng.randrange(1 << 30),
            }))
    return mix


def min_param(family):
    """The family's cheapest quick-grid parameter (smallest instance)."""
    return family.quick[0]


def percentile(sorted_values: List[float], p: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


# ----------------------------------------------------------------------
# a minimal async HTTP/1.1 client (stdlib only, keep-alive)
# ----------------------------------------------------------------------
class _Client:
    """One persistent connection to the service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readuntil(b"\n")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = (await self._reader.readuntil(b"\n")).rstrip(b"\r\n")
            if not line:
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, payload


@dataclass
class _Sample:
    index: int
    status: int
    headers: Dict[str, str]
    body: bytes
    latency: float


@dataclass
class PhaseReport:
    """Measured numbers for one load phase."""

    name: str
    requests: int
    duration: float
    statuses: Dict[int, int]
    latencies: List[float] = field(default_factory=list)
    store_hits: int = 0
    coalesced: int = 0

    @property
    def rps(self) -> float:
        return self.requests / self.duration if self.duration > 0 else 0.0

    def latency_ms(self) -> Dict[str, Optional[float]]:
        ordered = sorted(self.latencies)
        scale = 1000.0
        return {
            "p50": _scaled(percentile(ordered, 50), scale),
            "p95": _scaled(percentile(ordered, 95), scale),
            "p99": _scaled(percentile(ordered, 99), scale),
            "max": _scaled(ordered[-1] if ordered else None, scale),
            "mean": _scaled(
                sum(ordered) / len(ordered) if ordered else None, scale
            ),
        }

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "duration": self.duration,
            "rps": self.rps,
            "latency_ms": self.latency_ms(),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "store_hits": self.store_hits,
            "store_hit_rate": (
                self.store_hits / self.requests if self.requests else 0.0
            ),
            "coalesced": self.coalesced,
        }


def _scaled(value: Optional[float], scale: float) -> Optional[float]:
    return None if value is None else value * scale


@dataclass
class LoadReport:
    """The harness verdict: phases, probes, gates."""

    phases: List[PhaseReport]
    probes: Dict[str, object]
    repeat_identical: bool
    repeat_mismatches: int
    repeat_executions: int
    batch_histogram: Dict[str, int]
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_payload(self) -> Dict[str, object]:
        return {
            "phases": [phase.to_payload() for phase in self.phases],
            "probes": self.probes,
            "repeat_identical": self.repeat_identical,
            "repeat_mismatches": self.repeat_mismatches,
            "repeat_executions": self.repeat_executions,
            "batch_histogram": self.batch_histogram,
            "ok": self.ok,
            "failures": list(self.failures),
        }


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
async def _run_phase(
    config: LoadConfig, name: str, mix: List[LoadRequest]
) -> Tuple[PhaseReport, List[_Sample]]:
    samples: List[_Sample] = []
    started = perf_counter()
    if config.mode == "open":
        await _open_loop(config, mix, samples)
    else:
        await _closed_loop(config, mix, samples)
    duration = perf_counter() - started
    statuses: Dict[int, int] = {}
    hits = 0
    coalesced = 0
    for sample in samples:
        statuses[sample.status] = statuses.get(sample.status, 0) + 1
        if sample.headers.get("x-repro-store") == "hit":
            hits += 1
        if sample.headers.get("x-repro-coalesced"):
            coalesced += 1
    report = PhaseReport(
        name=name,
        requests=len(samples),
        duration=duration,
        statuses=statuses,
        latencies=[s.latency for s in samples],
        store_hits=hits,
        coalesced=coalesced,
    )
    return report, samples


async def _closed_loop(
    config: LoadConfig, mix: List[LoadRequest], samples: List[_Sample]
) -> None:
    queue: "asyncio.Queue[Tuple[int, LoadRequest]]" = asyncio.Queue()
    for item in enumerate(mix):
        queue.put_nowait(item)

    async def worker() -> None:
        client = _Client(config.host, config.port)
        try:
            while True:
                try:
                    index, request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                begun = perf_counter()
                status, headers, body = await asyncio.wait_for(
                    client.request("POST", request.path, request.body()),
                    timeout=config.request_timeout,
                )
                samples.append(_Sample(
                    index, status, headers, body, perf_counter() - begun
                ))
        finally:
            await client.close()

    workers = min(config.concurrency, len(mix)) or 1
    await asyncio.gather(*(worker() for _ in range(workers)))


async def _open_loop(
    config: LoadConfig, mix: List[LoadRequest], samples: List[_Sample]
) -> None:
    pool: "asyncio.Queue[_Client]" = asyncio.Queue()
    clients = [
        _Client(config.host, config.port)
        for _ in range(max(1, config.concurrency))
    ]
    for client in clients:
        pool.put_nowait(client)
    epoch = perf_counter()

    async def fire(index: int, request: LoadRequest) -> None:
        arrival = epoch + index / config.rate
        delay = arrival - perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        client = await pool.get()
        try:
            status, headers, body = await asyncio.wait_for(
                client.request("POST", request.path, request.body()),
                timeout=config.request_timeout,
            )
        finally:
            pool.put_nowait(client)
        # Open-loop latency counts from the *scheduled* arrival, so
        # waiting for a free connection (server saturation) is included.
        samples.append(_Sample(
            index, status, headers, body, perf_counter() - arrival
        ))

    try:
        await asyncio.gather(
            *(fire(i, request) for i, request in enumerate(mix))
        )
    finally:
        for client in clients:
            await client.close()


async def _fetch_stats(config: LoadConfig) -> Dict[str, object]:
    client = _Client(config.host, config.port)
    try:
        status, _, body = await client.request("GET", "/stats")
        if status != 200:
            raise ConnectionError(f"GET /stats returned {status}")
        return json.loads(body)
    finally:
        await client.close()


async def _probe_deadlines(
    config: LoadConfig, rng: random.Random
) -> Dict[str, int]:
    """Fire requests with microscopic deadlines; expect clean 504s."""
    from repro.registry import iter_compatible

    cells = list(iter_compatible())
    counts = {"sent": 0, "got_504": 0, "got_200": 0, "other": 0}
    client = _Client(config.host, config.port)
    try:
        for _ in range(config.deadline_probes):
            cell = rng.choice(cells)
            request = LoadRequest("/solve", {
                "algorithm": cell.algorithm.name,
                "family": cell.family.name,
                "param": repr(min_param(cell.family)),
                "seed": rng.randrange(1 << 30),
                "deadline": 1e-4,
            })
            status, _, _ = await client.request(
                "POST", request.path, request.body()
            )
            counts["sent"] += 1
            if status == 504:
                counts["got_504"] += 1
            elif status == 200:
                counts["got_200"] += 1
            else:
                counts["other"] += 1
    finally:
        await client.close()
    return counts


async def _probe_burst(
    config: LoadConfig, rng: random.Random
) -> Dict[str, int]:
    """Saturate admission with fresh concurrent requests; count 429s.

    Best-effort by design: whether a given request is rejected depends
    on how fast the worker drains, so the probe reports what happened
    rather than requiring a fixed split — the invariant under test is
    that *only* 200 and 429 come back.
    """
    from repro.registry import iter_compatible

    cells = list(iter_compatible())
    requests = []
    for _ in range(config.burst_probes):
        cell = rng.choice(cells)
        requests.append(LoadRequest("/solve", {
            "algorithm": cell.algorithm.name,
            "family": cell.family.name,
            "param": repr(min_param(cell.family)),
            "seed": rng.randrange(1 << 30),
        }))
    counts = {"sent": 0, "got_429": 0, "got_200": 0, "other": 0}

    async def fire(request: LoadRequest) -> None:
        client = _Client(config.host, config.port)
        try:
            status, _, _ = await asyncio.wait_for(
                client.request("POST", request.path, request.body()),
                timeout=config.request_timeout,
            )
            counts["sent"] += 1
            if status == 429:
                counts["got_429"] += 1
            elif status == 200:
                counts["got_200"] += 1
            else:
                counts["other"] += 1
        finally:
            await client.close()

    await asyncio.gather(*(fire(request) for request in requests))
    return counts


async def _run_load(config: LoadConfig) -> LoadReport:
    mix = build_mix(config)
    shuffle_rng = random.Random(config.seed + 1)
    cold_order = list(mix)
    shuffle_rng.shuffle(cold_order)
    repeat_order = list(mix)
    shuffle_rng.shuffle(repeat_order)

    before = await _fetch_stats(config)
    cold, cold_samples = await _run_phase(config, "cold", cold_order)
    mid = await _fetch_stats(config)
    repeat, repeat_samples = await _run_phase(config, "repeat", repeat_order)
    after = await _fetch_stats(config)

    # Bitwise identity: key -> body across phases (keys ride in headers).
    bodies: Dict[str, bytes] = {}
    for sample in cold_samples:
        key = sample.headers.get("x-repro-key")
        if key and sample.status == 200:
            bodies[key] = sample.body
    mismatches = 0
    for sample in repeat_samples:
        key = sample.headers.get("x-repro-key")
        if key and sample.status == 200 and key in bodies:
            if sample.body != bodies[key]:
                mismatches += 1

    repeat_executions = int(after.get("executions", 0)) - int(
        mid.get("executions", 0)
    )

    probe_rng = random.Random(config.seed + 2)
    probes: Dict[str, object] = {}
    if config.deadline_probes > 0:
        probes["deadline"] = await _probe_deadlines(config, probe_rng)
    if config.burst_probes > 0:
        probes["burst"] = await _probe_burst(config, probe_rng)
    final = await _fetch_stats(config)

    failures: List[str] = []
    for phase in (cold, repeat):
        unexpected = {
            status: count
            for status, count in phase.statuses.items()
            if status != 200
        }
        if unexpected:
            failures.append(
                f"{phase.name} phase produced non-200 responses: "
                f"{unexpected}"
            )
    if mismatches:
        failures.append(
            f"{mismatches} repeat responses differed bitwise from their "
            f"first responses"
        )
    deadline_counts = probes.get("deadline")
    if deadline_counts and deadline_counts["other"]:
        failures.append(
            f"deadline probes produced statuses other than 200/504: "
            f"{deadline_counts}"
        )
    burst_counts = probes.get("burst")
    if burst_counts and burst_counts["other"]:
        failures.append(
            f"burst probes produced statuses other than 200/429: "
            f"{burst_counts}"
        )
    if config.require_cache:
        if repeat.store_hits != repeat.requests:
            failures.append(
                f"repeat phase expected {repeat.requests} store hits, "
                f"got {repeat.store_hits}"
            )
        if repeat_executions != 0:
            failures.append(
                f"repeat phase performed {repeat_executions} new "
                f"executions (expected 0)"
            )
    if config.p99_gate_ms is not None:
        p99 = repeat.latency_ms()["p99"]
        if p99 is None or p99 > config.p99_gate_ms:
            failures.append(
                f"repeat-phase p99 {p99}ms exceeds the "
                f"{config.p99_gate_ms}ms gate"
            )
    if config.min_rps is not None and repeat.rps < config.min_rps:
        failures.append(
            f"repeat-phase throughput {repeat.rps:.1f} req/s is below "
            f"the {config.min_rps} req/s floor"
        )

    histogram = final.get("batches", {}).get("histogram", {})
    _ = before  # cold-phase deltas are derivable from mid - before
    return LoadReport(
        phases=[cold, repeat],
        probes=probes,
        repeat_identical=mismatches == 0,
        repeat_mismatches=mismatches,
        repeat_executions=repeat_executions,
        batch_histogram=dict(histogram),
        failures=failures,
    )


def run_load(config: LoadConfig) -> LoadReport:
    """Run the whole harness (blocking); the `repro load` entry point."""
    if config.mode not in ("closed", "open"):
        raise ValueError(
            f"unknown load mode {config.mode!r} (closed/open)"
        )
    if config.requests < 1:
        raise ValueError("requests must be >= 1")
    if config.mode == "open" and config.rate <= 0:
        raise ValueError("open-loop rate must be > 0")
    return asyncio.run(_run_load(config))


__all__ = [
    "LoadConfig",
    "LoadReport",
    "LoadRequest",
    "PhaseReport",
    "build_mix",
    "min_param",
    "percentile",
    "run_load",
]
