"""The ``repro serve`` HTTP service: the registry behind six endpoints.

* ``POST /solve`` — solve-and-check one registry cell (the same
  :func:`~repro.model.runner.solve_and_check` call ``repro run`` makes);
* ``POST /mc`` — streaming Monte-Carlo estimate with
  :class:`~repro.montecarlo.engine.TrialPolicy` knobs;
* ``POST /adversary`` — play one lower-bound budget point and verify
  its transcript;
* ``GET /registry`` · ``GET /healthz`` · ``GET /stats``.

Request handling is split across two lanes.  The event loop does only
cheap work: parse, resolve the request against the registry (filling
every default — seed, param, policy — so the *resolved descriptor* is
complete), hash the descriptor into the request key, and admit the job.
All computation happens on the scheduler's worker thread
(:mod:`repro.serve.scheduler`), which owns the shared oracle-caching
backend and checks the response store first.

Response bodies are pure functions of the resolved descriptor: no
timestamps, no durations, no server identity.  Per-request provenance
rides in headers instead — ``X-Repro-Key`` (the descriptor hash),
``X-Repro-Store: hit|miss`` (whether the body came from the store), and
``X-Repro-Elapsed`` (wall seconds, on fresh executions) — so a repeat of
any request is *bitwise identical* to its first response, which is the
contract the conformance suite enforces and DESIGN.md §13.4 argues.

Failure surface, in order of checking: unknown path → 404, wrong method
→ 405, malformed body / unknown names / bad params → 400, admission
queue full → 429 with ``Retry-After``, shutdown race → 503, deadline
expiry → 504 (the computation itself is shielded: it finishes on the
worker, lands in the store, and the pool stays healthy), anything else
→ 500 with the error message.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from hashlib import sha256
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.registry import (
    ADVERSARIES,
    RegistryError,
    load_components,
)
from repro.serve.http import (
    HttpProtocolError,
    Request,
    Response,
    canonical_json,
    error_response,
    json_response,
    read_request,
)
from repro.serve.scheduler import (
    Backpressure,
    BatchScheduler,
    SchedulerClosed,
    ServeStats,
)


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to bind and schedule."""

    host: str = "127.0.0.1"
    port: int = 8437
    backend: str = "batch"
    store: Optional[str] = None
    queue_limit: int = 64
    batch_window: float = 0.005
    max_batch: int = 8
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    retry_after: float = 1.0


def request_key(descriptor: Dict[str, object]) -> str:
    """The 16-hex-digit request key: sha256 of the canonical descriptor.

    The descriptor is *resolved* — every default filled in — so two
    spellings of the same work (``seed`` omitted vs. the registered
    default passed explicitly) hash to the same key and hit the same
    cache row.
    """
    return sha256(canonical_json(descriptor)).hexdigest()[:16]


def _tuplify(value):
    """JSON arrays as grid params: lists become tuples, recursively."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def _coerce_param(raw, family):
    """A request's ``param`` field -> the family's grid parameter."""
    from repro.cli import parse_param

    if raw is None:
        return family.quick[-1]
    if isinstance(raw, str):
        return parse_param(raw)
    return _tuplify(raw)


def _require(payload: dict, key: str) -> object:
    value = payload.get(key)
    if value is None:
        raise RegistryError(f"request is missing the {key!r} field")
    return value


def _policy_from(payload: dict):
    """A resolved TrialPolicy from a request's ``policy`` object."""
    from repro.montecarlo.engine import QUICK_POLICY, TrialPolicy

    spec = payload.get("policy") or {}
    if not isinstance(spec, dict):
        raise RegistryError("the 'policy' field must be a JSON object")
    base = QUICK_POLICY if spec.get("quick", True) else TrialPolicy()
    known = {
        "quick", "min_trials", "max_trials", "batch_size",
        "confidence", "tolerance", "early_stop", "method",
    }
    unknown = set(spec) - known
    if unknown:
        raise RegistryError(
            f"unknown policy fields: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    try:
        return TrialPolicy(
            min_trials=int(spec.get("min_trials", base.min_trials)),
            max_trials=int(spec.get("max_trials", base.max_trials)),
            batch_size=int(spec.get("batch_size", base.batch_size)),
            confidence=float(spec.get("confidence", base.confidence)),
            tolerance=float(spec.get("tolerance", base.tolerance)),
            early_stop=bool(spec.get("early_stop", base.early_stop)),
            method=str(spec.get("method", base.method)),
        )
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"bad policy: {exc}") from exc


class ReproService:
    """The service: an asyncio server plus one :class:`BatchScheduler`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        from repro.corpus import ResultStore
        from repro.exec.backends import get_backend

        self.config = config or ServeConfig()
        load_components()
        self.stats = ServeStats()
        self.store = (
            ResultStore(self.config.store) if self.config.store else None
        )
        self.scheduler = BatchScheduler(
            backend=get_backend(self.config.backend),
            store=self.store,
            queue_limit=self.config.queue_limit,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            stats=self.stats,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._registry_body: Optional[bytes] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the actual (host, port) bound."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    response = error_response(str(exc), exc.status)
                    self.stats.count("responses", exc.status)
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                self.stats.count("responses", response.status)
                writer.write(response.encode(keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        self.stats.count("requests", request.path)
        if request.path == "/healthz":
            if request.method != "GET":
                return error_response("use GET", 405)
            return json_response({"status": "ok"})
        if request.path == "/registry":
            if request.method != "GET":
                return error_response("use GET", 405)
            return Response(body=self._registry())
        if request.path == "/stats":
            if request.method != "GET":
                return error_response("use GET", 405)
            return json_response(
                self.stats.snapshot(
                    self.scheduler.queue_depth, self.config.queue_limit
                )
            )
        handlers = {
            "/solve": self._resolve_solve,
            "/mc": self._resolve_mc,
            "/adversary": self._resolve_adversary,
        }
        resolver = handlers.get(request.path)
        if resolver is None:
            return error_response(f"no such endpoint {request.path!r}", 404)
        if request.method != "POST":
            return error_response("use POST", 405)
        try:
            payload = request.json()
        except HttpProtocolError as exc:
            return error_response(str(exc), exc.status)
        if not isinstance(payload, dict):
            return error_response("request body must be a JSON object", 400)
        try:
            descriptor, fn = resolver(payload)
        except (RegistryError, ValueError) as exc:
            return error_response(str(exc), 400)
        return await self._submit(request.path, payload, descriptor, fn)

    async def _submit(
        self, endpoint: str, payload: dict, descriptor: dict, fn
    ) -> Response:
        key = request_key(descriptor)
        deadline = payload.get("deadline")
        try:
            deadline = (
                self.config.default_deadline
                if deadline is None
                else min(float(deadline), self.config.max_deadline)
            )
        except (TypeError, ValueError):
            return error_response(
                f"bad deadline {deadline!r} (want seconds)", 400
            )
        try:
            future = self.scheduler.submit(key, endpoint, fn)
        except Backpressure as exc:
            return error_response(
                str(exc), 429,
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        except SchedulerClosed as exc:
            return error_response(str(exc), 503)
        started = perf_counter()
        try:
            # Shielded: on deadline expiry the job still finishes on the
            # worker (coalesced peers and the store write survive); only
            # this response gives up.
            result = await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline
            )
        except asyncio.TimeoutError:
            self.stats.bump("deadline_timeouts")
            return error_response(
                f"deadline of {deadline:g}s expired", 504,
                headers={"X-Repro-Key": key},
            )
        except (RegistryError, ValueError) as exc:
            return error_response(str(exc), 400)
        except SchedulerClosed as exc:
            return error_response(str(exc), 503)
        except Exception as exc:  # noqa: BLE001 - the failure surface
            return error_response(f"{type(exc).__name__}: {exc}", 500)
        headers = {
            "X-Repro-Key": key,
            "X-Repro-Store": "hit" if result.from_store else "miss",
        }
        if result.coalesced:
            headers["X-Repro-Coalesced"] = "1"
        if not result.from_store:
            headers["X-Repro-Elapsed"] = f"{perf_counter() - started:.6f}"
        return Response(body=result.body, headers=headers)

    # ------------------------------------------------------------------
    # GET bodies
    # ------------------------------------------------------------------
    def _registry(self) -> bytes:
        # The registry is immutable for the life of the process.
        if self._registry_body is None:
            from repro.cli import _list_payload

            self._registry_body = canonical_json(_list_payload())
        return self._registry_body

    # ------------------------------------------------------------------
    # resolvers: request payload -> (descriptor, worker fn)
    # ------------------------------------------------------------------
    def _resolve_cell(self, payload: dict):
        from repro.cli import implicit_instance, resolve_cell

        problem, algorithm, family = resolve_cell(
            str(_require(payload, "algorithm")),
            None
            if payload.get("family") is None
            else str(payload["family"]),
            None
            if payload.get("problem") is None
            else str(payload["problem"]),
        )
        param = _coerce_param(payload.get("param"), family)
        implicit = bool(payload.get("implicit", False))
        if implicit:
            # Validates the family capability and the param eagerly, on
            # the event loop, so bad requests 400 before admission.
            implicit_instance(family, param)
        return problem, algorithm, family, param, implicit

    def _make_instance(self, family, param, implicit):
        from repro.cli import implicit_instance

        if implicit:
            return implicit_instance(family, param)
        try:
            return family.instance(param)
        except Exception as exc:
            # The family's own rejection (wrong type, out of range)
            # surfaces here on the worker; normalize it so the waiting
            # request maps it to 400, not 500.
            raise RegistryError(
                f"family {family.name!r} rejected param {param!r}: {exc}"
            ) from exc

    def _resolve_solve(self, payload: dict):
        from repro.model.runner import solve_and_check

        problem, algorithm, family, param, implicit = self._resolve_cell(
            payload
        )
        seed = (
            algorithm.seed
            if payload.get("seed") is None
            else int(payload["seed"])
        )
        max_volume = payload.get("max_volume")
        max_queries = payload.get("max_queries")
        descriptor = {
            "endpoint": "solve",
            "algorithm": algorithm.name,
            "problem": problem.name,
            "family": family.name,
            "param": repr(param),
            "implicit": implicit,
            "seed": seed,
            "max_volume": max_volume,
            "max_queries": max_queries,
        }
        backend = self.scheduler.backend

        def fn() -> Tuple[dict, int]:
            instance = self._make_instance(family, param, implicit)
            report = solve_and_check(
                problem.make(),
                instance,
                algorithm.make(),
                seed=seed,
                max_volume=max_volume,
                max_queries=max_queries,
                backend=backend,
            )
            body = dict(descriptor)
            body.update(
                instance=instance.name,
                n=instance.n,
                valid=report.valid,
                result={
                    "max_volume": report.run.max_volume,
                    "mean_volume": report.run.mean_volume,
                    "max_distance": report.run.max_distance,
                    "max_queries": report.run.max_queries,
                    "truncated_nodes": len(report.run.truncated_nodes),
                },
                violations=[str(v) for v in report.violations[:5]],
            )
            return body, 1

        return descriptor, fn

    def _resolve_mc(self, payload: dict):
        from repro.montecarlo.engine import run_trials

        problem, algorithm, family, param, implicit = self._resolve_cell(
            payload
        )
        policy = _policy_from(payload)
        base_seed = (
            algorithm.seed
            if payload.get("seed") is None
            else int(payload["seed"])
        )
        descriptor = {
            "endpoint": "mc",
            "algorithm": algorithm.name,
            "problem": problem.name,
            "family": family.name,
            "param": repr(param),
            "implicit": implicit,
            "base_seed": base_seed,
            "policy": policy.describe(),
        }
        backend = self.scheduler.backend
        store = self.store

        def fn() -> Tuple[dict, int]:
            instance = self._make_instance(family, param, implicit)
            result = run_trials(
                problem.make(),
                instance,
                algorithm.make(),
                policy,
                base_seed=base_seed,
                backend=backend,
                store=store,
            )
            estimate = result.to_payload()
            # Wall time is provenance, not result; it rides in the
            # X-Repro-Elapsed header so the body stays deterministic.
            estimate.pop("elapsed", None)
            body = dict(descriptor)
            body.update(instance=instance.name, n=instance.n, **estimate)
            return body, result.trials

        return descriptor, fn

    def _resolve_adversary(self, payload: dict):
        entry = ADVERSARIES.get(str(_require(payload, "adversary")))
        victim = payload.get("algorithm")
        victim = None if victim is None else str(victim)
        budget = (
            entry.quick[-1]
            if payload.get("budget") is None
            else int(payload["budget"])
        )
        verify = bool(payload.get("verify", True))
        if victim is not None:
            from repro.registry import ALGORITHMS

            ALGORITHMS.get(victim)  # unknown victim -> 400 here
        adversary_probe = entry.make(victim)
        descriptor = {
            "endpoint": "adversary",
            "adversary": entry.name,
            "problem": entry.problem,
            "bound": entry.bound,
            "algorithm": adversary_probe.victim,
            "budget": budget,
            "verify": verify,
        }
        backend = self.scheduler.backend

        def fn() -> Tuple[dict, int]:
            adversary = entry.make(victim)
            run = adversary.timed_run(budget)
            point = run.point()
            point.pop("elapsed", None)
            body = dict(descriptor)
            body.update(
                **point,
                transcript_events=len(run.transcript),
                verified=adversary.verify(run, backend=backend)
                if verify
                else None,
                detail={
                    k: v
                    for k, v in run.detail.items()
                    if isinstance(v, (int, float, str, bool, type(None)))
                },
            )
            return body, 1

        return descriptor, fn


class ServerThread:
    """A live service on a background thread — tests and the bench.

    ``start()`` blocks until the socket is bound and returns
    ``(host, port)``; ``stop()`` tears the whole stack down (server,
    scheduler, backend).  The thread owns its own event loop, so the
    caller may be synchronous code (pytest, ``repro bench``) or a
    different loop entirely (``repro load`` driving it over HTTP).
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.service: Optional[ReproService] = None
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}"
            ) from self._error
        if self.address is None:
            raise RuntimeError("service failed to start within 30s")
        return self.address

    def stop(self) -> None:
        self._stop.set()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(lambda: None)  # wake the loop
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.service = ReproService(self.config)
            self.address = await self.service.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            while not self._stop.is_set():
                await asyncio.sleep(0.05)
        finally:
            await self.service.stop()


async def _serve_forever(config: ServeConfig, printer=print) -> None:
    service = ReproService(config)
    host, port = await service.start()
    if printer is not None:
        printer(
            f"repro serve: listening on http://{host}:{port} "
            f"(backend={config.backend}, queue={config.queue_limit}, "
            f"batch={config.max_batch}@{config.batch_window * 1000:g}ms, "
            f"store={config.store or '-'})"
        )
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await service.stop()


def run_server(config: ServeConfig, printer=print) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""
    try:
        asyncio.run(_serve_forever(config, printer))
    except KeyboardInterrupt:
        if printer is not None:
            printer("repro serve: shutting down")
    return 0


__all__ = [
    "ReproService",
    "ServeConfig",
    "ServerThread",
    "request_key",
    "run_server",
]
