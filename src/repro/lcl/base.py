"""The LCL problem interface (Section 2.4, Definition 2.6).

A locally checkable labeling problem has finite input and output label
sets and a constant checking radius ``c``: a global output is valid iff it
looks valid within distance ``c`` of every node.  Each problem in
:mod:`repro.problems` subclasses :class:`LCLProblem` and implements its
paper-verbatim validity conditions as a per-node predicate; the locality of
those predicates is itself enforced in tests via
:class:`repro.lcl.verifier.LocalityGuard`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graphs.labelings import Instance
from repro.graphs.tree_structure import InstanceTopology, Topology


@dataclass(frozen=True)
class Violation:
    """One validity-condition failure at one node."""

    node: int
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.rule}] node {self.node}: {self.message}"


class LCLProblem:
    """Base class for locally checkable labeling problems.

    Subclasses define:

    * ``name`` — a short identifier;
    * ``checking_radius`` — the constant ``c`` of Definition 2.6;
    * ``output_labels`` — the finite output alphabet (documentation and
      sanity checks);
    * :meth:`check_node` — the paper's validity conditions at one node,
      reading the input only through the supplied :class:`Topology` (so the
      same code runs both globally and under a locality guard).
    """

    name: str = "lcl"
    checking_radius: int = 1
    output_labels: Sequence[object] = ()

    def check_node(
        self,
        topology: Topology,
        node: int,
        outputs: Dict[int, object],
    ) -> List[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def validate(
        self, instance: Instance, outputs: Dict[int, object]
    ) -> List[Violation]:
        """All violations over all nodes (empty list ⇔ valid output)."""
        topology = InstanceTopology(instance)
        violations: List[Violation] = []
        for node in instance.graph.nodes():
            violations.extend(self.check_node(topology, node, outputs))
        return violations

    def is_valid(self, instance: Instance, outputs: Dict[int, object]) -> bool:
        return not self.validate(instance, outputs)

    # ------------------------------------------------------------------
    @staticmethod
    def output_of(outputs: Dict[int, object], node: Optional[int]):
        """Convenience: the output at ``node`` (None-safe)."""
        if node is None:
            return None
        return outputs.get(node)
