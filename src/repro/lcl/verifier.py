"""Locality verification: proving checkers really are radius-c local.

Definition 2.6 demands that validity be decidable from the radius-``c``
neighborhood of each node.  Our problem checkers *claim* this by reading
the instance only through a :class:`Topology`; :class:`LocalityGuard`
turns the claim into an executable fact by wrapping a topology and raising
whenever a predicate touches a node outside the allowed ball.  Tests run
every checker under a guard on every instance family.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graphs.labelings import Instance, NodeLabel
from repro.graphs.tree_structure import InstanceTopology
from repro.lcl.base import LCLProblem, Violation


class LocalityViolation(RuntimeError):
    """A checker read outside its declared checking radius."""


class LocalityGuard:
    """A :class:`Topology` restricted to one radius-``c`` ball.

    Reads of nodes farther than ``radius`` from ``center`` (in the real
    graph metric) raise :class:`LocalityViolation`.
    """

    def __init__(self, instance: Instance, center: int, radius: int) -> None:
        self._inner = InstanceTopology(instance)
        self._allowed = set(instance.graph.ball(center, radius))
        self._center = center
        self._radius = radius

    def _check(self, node_id: int) -> None:
        if node_id not in self._allowed:
            raise LocalityViolation(
                f"read of node {node_id} outside radius {self._radius} "
                f"of {self._center}"
            )

    def label(self, node_id: int) -> NodeLabel:
        self._check(node_id)
        return self._inner.label(node_id)

    def node_at(self, node_id: int, port: Optional[int]) -> Optional[int]:
        self._check(node_id)
        return self._inner.node_at(node_id, port)


def validate_locally(
    problem: LCLProblem,
    instance: Instance,
    outputs: Dict[int, object],
    radius: Optional[int] = None,
) -> List[Violation]:
    """Validate with every per-node check wrapped in a locality guard.

    The result must agree with :meth:`LCLProblem.validate`; tests assert
    both the agreement and the absence of :class:`LocalityViolation`, which
    together certify the problem is an LCL with the declared radius
    (Lemmas 3.5, 4.4, 5.8, 6.2).
    """
    r = problem.checking_radius if radius is None else radius
    violations: List[Violation] = []
    for node in instance.graph.nodes():
        guard = LocalityGuard(instance, node, r)
        violations.extend(problem.check_node(guard, node, outputs))
    return violations


def outputs_within_alphabet(
    problem: LCLProblem, outputs: Dict[int, object]
) -> List[int]:
    """Nodes whose output falls outside the declared finite alphabet.

    Problems with composite outputs (e.g. BalancedTree's (β, port) pairs)
    override membership via ``problem.output_labels`` containing callables.
    """
    offenders: List[int] = []
    labels = problem.output_labels
    if not labels:
        return offenders
    checkers = [lab for lab in labels if callable(lab)]
    plain = {lab for lab in labels if not callable(lab)}
    for node, value in outputs.items():
        if value in plain:
            continue
        if any(check(value) for check in checkers):
            continue
        offenders.append(node)
    return offenders
