"""Distribution-based lower-bound experiments (Proposition 3.12).

Proposition 3.12: on the depth-k complete tree with internal nodes red and
all leaves colored by one fair coin flip χ0, any algorithm of distance
< log n − 1 solves LeafColoring with probability ≤ 1/2 — the root cannot
see any leaf, so its answer is independent of χ0.  By Yao's principle the
same holds for randomized algorithms.

We make this executable with :class:`HorizonLimitedLeafColoring`: the
Proposition 3.9 solver truncated at an exploration radius r.  Measured
success probability should sit near 1/2 for r < depth and jump to 1 at
r ≥ depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.graphs.generators import hard_leaf_coloring_instance
from repro.graphs.tree_structure import (
    is_internal,
    is_leaf,
    left_child_node,
    right_child_node,
)
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.runner import success_probability
from repro.model.views import ProbeTopology
from repro.problems.leaf_coloring import LeafColoring


class HorizonLimitedLeafColoring(ProbeAlgorithm):
    """Prop 3.9's solver truncated at exploration radius ``horizon``.

    Internal nodes whose nearest descendant leaf lies beyond the horizon
    guess red — the best any distance-limited algorithm can do against the
    hard distribution (its view is independent of χ0).
    """

    name = "leaf-coloring/horizon-limited"

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon
        self.name = f"leaf-coloring/horizon-{horizon}"

    def run(self, view: ProbeView):
        topo = ProbeTopology(view)
        start = view.start
        if not is_internal(topo, start):
            return view.start_info.label.color
        frontier = [start]
        seen = {start}
        for _ in range(self.horizon):
            next_frontier = []
            for u in frontier:
                for child in (
                    left_child_node(topo, u),
                    right_child_node(topo, u),
                ):
                    if child is None or child in seen:
                        continue
                    seen.add(child)
                    if is_leaf(topo, child):
                        return view.info(child).label.color
                    if is_internal(topo, child):
                        next_frontier.append(child)
            if not next_frontier:
                break
            frontier = next_frontier
        return "R"  # guess: the hard distribution flips a fair coin


@dataclass
class HorizonSweepPoint:
    """Measured success probability at one horizon."""

    horizon: int
    depth: int
    trials: int
    success_probability: float


class _HardInstanceDraw:
    """Picklable per-trial draw from the hard distribution."""

    def __init__(self, depth: int, base_seed: int) -> None:
        self.depth = depth
        self.base_seed = base_seed

    def __call__(self, trial: int):
        rnd = random.Random(self.base_seed * 1_000_003 + trial)
        return hard_leaf_coloring_instance(self.depth, rng=rnd)


def horizon_sweep(
    depth: int,
    horizons: List[int],
    trials: int = 40,
    base_seed: int = 0,
    backend=None,
) -> List[HorizonSweepPoint]:
    """Success probability of the horizon-limited solver vs the horizon.

    Each trial draws a fresh instance from the hard distribution (fresh
    coin for χ0).  The paper's prediction: ≈ 1/2 below the depth, 1 at or
    above it.  ``backend`` dispatches the trials (see ``repro.exec``).
    """
    problem = LeafColoring()
    draw = _HardInstanceDraw(depth, base_seed)
    results: List[HorizonSweepPoint] = []
    for horizon in horizons:
        probability = success_probability(
            problem,
            draw,
            HorizonLimitedLeafColoring(horizon),
            trials,
            backend=backend,
        )
        results.append(
            HorizonSweepPoint(
                horizon=horizon,
                depth=depth,
                trials=trials,
                success_probability=probability,
            )
        )
    return results
