"""Distribution-based lower-bound experiments (Proposition 3.12).

Proposition 3.12: on the depth-k complete tree with internal nodes red and
all leaves colored by one fair coin flip χ0, any algorithm of distance
< log n − 1 solves LeafColoring with probability ≤ 1/2 — the root cannot
see any leaf, so its answer is independent of χ0.  By Yao's principle the
same holds for randomized algorithms.

We make this executable with :class:`HorizonLimitedLeafColoring`: the
Proposition 3.9 solver truncated at an exploration radius r.  Measured
success probability should sit near 1/2 for r < depth and jump to 1 at
r ≥ depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.algorithms.leaf_coloring_algs import LeafColoringDistanceSolver
from repro.graphs.generators import hard_leaf_coloring_instance
from repro.graphs.tree_structure import (
    is_internal,
    is_leaf,
    left_child_node,
    right_child_node,
)
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.runner import solve_and_check
from repro.model.views import ProbeTopology
from repro.problems.leaf_coloring import LeafColoring


class HorizonLimitedLeafColoring(ProbeAlgorithm):
    """Prop 3.9's solver truncated at exploration radius ``horizon``.

    Internal nodes whose nearest descendant leaf lies beyond the horizon
    guess red — the best any distance-limited algorithm can do against the
    hard distribution (its view is independent of χ0).
    """

    name = "leaf-coloring/horizon-limited"

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon
        self.name = f"leaf-coloring/horizon-{horizon}"

    def run(self, view: ProbeView):
        topo = ProbeTopology(view)
        start = view.start
        if not is_internal(topo, start):
            return view.start_info.label.color
        frontier = [start]
        seen = {start}
        for _ in range(self.horizon):
            next_frontier = []
            for u in frontier:
                for child in (
                    left_child_node(topo, u),
                    right_child_node(topo, u),
                ):
                    if child is None or child in seen:
                        continue
                    seen.add(child)
                    if is_leaf(topo, child):
                        return view.info(child).label.color
                    if is_internal(topo, child):
                        next_frontier.append(child)
            if not next_frontier:
                break
            frontier = next_frontier
        return "R"  # guess: the hard distribution flips a fair coin


@dataclass
class HorizonSweepPoint:
    """Measured success probability at one horizon."""

    horizon: int
    depth: int
    trials: int
    success_probability: float


def horizon_sweep(
    depth: int,
    horizons: List[int],
    trials: int = 40,
    base_seed: int = 0,
) -> List[HorizonSweepPoint]:
    """Success probability of the horizon-limited solver vs the horizon.

    Each trial draws a fresh instance from the hard distribution (fresh
    coin for χ0).  The paper's prediction: ≈ 1/2 below the depth, 1 at or
    above it.
    """
    problem = LeafColoring()
    results: List[HorizonSweepPoint] = []
    for horizon in horizons:
        algorithm = HorizonLimitedLeafColoring(horizon)
        successes = 0
        for trial in range(trials):
            rnd = random.Random(base_seed * 1_000_003 + trial)
            instance = hard_leaf_coloring_instance(depth, rng=rnd)
            report = solve_and_check(problem, instance, algorithm)
            if report.valid:
                successes += 1
        results.append(
            HorizonSweepPoint(
                horizon=horizon,
                depth=depth,
                trials=trials,
                success_probability=successes / trials,
            )
        )
    return results
