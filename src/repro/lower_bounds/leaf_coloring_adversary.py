"""The Proposition 3.13 adversary: D-VOL(LeafColoring) = Ω(n).

The process P interacts with a deterministic algorithm A started at a
root ``v0``: every query is answered by lazily growing a binary tree whose
created nodes all carry internal labels (P=1, LC=2, RC=3) and input color
red.  Because A is deterministic and sees only red, whatever color χ0 it
outputs at v0 can be punished: P completes the tree by hanging a leaf with
color χ1 ≠ χ0 on every unmaterialized port.  All leaves of the finished
instance then carry χ1, so the *unique* valid output is all-χ1
(Proposition 3.12's induction) — and A already answered χ0 at the root.

If A uses fewer than n/3 queries the finished tree fits in n nodes, hence
any deterministic algorithm with volume < n/3 fails on some n-node input.

Faithfulness notes:

* Created nodes *commit* to their final degree (internal ⇒ 3): the info A
  receives during the interaction is exactly the info it would receive on
  the finished instance, so re-running A on the finished instance
  reproduces the interactive run verbatim (checked in tests).
* The root commits to two ports (its children), matching the paper's v0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graphs.labelings import (
    Instance,
    Labeling,
    NodeLabel,
    RED,
    other_color,
)
from repro.graphs.port_graph import PortGraph
from repro.model.oracle import NodeInfo
from repro.model.probe import (
    BudgetExceeded,
    ProbeAlgorithm,
    ProbeView,
)
from repro.model.randomness import RandomnessContext, RandomnessModel


class AdversarialTreeOracle:
    """A GraphOracle that grows the Proposition 3.13 tree on demand."""

    ROOT = 1

    def __init__(self, n: int) -> None:
        self._n = n
        self.graph = PortGraph(max_degree=3)
        self.labeling = Labeling()
        self._next_id = self.ROOT
        self._committed_ports: Dict[int, Tuple[int, ...]] = {}
        root = self._new_node(is_root=True)
        assert root == self.ROOT

    # -- GraphOracle interface -------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def node_info(self, node_id: int) -> NodeInfo:
        ports = self._committed_ports[node_id]
        return NodeInfo(
            node_id=node_id,
            degree=len(ports),
            label=self.labeling.get(node_id),
            ports=ports,
        )

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        if port not in self._committed_ports.get(node_id, ()):
            return None
        existing = self.graph.neighbor_at(node_id, port)
        if existing is not None:
            return existing
        # Materialize a fresh internal red node behind this port.
        child = self._new_node()
        self.graph.add_edge(node_id, port, child, 1)
        return child

    # -- construction ------------------------------------------------------
    def _new_node(self, is_root: bool = False) -> int:
        node = self._next_id
        self._next_id += 1
        self.graph.add_node(node)
        if is_root:
            # v0: no parent; children on ports 1 and 2 (proof of Prop 3.13).
            self.labeling[node] = NodeLabel(
                parent=None, left_child=1, right_child=2, color=RED
            )
            self._committed_ports[node] = (1, 2)
        else:
            self.labeling[node] = NodeLabel(
                parent=1, left_child=2, right_child=3, color=RED
            )
            self._committed_ports[node] = (1, 2, 3)
        for port in self._committed_ports[node]:
            self.graph.reserve_port(node, port)
        return node

    def finalize(self, root_output: str) -> Instance:
        """Complete the tree: a χ1-colored leaf on every unbuilt port."""
        chi1 = other_color(root_output)
        for node in list(self.graph.nodes()):
            for port in self._committed_ports[node]:
                if self.graph.neighbor_at(node, port) is None:
                    leaf = self._next_id
                    self._next_id += 1
                    self.graph.add_node(leaf)
                    self.labeling[leaf] = NodeLabel(parent=1, color=chi1)
                    self._committed_ports[leaf] = (1,)
                    self.graph.add_edge(node, port, leaf, 1)
        return Instance(
            graph=self.graph,
            labeling=self.labeling,
            n=self._n,
            name=f"prop313-adversarial-{self.graph.num_nodes}",
            meta={"root": self.ROOT, "chi1": chi1},
        )


@dataclass
class AdversaryOutcome:
    """Result of one adversary-vs-algorithm duel."""

    defeated: bool  # the algorithm produced an invalid output
    exceeded_budget: bool  # the algorithm needed more than the query budget
    queries_used: int
    instance: Optional[Instance]
    root_output: Optional[str]


def duel_leaf_coloring(
    algorithm: ProbeAlgorithm,
    n: int,
    query_budget: Optional[int] = None,
) -> AdversaryOutcome:
    """Run Proposition 3.13's process P against a deterministic algorithm.

    ``query_budget`` defaults to ⌊n/3⌋ − 1, the paper's bound.  Returns
    whether the algorithm was defeated (its root output contradicts the
    unique valid solution of the finished instance) or whether it escaped
    by exceeding the budget — the dichotomy that proves Ω(n) volume.
    """
    if algorithm.is_randomized:
        raise ValueError("Proposition 3.13 concerns deterministic algorithms")
    budget = (n // 3) - 1 if query_budget is None else query_budget
    oracle = AdversarialTreeOracle(n)
    view = ProbeView(
        oracle,
        oracle.ROOT,
        RandomnessContext(None, RandomnessModel.DETERMINISTIC, oracle.ROOT),
        max_queries=budget,
    )
    try:
        root_output = algorithm.run(view)
    except BudgetExceeded:
        return AdversaryOutcome(
            defeated=False,
            exceeded_budget=True,
            queries_used=view.queries,
            instance=None,
            root_output=None,
        )
    instance = oracle.finalize(root_output)
    # The unique valid output colors every node χ1 ≠ root_output; whatever
    # the other nodes answer, the global labeling is invalid.
    defeated = root_output != instance.meta["chi1"]
    return AdversaryOutcome(
        defeated=defeated,
        exceeded_budget=False,
        queries_used=view.queries,
        instance=instance,
        root_output=root_output,
    )
