"""Back-compat shim: the Prop 3.13 adversary moved to ``repro.adversary``.

The bespoke lazy-oracle implementation that used to live here was folded
into the unified interactive-adversary engine; see
:mod:`repro.adversary.leaf_coloring` and :mod:`repro.adversary.engine`.
"""

from repro.adversary.leaf_coloring import (  # noqa: F401
    AdversarialTreeOracle,
    AdversaryOutcome,
    Prop313Adversary,
    duel_leaf_coloring,
)

__all__ = [
    "AdversarialTreeOracle",
    "AdversaryOutcome",
    "Prop313Adversary",
    "duel_leaf_coloring",
]
