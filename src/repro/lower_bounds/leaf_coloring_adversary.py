"""Back-compat shim: the Prop 3.13 adversary moved to ``repro.adversary``.

The bespoke lazy-oracle implementation that used to live here was folded
into the unified interactive-adversary engine; see
:mod:`repro.adversary.leaf_coloring` and :mod:`repro.adversary.engine`.
Importing this module warns; import the new location directly.
"""

import warnings

warnings.warn(
    "repro.lower_bounds.leaf_coloring_adversary is deprecated; import "
    "repro.adversary.leaf_coloring instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.adversary.leaf_coloring import (  # noqa: E402,F401
    AdversarialTreeOracle,
    AdversaryOutcome,
    Prop313Adversary,
    duel_leaf_coloring,
)

__all__ = [
    "AdversarialTreeOracle",
    "AdversaryOutcome",
    "Prop313Adversary",
    "duel_leaf_coloring",
]
