"""Back-compat shim: the Prop 5.20 adversary moved to ``repro.adversary``.

The bespoke lazy-oracle implementation that used to live here was folded
into the unified interactive-adversary engine; see
:mod:`repro.adversary.hierarchical` and :mod:`repro.adversary.engine`.
Importing this module warns; import the new location directly.
"""

import warnings

warnings.warn(
    "repro.lower_bounds.hierarchical_adversary is deprecated; import "
    "repro.adversary.hierarchical instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.adversary.hierarchical import (  # noqa: E402,F401
    AdversarialTHCOracle,
    Prop520Adversary,
    THCAdversaryOutcome,
    duel_hierarchical,
)

__all__ = [
    "AdversarialTHCOracle",
    "Prop520Adversary",
    "THCAdversaryOutcome",
    "duel_hierarchical",
]
