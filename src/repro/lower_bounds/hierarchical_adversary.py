"""Back-compat shim: the Prop 5.20 adversary moved to ``repro.adversary``.

The bespoke lazy-oracle implementation that used to live here was folded
into the unified interactive-adversary engine; see
:mod:`repro.adversary.hierarchical` and :mod:`repro.adversary.engine`.
"""

from repro.adversary.hierarchical import (  # noqa: F401
    AdversarialTHCOracle,
    Prop520Adversary,
    THCAdversaryOutcome,
    duel_hierarchical,
)

__all__ = [
    "AdversarialTHCOracle",
    "Prop520Adversary",
    "THCAdversaryOutcome",
    "duel_hierarchical",
]
