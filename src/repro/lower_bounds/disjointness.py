"""Communication-complexity lower bounds via disjointness (Section 2.5).

Theorem 2.9 (Eden–Rosenbaum): if ``(E, g)`` embeds a function f and every
query can be answered with ≤ B bits of Alice↔Bob communication, then any
algorithm computing g needs Ω(R(f)/B) queries.  Proposition 4.9
instantiates this for BalancedTree with f = disjointness (R(disj) = Ω(N),
Theorem 2.10 / Kalyanasundaram–Schnitger): in the Figure 5 embedding only
leaf labels depend on (a, b) — coordinate i's pair (u_i, w_i) needs
exactly the two bits (a_i, b_i) — so every query costs ≤ 2 bits and any
algorithm solving BalancedTree needs Ω(N) = Ω(n) queries.

:class:`TwoPartyReferee` executes a probe algorithm on E(a, b) while
keeping Alice's and Bob's books: each time a query's *response* depends on
an (a_i, b_i) the referee charges the two bits (once per coordinate per
direction, since both parties cache what they learned — standard protocol
bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from repro.graphs.generators import disjointness_embedding
from repro.graphs.labelings import BALANCED, Instance
from repro.model.oracle import NodeInfo, StaticOracle
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import (
    RandomnessContext,
    TapeStore,
)


class _ChargingOracle:
    """Wraps the embedding's oracle; charges bits on input-dependent reads."""

    def __init__(self, instance: Instance) -> None:
        self._inner = StaticOracle(instance)
        self._coordinate_of: Dict[int, int] = instance.meta["coordinate_of"]
        self.bits_exchanged = 0
        self._alice_knows: Set[int] = set()  # coordinates of b Alice learned
        self._bob_knows: Set[int] = set()  # coordinates of a Bob learned

    @property
    def n(self) -> int:
        return self._inner.n

    def node_info(self, node_id: int) -> NodeInfo:
        self._charge(node_id)
        return self._inner.node_info(node_id)

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        endpoint = self._inner.resolve(node_id, port)
        if endpoint is not None:
            self._charge(endpoint)
        return endpoint

    def _charge(self, node_id: int) -> None:
        """Answering for a leaf reveals its labels ⇒ needs a_i and b_i."""
        coord = self._coordinate_of.get(node_id)
        if coord is None:
            return
        if coord not in self._alice_knows:
            self._alice_knows.add(coord)
            self.bits_exchanged += 1  # Bob sends b_i to Alice
        if coord not in self._bob_knows:
            self._bob_knows.add(coord)
            self.bits_exchanged += 1  # Alice sends a_i to Bob


@dataclass
class TwoPartyRun:
    """One simulated execution with its communication transcript."""

    queries: int
    bits_exchanged: int
    output: object
    g_value: int
    disj_value: int

    @property
    def correct(self) -> bool:
        return self.g_value == self.disj_value


def simulate_two_party(
    algorithm: ProbeAlgorithm,
    a: Sequence[int],
    b: Sequence[int],
    seed: int = 0,
) -> TwoPartyRun:
    """Alice and Bob jointly run ``algorithm`` from the root of E(a, b).

    ``g(E(a, b))`` is read off the root's output: (B, ·) ⇔ the labeling is
    globally compatible ⇔ disj(a, b) = 1 (Proposition 4.9).  The bits
    exchanged upper-bound the communication of the induced protocol, so
    over many (a, b) the query count obeys queries ≥ bits/2.
    """
    instance = disjointness_embedding(a, b)
    oracle = _ChargingOracle(instance)
    root = instance.meta["root"]
    tapes = TapeStore(seed) if algorithm.is_randomized else None
    view = ProbeView(
        oracle,
        root,
        # ProbeView binds its visited-set predicate to the context.
        RandomnessContext(tapes, algorithm.randomness, root),
    )
    output = algorithm.run(view)
    g_value = 1 if isinstance(output, tuple) and output[0] == BALANCED else 0
    return TwoPartyRun(
        queries=view.queries,
        bits_exchanged=oracle.bits_exchanged,
        output=output,
        g_value=g_value,
        disj_value=instance.meta["disjoint"],
    )


def communication_cost_of_query_plan(run: TwoPartyRun) -> float:
    """Theorem 2.9's accounting: queries ≥ bits / B with B = 2."""
    return run.bits_exchanged / 2.0
