"""Back-compat shim: the Prop 4.9 referee moved to ``repro.adversary``.

The bespoke charging oracle that used to live here was folded into the
unified interactive-adversary engine (a recording oracle plus a
transcript-auditable bit charge); see
:mod:`repro.adversary.disjointness` and :mod:`repro.adversary.engine`.
Importing this module warns; import the new location directly.
"""

import warnings

warnings.warn(
    "repro.lower_bounds.disjointness is deprecated; import "
    "repro.adversary.disjointness instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.adversary.disjointness import (  # noqa: E402,F401
    Prop49Referee,
    TwoPartyReferee,
    TwoPartyRun,
    bits_from_transcript,
    communication_cost_of_query_plan,
    simulate_two_party,
)

__all__ = [
    "Prop49Referee",
    "TwoPartyReferee",
    "TwoPartyRun",
    "bits_from_transcript",
    "communication_cost_of_query_plan",
    "simulate_two_party",
]
