"""Execution subsystem: pluggable backends and sweep orchestration.

The science code (model / problems / algorithms) defines what a run *is*;
this package decides how runs are *dispatched* — serially, over a process
pool, or batched with shared oracles — and orchestrates whole sweeps of
runs declaratively.  See README.md ("Choosing a backend") for the guide.
"""

from repro.exec.backends import (
    BatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepPoint,
    SweepResult,
    SweepSpec,
    cache_from_env,
    run_sweep,
    run_sweeps,
)

__all__ = [
    "BatchBackend",
    "ExecutionBackend",
    "InstanceFamily",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "cache_from_env",
    "get_backend",
    "run_sweep",
    "run_sweeps",
]
