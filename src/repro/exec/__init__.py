"""Execution subsystem: pluggable backends and sweep orchestration.

The science code (model / problems / algorithms) defines what a run *is*;
this package decides how runs are *dispatched* — serially, over a process
pool, or batched with shared oracles — and orchestrates whole sweeps of
runs declaratively.  See README.md ("Choosing a backend") for the guide.
"""

from repro.exec.backends import (
    BatchBackend,
    ExecutionBackend,
    FixedInstanceFactory,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
)
from repro.exec.shm import (
    ShmInstanceHandle,
    ShmPublishError,
    attach_instance,
    attached_instance,
    publish_instance,
    published_segments,
    unpublish,
    unpublish_all,
)
from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepPoint,
    SweepResult,
    SweepSpec,
    cache_from_env,
    run_sweep,
    run_sweeps,
)

__all__ = [
    "BatchBackend",
    "ExecutionBackend",
    "FixedInstanceFactory",
    "InstanceFamily",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShmInstanceHandle",
    "ShmPublishError",
    "SweepCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "attach_instance",
    "attached_instance",
    "cache_from_env",
    "get_backend",
    "publish_instance",
    "published_segments",
    "run_sweep",
    "run_sweeps",
    "unpublish",
    "unpublish_all",
]
