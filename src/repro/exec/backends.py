"""Pluggable execution backends for whole-instance runs.

The model layer defines *what* one per-node execution is
(:func:`~repro.model.probe.execute_at`); this module defines *how* the
executions of a whole-instance run are dispatched.  Three strategies:

* :class:`SerialBackend` — one process, nodes in iteration order.  This
  is the default everywhere and is what the paper's definitions
  describe (``SerialBackend(compiled=False)`` is the uncompiled
  *reference path*, see below).
* :class:`ProcessPoolBackend` — chunked fan-out of start nodes over a
  ``concurrent.futures`` process pool.  Results are merged back in the
  original node order, so the returned :class:`~repro.model.runner.RunResult`
  is **bitwise identical** to the serial one.
* :class:`BatchBackend` — serial execution with an oracle cache, so
  repeated runs over the same instance (ablations, the trial loop of
  :func:`~repro.model.runner.success_probability`) do not rebuild the
  :class:`~repro.model.oracle.StaticOracle` each time.

Why parallel fan-out is sound here: a node's random tape is seeded by the
string ``repro-tape:{seed}:{node_id}`` (see
:class:`~repro.model.randomness.TapeStore`), so the bits any execution
reads depend only on ``(seed, node_id, index)`` — never on which process
generates them or in what order executions run.  Each worker rebuilds its
own :class:`TapeStore` from the same seed and observes exactly the bits
the shared serial store would have produced.

Every backend **auto-compiles** static instances by default: the instance
is compiled once per whole-instance run (and once per
:meth:`~ExecutionBackend.success_probability` trial batch when the
factory keeps returning the same instance) into a
:class:`~repro.model.oracle.CompiledOracle`, and the per-node executions
use the O(1) incremental-DIST engine.  Pass ``compiled=False`` (or the
backend spec ``"reference"``) to run the uncompiled reference engine —
``StaticOracle`` plus BFS-on-demand ``DIST`` — which produces bitwise
identical results, just slower; the property suite under ``tests/perf``
enforces the equivalence.

Two fast paths sit on top of the compiled engine (both bitwise-identical
to the scalar serial semantics, both enforced by the equivalence suites):

* **Batched flat-array kernel** — deterministic, unbudgeted runs of
  algorithms that implement
  :meth:`~repro.model.probe.ProbeAlgorithm.run_node_batch` (the
  full-gather family) advance over the CSR arrays directly
  (:mod:`repro.model.batched`) instead of through per-query
  :class:`~repro.model.probe.ProbeView` bookkeeping.
* **Zero-copy shared memory** — :class:`ProcessPoolBackend` publishes
  the frozen instance once per dispatch into a
  :mod:`multiprocessing.shared_memory` segment (:mod:`repro.exec.shm`)
  and ships only an O(1) :class:`~repro.exec.shm.ShmInstanceHandle` plus
  chunk indices to workers, which attach zero-copy and cache the
  compiled oracle per process.  ``shared_memory=False`` (or the spec
  suffix ``"process:N:pickle"``) preserves the whole-instance-per-chunk
  pickle path bit-for-bit; the segment is unlinked in a ``finally`` on
  every dispatch, with an ``atexit`` backstop.

Fault tolerance: :class:`ProcessPoolBackend` dispatches are *supervised*
by default — per-chunk timeouts, worker-crash detection, and a
:class:`~repro.faults.retry.RetryPolicy` that re-dispatches only the
lost chunks, degrading each chunk along the documented chain
shm → pickle transport → serial in-process when retries keep failing.
Because every chunk outcome is a pure function of its seeds, a run that
survived faults is bitwise-identical to the fault-free run; what
happened is recorded in the structured
:class:`~repro.faults.retry.FaultLog` attached to the result.  See
DESIGN.md §11 for the fault model and the determinism argument.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exec import shm as shm_layer
from repro.faults.plan import ShmAttachError, wrap_payload
from repro.faults.retry import FaultEvent, FaultLog, RetryPolicy
from repro.model.implicit import InstanceSpec, as_oracle, iter_node_ids
from repro.model.probe import CostProfile, ProbeAlgorithm, execute_at
from repro.model.randomness import TapeStore
from repro.model.runner import RunResult


def _make_oracle(instance, compiled: bool):
    """One instance source's oracle: fast path or reference semantics.

    ``mode="auto"`` is the compiled table for materialized instances and
    the lazy bounded-memory :class:`~repro.model.implicit.ImplicitOracle`
    for an :class:`~repro.model.implicit.InstanceSpec`; the reference
    path always gets :class:`StaticOracle` semantics (a spec is
    materialized first — small n only, which is all the reference engine
    can run anyway).
    """
    return as_oracle(instance, mode="auto" if compiled else "reference")


@dataclass(frozen=True)
class TrialOutcome:
    """One solve-and-check trial of a success-probability experiment.

    Trial ``i`` always runs under seed ``base_seed + i`` — every node's
    tape is derived from the string ``repro-tape:{base_seed + i}:{node}``,
    so the outcome is a pure function of ``(base_seed, trial, node)`` and
    any backend (or any resumed run) reproduces it bit for bit.  The
    per-trial cost maxima and the total random-bit consumption ride along
    so streaming consumers (the Monte-Carlo engine) can keep quantile
    sketches and conformance tests can compare tape draws, not just
    verdicts.
    """

    trial: int
    seed: int
    valid: bool
    max_volume: int
    max_distance: int
    max_queries: int
    random_bits: int


def _execute_nodes(
    oracle,
    algorithm: ProbeAlgorithm,
    nodes: Sequence[int],
    seed: int,
    max_volume: Optional[int],
    max_queries: Optional[int],
    distance_mode: str = "incremental",
) -> List[Tuple[int, object, CostProfile]]:
    """The shared inner loop: run ``algorithm`` from each node in order."""
    if (
        distance_mode == "incremental"
        and max_volume is None
        and max_queries is None
        and not algorithm.is_randomized
    ):
        # Batched flat-array fast path: only for deterministic,
        # unbudgeted runs on the compiled engine (truncation and tape
        # semantics stay with the scalar loop below, which is also the
        # reference path `distance_mode="reference"` always takes).
        batched = algorithm.run_node_batch(oracle, nodes)
        if batched is not None:
            return batched
    tapes = TapeStore(seed) if algorithm.is_randomized else None
    out: List[Tuple[int, object, CostProfile]] = []
    for node in nodes:
        output, profile = execute_at(
            oracle,
            algorithm,
            node,
            tape_store=tapes,
            max_volume=max_volume,
            max_queries=max_queries,
            distance_mode=distance_mode,
        )
        out.append((node, output, profile))
    return out


def _run_chunk(payload: bytes) -> List[Tuple[int, object, CostProfile]]:
    """Worker entry point: one contiguous chunk of start nodes."""
    (
        instance,
        algorithm,
        nodes,
        seed,
        max_volume,
        max_queries,
        compiled,
    ) = pickle.loads(payload)
    oracle = _make_oracle(instance, compiled)
    return _execute_nodes(
        oracle,
        algorithm,
        nodes,
        seed,
        max_volume,
        max_queries,
        distance_mode="incremental" if compiled else "reference",
    )


def _run_chunk_shm(payload: bytes) -> List[Tuple[int, object, CostProfile]]:
    """Worker entry point: a chunk against a shared-memory instance.

    The payload carries an O(1) :class:`~repro.exec.shm.ShmInstanceHandle`
    instead of the pickled instance; the attachment (zero-copy CSR views
    + compiled oracle) is cached per worker process, so every chunk after
    a worker's first is pure dispatch.
    """
    (
        handle,
        algorithm,
        nodes,
        seed,
        max_volume,
        max_queries,
    ) = pickle.loads(payload)
    _, oracle = shm_layer.attached_instance(handle)
    return _execute_nodes(
        oracle,
        algorithm,
        nodes,
        seed,
        max_volume,
        max_queries,
        distance_mode="incremental",
    )


class FixedInstanceFactory:
    """``instance_factory(trial) -> instance`` for a fixed instance.

    Module-level and attribute-only, so it pickles into process-pool
    workers (a lambda closing over the instance would not).  Lives here
    (rather than the Monte-Carlo engine that popularized it) so the
    process-pool backend can recognize fixed-instance trial batches and
    publish the one instance to shared memory; re-exported unchanged
    from :mod:`repro.montecarlo.engine`.
    """

    def __init__(self, instance) -> None:
        self.instance = instance

    def __call__(self, trial: int):
        return self.instance


def _trial_outcomes(
    backend: "ExecutionBackend",
    problem,
    instance_factory,
    algorithm: ProbeAlgorithm,
    trial_indices: Sequence[int],
    base_seed: int,
    max_volume: Optional[int],
    max_queries: Optional[int],
) -> List[TrialOutcome]:
    """The shared trial loop: solve-and-check each trial on ``backend``."""
    from repro.model.runner import solve_and_check

    outcomes: List[TrialOutcome] = []
    for trial in trial_indices:
        instance = instance_factory(trial)
        report = solve_and_check(
            problem,
            instance,
            algorithm,
            seed=base_seed + trial,
            max_volume=max_volume,
            max_queries=max_queries,
            backend=backend,
        )
        run = report.run
        outcomes.append(
            TrialOutcome(
                trial=trial,
                seed=base_seed + trial,
                valid=bool(report.valid),
                max_volume=run.max_volume,
                max_distance=run.max_distance,
                max_queries=run.max_queries,
                random_bits=run.total_random_bits,
            )
        )
    return outcomes


def _run_trials(payload: bytes) -> List[TrialOutcome]:
    """Worker entry point: a chunk of independent success trials."""
    (
        problem,
        instance_factory,
        algorithm,
        trial_indices,
        base_seed,
        max_volume,
        max_queries,
        compiled,
    ) = pickle.loads(payload)
    # Amortize oracle compilation if the factory repeats an instance.
    with BatchBackend(compiled=compiled) as backend:
        return _trial_outcomes(
            backend,
            problem,
            instance_factory,
            algorithm,
            trial_indices,
            base_seed,
            max_volume,
            max_queries,
        )


def _run_trials_shm(payload: bytes) -> List[TrialOutcome]:
    """Worker entry point: fixed-instance trials via shared memory.

    Only dispatched for :class:`FixedInstanceFactory` batches, so the one
    attached instance (and its per-worker cached compiled oracle) serves
    every trial of every chunk this worker sees for the run.
    """
    (
        handle,
        problem,
        algorithm,
        trial_indices,
        base_seed,
        max_volume,
        max_queries,
    ) = pickle.loads(payload)
    instance, oracle = shm_layer.attached_instance(handle)
    return _trial_outcomes(
        _PinnedOracleBackend(oracle),
        problem,
        FixedInstanceFactory(instance),
        algorithm,
        trial_indices,
        base_seed,
        max_volume,
        max_queries,
    )


class ExecutionBackend(abc.ABC):
    """How the per-node executions of a whole-instance run are dispatched.

    Every backend must produce results *identical* to
    :class:`SerialBackend` — backends may change wall-clock behavior and
    resource usage, never observable outputs.
    """

    name: str = "backend"

    @property
    def oracle_mode(self) -> str:
        """``"compiled"`` or ``"reference"`` (recorded in bench artifacts)."""
        return "compiled" if getattr(self, "compiled", True) else "reference"

    @abc.abstractmethod
    def run(
        self,
        instance,
        algorithm: ProbeAlgorithm,
        nodes: Optional[Iterable[int]] = None,
        *,
        seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> RunResult:
        """Execute ``algorithm`` from every node (or the given subset)."""

    def run_trial_batch(
        self,
        problem,
        instance_factory,
        algorithm: ProbeAlgorithm,
        trial_indices: Sequence[int],
        *,
        base_seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> List[TrialOutcome]:
        """Solve-and-check the given trials; one :class:`TrialOutcome` each.

        Trial ``i`` runs under seed ``base_seed + i`` regardless of which
        backend dispatches it or how the indices are batched, so the
        outcome list for a set of indices is backend-independent.  This is
        the primitive both :meth:`success_probability` (one fixed batch)
        and the streaming Monte-Carlo engine (adaptive batches) build on.
        """
        return _trial_outcomes(
            self,
            problem,
            instance_factory,
            algorithm,
            list(trial_indices),
            base_seed,
            max_volume,
            max_queries,
        )

    def success_probability(
        self,
        problem,
        instance_factory,
        algorithm: ProbeAlgorithm,
        trials: int,
        *,
        base_seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> float:
        """Fraction of independent trials the algorithm solved Π on.

        One fixed-count batch through :meth:`run_trial_batch`, so every
        backend's trial dispatch (oracle caching, process fan-out) is
        shared with the Monte-Carlo engine and the two can never diverge.
        """
        if trials <= 0:
            raise ValueError("success_probability needs at least one trial")
        outcomes = self.run_trial_batch(
            problem,
            instance_factory,
            algorithm,
            range(trials),
            base_seed=base_seed,
            max_volume=max_volume,
            max_queries=max_queries,
        )
        return sum(o.valid for o in outcomes) / trials

    # Backends that hold external resources (pools) override these.
    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _resolve_nodes(self, instance, nodes) -> List[int]:
        if nodes is not None:
            return list(nodes)
        return list(iter_node_ids(instance))

    def _assemble(
        self,
        instance,
        algorithm: ProbeAlgorithm,
        triples: Iterable[Tuple[int, object, CostProfile]],
    ) -> RunResult:
        result = RunResult(algorithm=algorithm.name, instance=instance.name)
        for node, output, profile in triples:
            result.outputs[node] = output
            result.profiles[node] = profile
        return result


class SerialBackend(ExecutionBackend):
    """One process, nodes in order: the paper's execution semantics.

    ``compiled=True`` (the default) compiles the instance's oracle once
    per whole-instance run and uses the incremental-DIST engine;
    ``compiled=False`` is the *reference path* — ``StaticOracle`` plus
    BFS-on-demand ``DIST`` — with bitwise-identical results.
    """

    name = "serial"

    def __init__(self, compiled: bool = True) -> None:
        self.compiled = compiled
        if not compiled:
            self.name = "reference"

    @property
    def _distance_mode(self) -> str:
        return "incremental" if self.compiled else "reference"

    def run(
        self,
        instance,
        algorithm: ProbeAlgorithm,
        nodes: Optional[Iterable[int]] = None,
        *,
        seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> RunResult:
        node_list = self._resolve_nodes(instance, nodes)
        oracle = self._oracle_for(instance)
        triples = _execute_nodes(
            oracle,
            algorithm,
            node_list,
            seed,
            max_volume,
            max_queries,
            distance_mode=self._distance_mode,
        )
        return self._assemble(instance, algorithm, triples)

    def run_trial_batch(
        self,
        problem,
        instance_factory,
        algorithm: ProbeAlgorithm,
        trial_indices: Sequence[int],
        *,
        base_seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> List[TrialOutcome]:
        """Trial batch with the oracle compiled once per batch.

        A fixed-instance factory (the Proposition 3.12 shape) would
        otherwise recompile the same instance every trial; routing the
        batch through a transient :class:`BatchBackend` compiles it once.
        """
        with BatchBackend(compiled=self.compiled) as batch:
            return _trial_outcomes(
                batch,
                problem,
                instance_factory,
                algorithm,
                list(trial_indices),
                base_seed,
                max_volume,
                max_queries,
            )

    def _oracle_for(self, instance):
        return _make_oracle(instance, self.compiled)


class BatchBackend(SerialBackend):
    """Serial execution with an oracle cache for repeated instances.

    ``success_probability`` with a fixed-instance factory, and ablation
    loops that re-run many algorithms/seeds on one instance, construct a
    fresh :class:`StaticOracle` per call under :class:`SerialBackend`;
    this backend builds it once per distinct instance and reuses it.
    """

    name = "batch"

    def __init__(self, max_cached: int = 64, compiled: bool = True) -> None:
        super().__init__(compiled=compiled)
        self.name = "batch"
        if max_cached < 1:
            raise ValueError("max_cached must be positive")
        self._max_cached = max_cached
        # id() keys are only stable while the object lives; the oracle
        # holds a strong reference to its instance, keeping the id valid
        # for as long as the entry is cached.  Ordered least- to
        # most-recently *used*: hits re-rank, eviction pops the front.
        self._oracles: "OrderedDict[int, object]" = OrderedDict()

    def run_trial_batch(self, *args, **kwargs) -> List[TrialOutcome]:
        # This backend already amortizes repeated instances itself; the
        # SerialBackend override would wrap it in yet another batch.
        return ExecutionBackend.run_trial_batch(self, *args, **kwargs)

    def _oracle_for(self, instance):
        key = id(instance)
        oracle = self._oracles.get(key)
        if oracle is not None and oracle.instance is instance:
            self._oracles.move_to_end(key)
            return oracle
        oracle = _make_oracle(instance, self.compiled)
        if key in self._oracles:
            # A dead instance's id was reused: the stale entry must go
            # regardless of capacity.
            del self._oracles[key]
        elif len(self._oracles) >= self._max_cached:
            self._oracles.popitem(last=False)
        self._oracles[key] = oracle
        return oracle

    def close(self) -> None:
        self._oracles.clear()


class _PinnedOracleBackend(SerialBackend):
    """Serial execution against one pre-compiled oracle (shm workers).

    A worker that attached a shared-memory instance already holds its
    compiled oracle; this backend hands that oracle to every run over
    the attached instance instead of recompiling, and — unlike its
    parent — does not wrap trial batches in a transient
    :class:`BatchBackend` (the pinned oracle *is* the cache).
    """

    name = "process-shm-worker"

    def __init__(self, oracle) -> None:
        super().__init__(compiled=True)
        self._pinned = oracle

    def run_trial_batch(self, *args, **kwargs) -> List[TrialOutcome]:
        return ExecutionBackend.run_trial_batch(self, *args, **kwargs)

    def _oracle_for(self, instance):
        if instance is self._pinned.instance:
            return self._pinned
        return super()._oracle_for(instance)


#: Fault kinds the injector may apply per transport (shm-only kinds make
#: no sense on the pickle transport; publish faults are applied at the
#: publish step, not per chunk).
_PICKLE_FAULTS = (
    "kill-worker",
    "delay-chunk",
    "transient-oserror",
    "corrupt-payload",
)
_SHM_FAULTS = _PICKLE_FAULTS + ("shm-attach-fail",)

# "shm unavailable" should be one actionable warning per process, not a
# crash and not a silent slowdown.
_SHM_FALLBACK_WARNED = False


def _warn_shm_fallback(exc: Exception) -> None:
    global _SHM_FALLBACK_WARNED
    if _SHM_FALLBACK_WARNED:
        return
    _SHM_FALLBACK_WARNED = True
    warnings.warn(
        "shared-memory transport unavailable "
        f"({type(exc).__name__}: {exc}); falling back to the pickle "
        "transport for this and future dispatches needing it. Results "
        "are identical, only slower; pass shared_memory=False (spec "
        "'process:N:pickle') to silence this, or free /dev/shm space "
        "to restore the zero-copy path.",
        RuntimeWarning,
        stacklevel=3,
    )


class ProcessPoolBackend(ExecutionBackend):
    """Chunked fan-out of start nodes over a supervised process pool.

    The node list is split into contiguous chunks, each chunk runs the
    plain serial loop in a worker, and the chunk results are merged back
    in submission order — so outputs, profiles and iteration order are
    identical to :class:`SerialBackend` (see the module docstring for why
    the random tapes agree bit-for-bit).

    ``success_probability`` fans the *trials* out instead, which is the
    better unit of work when each trial draws a fresh instance.  If the
    work items cannot be pickled (e.g. an instance factory defined inside
    a test function), it silently falls back to the serial path.

    With ``shared_memory=True`` (the default on the compiled path) the
    instance is *published once per dispatch* to a shared-memory segment
    and chunks carry only an O(1) handle; workers attach zero-copy and
    cache the compiled oracle per process.  The segment is unlinked in a
    ``finally`` whether the dispatch succeeds or a worker raises.
    ``shared_memory=False`` preserves the instance-per-chunk pickle path
    bit-for-bit (results are identical either way — only the transport
    differs); the reference path (``compiled=False``) always pickles.

    Supervision (``supervised=True``, the default): each dispatch tracks
    its chunks individually, detects crashed workers
    (``BrokenProcessPool``), hung chunks (``timeout`` seconds per chunk,
    off by default), and corrupt payloads, and re-dispatches *only the
    lost chunks* under ``retry`` (a :class:`~repro.faults.retry.RetryPolicy`;
    backoff jitter is seeded from the dispatch seed, so reruns wait the
    exact same schedule).  A chunk that keeps failing degrades
    shm → pickle transport → serial in-process; the serial stage always
    completes or raises the chunk's real exception.  Worker *application*
    errors skip straight to serial after ``retry.app_attempts`` tries —
    they are usually deterministic, and serial reproduces the real
    traceback.  Every handled failure is recorded in :attr:`fault_log`
    (a snapshot rides on each :class:`~repro.model.runner.RunResult`).
    ``supervised=False`` restores the bare gather loop (no timeouts, no
    retries, first worker exception propagates) — the zero-overhead
    baseline the bench suite compares against.

    ``fault_injector`` (a :class:`~repro.faults.plan.FaultInjector`) is
    the chaos-harness hook: ``None`` (the default) costs one ``is None``
    check per chunk dispatch.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        compiled: bool = True,
        shared_memory: bool = True,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        supervised: bool = True,
        fault_injector=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None for no limit)")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.compiled = compiled
        self.shared_memory = shared_memory
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.supervised = supervised
        #: Everything supervision handled over this backend's lifetime;
        #: per-dispatch snapshots ride on the results themselves.
        self.fault_log = FaultLog()
        self._injector = fault_injector
        self._dispatches = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        # Segments published by dispatches that have not unlinked yet;
        # normally drained by the per-dispatch ``finally``, re-drained by
        # close() as a backstop (shm's atexit hook is the last resort).
        self._live_handles: Set[object] = set()

    # ------------------------------------------------------------------
    # Supervision: classify → retry → degrade (shm → pickle → serial)
    # ------------------------------------------------------------------
    def _reset_pool(self) -> None:
        """Tear down a broken/hung pool so the next round gets a fresh one."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for proc in processes:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass

    def _dispatch_supervised(
        self,
        scope: str,
        chunks: List[list],
        transport: str,
        payloads: List[bytes],
        workers_map: Dict[str, Callable[[bytes], list]],
        pickle_payload: Callable[[list], bytes],
        serial_chunk: Callable[[list], list],
        seed: int,
    ) -> List[list]:
        """Run every chunk to completion; return per-chunk results in order.

        The loop is round-based: submit all pending chunks, gather with
        the per-chunk timeout, classify each failure, decide retry vs
        degrade, reset the pool once per round if it broke, sleep the
        round's largest due backoff, repeat.  A chunk on the ``serial``
        stage executes in-process at the top of the next round — it
        either completes or raises the chunk's real exception to the
        caller (the dispatch's ``finally`` still unpublishes).
        """
        retry = self.retry
        injector = self._injector
        count = len(chunks)
        results: List[Optional[list]] = [None] * count
        transports = [transport] * count
        blobs: List[bytes] = list(payloads)
        tries = [0] * count  # lifetime dispatch count: fault/backoff coordinate
        stage_tries = [0] * count  # tries on the current transport stage
        app_tries = [0] * count  # worker application errors seen
        pending = list(range(count))
        while pending:
            for idx in pending:
                if transports[idx] == "serial":
                    results[idx] = serial_chunk(chunks[idx])
            pending = [i for i in pending if transports[i] != "serial"]
            if not pending:
                break
            submitted: List[Tuple[int, object]] = []
            failures: List[Tuple[int, str, str]] = []  # (chunk, kind, detail)
            broken = False
            for idx in pending:
                worker = workers_map[transports[idx]]
                blob = blobs[idx]
                if injector is not None:
                    allowed = (
                        _SHM_FAULTS
                        if transports[idx] == "shm"
                        else _PICKLE_FAULTS
                    )
                    fault = injector.fault_for(scope, idx, tries[idx], allowed)
                    if fault is not None:
                        self.fault_log.record(
                            FaultEvent(
                                f"injected:{fault}",
                                scope,
                                idx,
                                tries[idx],
                                "injected",
                            )
                        )
                        worker, blob = wrap_payload(
                            fault, injector.plan, worker, blob
                        )
                try:
                    future = self._pool().submit(worker, blob)
                except (BrokenProcessPool, RuntimeError) as exc:
                    broken = True
                    failures.append((idx, "worker-crash", f"submit: {exc}"))
                    continue
                submitted.append((idx, future))
            timed_out = False
            for idx, future in submitted:
                # After the first timeout the round is lost anyway: poll
                # the rest briefly to salvage chunks that did finish.
                wait = 0.05 if timed_out else self.timeout
                try:
                    results[idx] = future.result(timeout=wait)
                except FuturesTimeout:
                    timed_out = True
                    broken = True
                    future.cancel()
                    failures.append(
                        (idx, "timeout", f"chunk exceeded {self.timeout:g}s")
                    )
                except BrokenProcessPool as exc:
                    broken = True
                    failures.append((idx, "worker-crash", str(exc)))
                except (pickle.UnpicklingError, EOFError) as exc:
                    failures.append(
                        (
                            idx,
                            "corrupt-payload",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                except Exception as exc:
                    if transports[idx] == "shm" and isinstance(
                        exc, (ShmAttachError, FileNotFoundError)
                    ):
                        kind = "shm-attach"
                    else:
                        kind = "chunk-error"
                    failures.append(
                        (idx, kind, f"{type(exc).__name__}: {exc}")
                    )
            if broken:
                self._reset_pool()
            pending = []
            round_delay = 0.0
            for idx, kind, detail in failures:
                attempt = tries[idx]
                tries[idx] += 1
                stage_tries[idx] += 1
                action = "retry"
                if kind == "chunk-error":
                    # Application errors are usually deterministic: after
                    # app_attempts tries, reproduce the real exception
                    # serially instead of burning the full retry budget.
                    app_tries[idx] += 1
                    if app_tries[idx] >= retry.app_attempts:
                        action = "degrade:serial"
                if kind == "shm-attach":
                    # The segment is gone for every future attempt too.
                    action = "degrade:pickle"
                elif (
                    action == "retry"
                    and stage_tries[idx] >= retry.max_attempts
                ):
                    action = (
                        "degrade:pickle"
                        if transports[idx] == "shm"
                        else "degrade:serial"
                    )
                if action == "degrade:pickle":
                    transports[idx] = "pickle"
                    stage_tries[idx] = 0
                    try:
                        blobs[idx] = pickle_payload(chunks[idx])
                    except Exception:
                        action = "degrade:serial"
                if action == "degrade:serial":
                    transports[idx] = "serial"
                self.fault_log.record(
                    FaultEvent(kind, scope, idx, attempt, action, detail)
                )
                if action == "retry":
                    round_delay = max(
                        round_delay,
                        retry.delay(f"{seed}:{scope}:{idx}", attempt),
                    )
                pending.append(idx)
            if round_delay > 0:
                time.sleep(round_delay)
        return results

    # ------------------------------------------------------------------
    def run(
        self,
        instance,
        algorithm: ProbeAlgorithm,
        nodes: Optional[Iterable[int]] = None,
        *,
        seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> RunResult:
        node_list = self._resolve_nodes(instance, nodes)
        chunks = self._chunk(node_list)
        serial = self.workers == 1 or len(chunks) <= 1
        self._dispatches += 1
        scope = f"run:{self._dispatches}"
        mark = len(self.fault_log)
        handle = None
        payloads: List[bytes] = []
        if (
            not serial
            and self.shared_memory
            and self.compiled
            # An InstanceSpec is already an O(1) payload — pickling it
            # per chunk beats publishing (there is no graph to share);
            # each worker serves its chunk from its own ImplicitOracle.
            and not isinstance(instance, InstanceSpec)
        ):
            handle = self._publish(instance, scope)
        if handle is not None:
            try:
                payloads = [
                    pickle.dumps(
                        (handle, algorithm, chunk, seed, max_volume,
                         max_queries)
                    )
                    for chunk in chunks
                ]
            except Exception:
                # Unpicklable algorithm: the shm path cannot help either;
                # drop the segment and try the legacy transport below.
                self._unpublish(handle)
                handle = None
                payloads = []
        if not serial and handle is None:
            try:
                payloads = [
                    pickle.dumps(
                        (instance, algorithm, chunk, seed, max_volume,
                         max_queries, self.compiled)
                    )
                    for chunk in chunks
                ]
            except Exception:
                # Unpicklable instance/algorithm (local classes, lambdas):
                # the parallel path is an optimization, not a requirement.
                serial = True
        if serial:
            triples = _execute_nodes(
                _make_oracle(instance, self.compiled),
                algorithm,
                node_list,
                seed,
                max_volume,
                max_queries,
                distance_mode="incremental" if self.compiled else "reference",
            )
            return self._assemble(instance, algorithm, triples)

        def _pickle_payload(chunk: list) -> bytes:
            return pickle.dumps(
                (instance, algorithm, chunk, seed, max_volume,
                 max_queries, self.compiled)
            )

        oracle_cache: list = []

        def _serial_chunk(chunk: list) -> list:
            if not oracle_cache:
                oracle_cache.append(_make_oracle(instance, self.compiled))
            return _execute_nodes(
                oracle_cache[0],
                algorithm,
                chunk,
                seed,
                max_volume,
                max_queries,
                distance_mode="incremental" if self.compiled else "reference",
            )

        try:
            if self.supervised:
                chunk_results = self._dispatch_supervised(
                    scope,
                    chunks,
                    "pickle" if handle is None else "shm",
                    payloads,
                    {"shm": _run_chunk_shm, "pickle": _run_chunk},
                    _pickle_payload,
                    _serial_chunk,
                    seed,
                )
            else:
                worker = _run_chunk if handle is None else _run_chunk_shm
                futures = [self._pool().submit(worker, p) for p in payloads]
                # submission order == original node order
                chunk_results = [future.result() for future in futures]
        finally:
            if handle is not None:
                self._unpublish(handle)
        triples = [t for chunk in chunk_results for t in chunk]
        result = self._assemble(instance, algorithm, triples)
        events = self.fault_log.since(mark)
        if events:
            result.fault_log = events
        return result

    def run_trial_batch(
        self,
        problem,
        instance_factory,
        algorithm: ProbeAlgorithm,
        trial_indices: Sequence[int],
        *,
        base_seed: int = 0,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> List[TrialOutcome]:
        """Fan the trials out over the pool; merged in index order.

        Each worker amortizes repeated instances through its own
        :class:`BatchBackend`; trial seeds depend only on the indices, so
        the merged outcome list is identical to the serial one.
        """
        indices = list(trial_indices)
        chunks = self._chunk(indices)

        def _local() -> List[TrialOutcome]:
            with BatchBackend(compiled=self.compiled) as batch:
                return _trial_outcomes(
                    batch,
                    problem,
                    instance_factory,
                    algorithm,
                    indices,
                    base_seed,
                    max_volume,
                    max_queries,
                )

        if self.workers == 1 or len(chunks) <= 1:
            return _local()
        self._dispatches += 1
        scope = f"trials:{self._dispatches}"
        handle = None
        payloads: List[bytes] = []
        if (
            self.shared_memory
            and self.compiled
            and isinstance(instance_factory, FixedInstanceFactory)
            # A fixed *spec* ships as its own O(1) payload (see run()).
            and not isinstance(instance_factory.instance, InstanceSpec)
        ):
            # Fixed-instance trial streams (the Monte-Carlo engine's
            # common shape) share one instance across every trial:
            # publish it once, fan out O(1) handles.
            handle = self._publish(instance_factory.instance, scope)
        if handle is not None:
            try:
                payloads = [
                    pickle.dumps(
                        (
                            handle,
                            problem,
                            algorithm,
                            chunk,
                            base_seed,
                            max_volume,
                            max_queries,
                        )
                    )
                    for chunk in chunks
                ]
            except Exception:
                self._unpublish(handle)
                handle = None
                payloads = []
        if handle is None:
            try:
                payloads = [
                    pickle.dumps(
                        (
                            problem,
                            instance_factory,
                            algorithm,
                            chunk,
                            base_seed,
                            max_volume,
                            max_queries,
                            self.compiled,
                        )
                    )
                    for chunk in chunks
                ]
            except Exception:
                # Unpicklable factory/problem (lambdas, local classes): the
                # parallel path is an optimization, not a requirement.
                return _local()
        def _pickle_payload(chunk: list) -> bytes:
            return pickle.dumps(
                (
                    problem,
                    instance_factory,
                    algorithm,
                    chunk,
                    base_seed,
                    max_volume,
                    max_queries,
                    self.compiled,
                )
            )

        def _serial_chunk(chunk: list) -> List[TrialOutcome]:
            with BatchBackend(compiled=self.compiled) as batch:
                return _trial_outcomes(
                    batch,
                    problem,
                    instance_factory,
                    algorithm,
                    chunk,
                    base_seed,
                    max_volume,
                    max_queries,
                )

        try:
            if self.supervised:
                chunk_results = self._dispatch_supervised(
                    scope,
                    chunks,
                    "pickle" if handle is None else "shm",
                    payloads,
                    {"shm": _run_trials_shm, "pickle": _run_trials},
                    _pickle_payload,
                    _serial_chunk,
                    base_seed,
                )
            else:
                worker = _run_trials if handle is None else _run_trials_shm
                futures = [self._pool().submit(worker, p) for p in payloads]
                # submission order == trial index order
                chunk_results = [future.result() for future in futures]
        finally:
            if handle is not None:
                self._unpublish(handle)
        outcomes: List[TrialOutcome] = []
        for chunk in chunk_results:
            outcomes.extend(chunk)
        return outcomes

    # ------------------------------------------------------------------
    def close(self) -> None:
        while self._live_handles:
            self._unpublish(self._live_handles.pop())
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _publish(self, instance, scope: str = "publish"):
        """Publish ``instance`` to shared memory; ``None`` = use pickle."""
        if self._injector is not None:
            fault = self._injector.fault_for(
                scope, -1, 0, allowed=("shm-publish-fail",)
            )
            if fault is not None:
                self.fault_log.record(
                    FaultEvent(
                        "injected:shm-publish-fail", scope, -1, 0, "injected"
                    )
                )
                self.fault_log.record(
                    FaultEvent(
                        "shm-publish",
                        scope,
                        -1,
                        0,
                        "fallback:pickle",
                        "injected publish failure",
                    )
                )
                return None
        try:
            handle = shm_layer.publish_instance(instance)
        except shm_layer.ShmPublishError as exc:
            # /dev/shm missing, full, or too small for the instance:
            # results are identical over pickle, so degrade — but say so
            # (once per process), because the slowdown is actionable.
            _warn_shm_fallback(exc)
            self.fault_log.record(
                FaultEvent(
                    "shm-publish", scope, -1, 0, "fallback:pickle", str(exc)
                )
            )
            return None
        except Exception:
            # Unshareable instance (ids outside int64, unpicklable aux,
            # a graph that refuses to freeze): shared memory is an
            # optimization, not a requirement.
            return None
        self._live_handles.add(handle)
        return handle

    def _unpublish(self, handle) -> None:
        self._live_handles.discard(handle)
        shm_layer.unpublish(handle)

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _chunk(self, items: List[int]) -> List[List[int]]:
        """Contiguous chunks; ~4 per worker to smooth uneven node costs.

        A tiny trailing remainder (fewer than ``size // 2`` items) would
        cost a whole dispatch round-trip for almost no work, so it is
        merged into the previous chunk instead — the partition stays
        contiguous and ordered, so merged results are unchanged.
        """
        if not items:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, -(-len(items) // (self.workers * 4)))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        if len(chunks) > 1 and len(chunks[-1]) < size // 2:
            tail = chunks.pop()
            chunks[-1] = chunks[-1] + tail
        return chunks


_DEFAULT_BACKEND = SerialBackend()

#: The backend spec-string grammar, quoted by every parse error::
#:
#:     spec      := "serial" | "reference" | "batch" | "process" pool?
#:     pool      := ":" workers? transport?
#:     workers   := integer >= 1
#:     transport := ":" ("shm" | "pickle")
BACKEND_SPEC_GRAMMAR = (
    "'serial', 'reference', 'batch', 'process', 'process:N', or "
    "'process:N:shm'/'process:N:pickle'"
)


@dataclass(frozen=True)
class BackendSpec:
    """A parsed backend spec string — the value form of the grammar.

    ``kind`` is one of ``serial`` / ``reference`` / ``batch`` /
    ``process``; ``workers`` and ``transport`` (``"shm"`` or
    ``"pickle"``) apply only to ``process``.  ``str()`` renders the
    canonical spec string, and ``parse_backend_spec(str(spec)) == spec``
    for every valid value; :meth:`make` builds the backend it names.
    """

    kind: str
    workers: Optional[int] = None
    transport: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("serial", "reference", "batch", "process"):
            raise ValueError(
                f"unknown backend kind {self.kind!r} "
                f"(expected {BACKEND_SPEC_GRAMMAR})"
            )
        if self.kind != "process":
            if self.workers is not None or self.transport is not None:
                raise ValueError(
                    f"backend kind {self.kind!r} takes no workers or "
                    "transport (only 'process' does)"
                )
            return
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.transport not in (None, "shm", "pickle"):
            raise ValueError(
                f"unknown transport {self.transport!r} "
                "(expected 'shm' or 'pickle')"
            )

    def __str__(self) -> str:
        if self.kind != "process":
            return self.kind
        spec = "process"
        if self.workers is not None or self.transport is not None:
            spec += f":{self.workers if self.workers is not None else ''}"
        if self.transport is not None:
            spec += f":{self.transport}"
        return spec

    def make(self) -> ExecutionBackend:
        """Construct the backend this spec names (a fresh instance)."""
        if self.kind == "serial":
            return SerialBackend()
        if self.kind == "reference":
            return SerialBackend(compiled=False)
        if self.kind == "batch":
            return BatchBackend()
        return ProcessPoolBackend(
            workers=self.workers,
            shared_memory=self.transport != "pickle",
        )


def parse_backend_spec(spec: str) -> BackendSpec:
    """Parse a backend spec string into a :class:`BackendSpec`.

    The grammar is ``'serial' | 'reference' | 'batch' |
    'process[:N[:shm|:pickle]]'`` (:data:`BACKEND_SPEC_GRAMMAR`); every
    rejection is a ``ValueError`` naming the offending spec and the
    grammar.  ``str()`` of the returned value round-trips to the
    canonical spec string.
    """
    if not isinstance(spec, str):
        raise TypeError(
            f"backend spec must be a string, got {type(spec).__name__}"
        )
    name, sep, arg = spec.partition(":")
    if name == "process":
        count, _, transport = arg.partition(":")
        if transport not in ("", "shm", "pickle"):
            raise ValueError(
                f"bad transport in backend spec {spec!r} "
                "(expected 'process:N:shm' or 'process:N:pickle')"
            )
        try:
            workers = int(count) if count else None
        except ValueError:
            raise ValueError(
                f"bad worker count in backend spec {spec!r} "
                "(expected 'process:N' with integer N)"
            ) from None
        if workers is not None and workers < 1:
            raise ValueError(
                f"bad worker count in backend spec {spec!r} "
                "(expected 'process:N' with integer N)"
            )
        return BackendSpec("process", workers, transport or None)
    if name in ("serial", "reference", "batch"):
        if sep:
            raise ValueError(
                f"backend {name!r} takes no arguments in spec {spec!r} "
                f"(the grammar is {BACKEND_SPEC_GRAMMAR})"
            )
        return BackendSpec(name)
    raise ValueError(
        f"unknown execution backend {spec!r} "
        f"(expected {BACKEND_SPEC_GRAMMAR})"
    )


def get_backend(spec=None) -> ExecutionBackend:
    """Resolve a backend argument: instance, spec string, or ``None``.

    Spec strings follow :func:`parse_backend_spec`'s grammar: ``"serial"``,
    ``"batch"``, ``"process"``, and ``"process:N"`` for an N-worker pool —
    all of which use the compiled instance fast path — plus
    ``"reference"``, the uncompiled reference engine (``StaticOracle`` +
    BFS ``DIST``; bitwise-identical results).  ``"process:N:shm"`` /
    ``"process:N:pickle"`` pin the pool's instance transport (shared
    memory is the default); results are identical either way.  ``None``
    means the shared default :class:`SerialBackend`.
    """
    if spec is None:
        return _DEFAULT_BACKEND
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, BackendSpec):
        return spec.make()
    if isinstance(spec, str):
        return parse_backend_spec(spec).make()
    raise ValueError(
        f"unknown execution backend {spec!r} "
        f"(expected an ExecutionBackend, {BACKEND_SPEC_GRAMMAR})"
    )
