"""Zero-copy instance sharing for process-pool workers.

The pickle fan-out path serializes the *whole instance* into every chunk
payload, so a run with ``c`` chunks pays ``c`` serializations in the
parent and ``c`` deserializations plus ``c`` oracle compilations across
the workers.  But a :class:`~repro.graphs.frozen.FrozenPortGraph` is an
immutable CSR snapshot that every worker only ever reads — the textbook
candidate for :mod:`multiprocessing.shared_memory`:

* :func:`publish_instance` freezes the instance once, copies the five
  CSR columns (``ids`` / ``port_offsets`` / ``port_endpoints`` /
  ``port_back_ports`` / ``degrees``) byte-for-byte into one shared
  segment, appends a small pickled *aux* record (labeling, ``n``, name,
  metadata — everything that is not flat graph structure), and returns a
  :class:`ShmInstanceHandle` that pickles in O(1);
* workers call :func:`attached_instance` with the handle: the segment is
  mapped (not copied), the CSR columns become ``memoryview`` casts
  straight into the shared buffer, and the rebuilt instance + compiled
  oracle are **cached per worker process** keyed by segment name — so a
  worker pays one attach + one oracle compilation per run, no matter how
  many chunks it executes.

Lifecycle (DESIGN.md §9.2): the publisher owns the segment.  The backend
unlinks it in a ``finally`` as soon as the dispatch that published it
completes (success *or* worker exception); on POSIX the mapping stays
valid for workers that are still attached, so there is no unlink race.
A module-level registry + ``atexit`` hook backstops interpreter-level
failures, and :func:`unpublish_all` lets tests assert the registry is
empty.  Workers keep a tiny LRU of attachments (old runs' segments are
already unlinked; closing them on eviction frees the mapping) and close
everything at interpreter exit.

Python < 3.13 registers *attached* segments with the resource tracker as
if the attacher owned them, which makes the tracker unlink shared
segments early (and warn) when a pool worker exits; :func:`_attach`
applies the standard unregister workaround (``track=False`` on 3.13+).
"""

from __future__ import annotations

import atexit
import pickle
import sys
import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

from repro.graphs.frozen import FrozenPortGraph
from repro.graphs.labelings import Instance
from repro.model.implicit import as_oracle
from repro.model.oracle import CompiledOracle

_WORD = 8  # every CSR cell is a signed 64-bit integer ('q')

#: Segments this process has published and not yet unlinked.  The lock
#: makes publish/unpublish safe against concurrent failure paths (a
#: dispatch ``finally``, ``close()``'s drain, and the atexit backstop
#: can race when a supervised retry tears a pool down mid-dispatch);
#: each segment is still closed+unlinked exactly once.
_PUBLISHED: Dict[str, shared_memory.SharedMemory] = {}
_PUBLISH_LOCK = threading.Lock()

#: Worker-side attachment cache (segment name -> _Attachment).  Bounded:
#: a worker outlives many runs, each with its own segment.
_ATTACHED: "OrderedDict[str, _Attachment]" = OrderedDict()
_ATTACH_CAP = 4

_CLEANUP_REGISTERED = False


class ShmPublishError(RuntimeError):
    """The instance cannot be published to shared memory.

    Raised for structurally unshareable inputs (node ids outside int64,
    an aux payload that does not pickle) and for an unavailable or
    exhausted shared-memory filesystem (``/dev/shm`` missing, full, or
    too small for the instance).  The backend treats it as "use the
    pickle path" — with one actionable warning for the filesystem case —
    never as a failed run.
    """


@dataclass(frozen=True)
class ShmInstanceHandle:
    """An O(1)-pickling reference to a published instance.

    Carries the segment name plus the integer shape facts needed to
    reconstruct the column layout; everything bulky lives in the segment
    itself.  The layout is deterministic: five ``'q'`` columns —
    ``ids[n]``, ``offsets[n+1]``, ``endpoints[p]``, ``back_ports[p]``,
    ``degrees[n]`` — followed by ``aux_len`` bytes of pickled aux data.
    """

    name: str
    num_nodes: int
    num_slots: int
    num_edges: int
    max_degree: int
    aux_len: int

    def column_layout(self) -> List[Tuple[int, int]]:
        """``(byte offset, element count)`` per column, in layout order."""
        n, p = self.num_nodes, self.num_slots
        counts = [n, n + 1, p, p, n]
        layout: List[Tuple[int, int]] = []
        pos = 0
        for count in counts:
            layout.append((pos, count))
            pos += count * _WORD
        return layout

    @property
    def aux_offset(self) -> int:
        return (3 * self.num_nodes + 1 + 2 * self.num_slots) * _WORD

    @property
    def total_size(self) -> int:
        return self.aux_offset + self.aux_len


def _register_cleanup() -> None:
    global _CLEANUP_REGISTERED
    if not _CLEANUP_REGISTERED:
        _CLEANUP_REGISTERED = True
        atexit.register(_cleanup_at_exit)


def _cleanup_at_exit() -> None:
    """Backstop: unlink published and close attached segments on exit."""
    unpublish_all()
    detach_all()


def publish_instance(instance: Instance) -> ShmInstanceHandle:
    """Copy ``instance`` into a fresh shared-memory segment.

    The graph is frozen (a no-op if already frozen), its CSR columns are
    written byte-for-byte, and the non-structural remainder (labeling,
    advertised ``n``, name, instance + graph metadata) is pickled into
    the aux region.  The caller owns the segment and must arrange
    :func:`unpublish` — the backends do so in ``finally`` blocks, with
    the ``atexit`` registry as a last resort.
    """
    frozen = instance.graph.freeze()
    try:
        ids = array("q", frozen.node_ids())
        columns = [
            ids,
            array("q", frozen.port_offsets),
            array("q", frozen.port_endpoints),
            array("q", frozen.port_back_ports),
            array("q", frozen.degrees),
        ]
        aux = pickle.dumps(
            (
                instance.labeling,
                instance.n,
                instance.name,
                dict(instance.meta),
                dict(frozen.meta),
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception as exc:
        raise ShmPublishError(
            f"instance {instance.name!r} is not shareable: {exc}"
        ) from exc
    words = sum(len(col) for col in columns)
    size = max(1, words * _WORD + len(aux))
    try:
        segment = shared_memory.SharedMemory(create=True, size=size)
    except OSError as exc:
        # /dev/shm missing (minimal containers), full, or quota-limited:
        # shared memory is unavailable, not the instance unshareable.
        raise ShmPublishError(
            f"cannot create a {size}-byte shared-memory segment for "
            f"instance {instance.name!r}: {exc}"
        ) from exc
    try:
        pos = 0
        for col in columns:
            raw = col.tobytes()
            segment.buf[pos : pos + len(raw)] = raw
            pos += len(raw)
        segment.buf[pos : pos + len(aux)] = aux
    except Exception:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        raise
    with _PUBLISH_LOCK:
        _PUBLISHED[segment.name] = segment
    _register_cleanup()
    return ShmInstanceHandle(
        name=segment.name,
        num_nodes=frozen.num_nodes,
        num_slots=len(frozen.port_endpoints),
        num_edges=frozen.num_edges(),
        max_degree=frozen.max_degree,
        aux_len=len(aux),
    )


def _retire(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating every already-gone case."""
    try:
        segment.close()
    except Exception:  # pragma: no cover - close is best-effort
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def unpublish(handle: ShmInstanceHandle) -> None:
    """Unlink a published segment (idempotent, concurrency-safe).

    The atomic pop under the registry lock guarantees each segment is
    retired exactly once even when a dispatch ``finally``, a backend
    ``close()``, and the atexit backstop all race to unpublish it.
    """
    with _PUBLISH_LOCK:
        segment = _PUBLISHED.pop(handle.name, None)
    if segment is None:
        return
    _retire(segment)


def unpublish_all() -> None:
    """Unlink every segment this process still has published."""
    with _PUBLISH_LOCK:
        segments = list(_PUBLISHED.values())
        _PUBLISHED.clear()
    for segment in segments:
        _retire(segment)


def published_segments() -> List[str]:
    """Names of segments currently published and not yet unlinked."""
    return sorted(_PUBLISHED)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting ownership of it.

    Pre-3.13 ``SharedMemory(name=...)`` registers the attacher with the
    resource tracker as if it owned the segment, which would make any
    worker's exit unlink it out from under its siblings.  Unregistering
    afterwards is the widely-used fix, but parent and workers share one
    tracker process keyed by name, so the unregister also erases the
    *publisher's* registration and the eventual ``unlink()`` provokes a
    KeyError traceback inside the tracker.  Suppressing the registration
    during attach leaves the publisher's entry untouched instead.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _Attachment:
    """One mapped segment and everything reconstructed from it."""

    __slots__ = ("segment", "views", "instance", "oracle", "_closed")

    def __init__(self, handle: ShmInstanceHandle) -> None:
        self._closed = False
        segment = _attach(handle.name)
        self.segment = segment
        buf = memoryview(segment.buf)
        self.views = []
        columns = []
        for offset, count in handle.column_layout():
            view = buf[offset : offset + count * _WORD].cast("q")
            self.views.append(view)
            columns.append(view)
        ids_view, offsets, endpoints, back_ports, degrees = columns
        # Node ids feed the id -> dense-index dict anyway, so they are
        # materialized; the three big columns stay zero-copy views.
        ids = list(ids_view)
        aux_raw = bytes(
            buf[handle.aux_offset : handle.aux_offset + handle.aux_len]
        )
        buf.release()
        labeling, n, name, meta, graph_meta = pickle.loads(aux_raw)
        frozen = FrozenPortGraph.from_csr(
            max_degree=handle.max_degree,
            ids=ids,
            offsets=offsets,
            endpoints=endpoints,
            back_ports=back_ports,
            degrees=degrees,
            num_edges=handle.num_edges,
            meta=graph_meta,
        )
        self.instance = Instance(
            graph=frozen, labeling=labeling, n=n, name=name, meta=meta
        )
        self.oracle: CompiledOracle = as_oracle(
            self.instance, mode="compiled"
        )

    def close(self) -> None:
        """Release the buffer views and unmap the segment (idempotent).

        LRU eviction, :func:`detach_all`, and the atexit backstop can
        each reach the same attachment on a failing worker's way down;
        only the first call does any work.
        """
        if self._closed:
            return
        self._closed = True
        self.instance = None
        self.oracle = None
        for view in self.views:
            try:
                view.release()
            except Exception:  # pragma: no cover - already released
                pass
        self.views = []
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - a view escaped; leave
            pass  # the mapping to process exit rather than crash


def attach_instance(handle: ShmInstanceHandle) -> _Attachment:
    """A fresh, uncached attachment (caller must ``close()`` it).

    Used by benchmarks to measure attach overhead and by tests to
    inspect round-trip fidelity; workers use :func:`attached_instance`.
    """
    return _Attachment(handle)


def attached_instance(
    handle: ShmInstanceHandle,
) -> Tuple[Instance, CompiledOracle]:
    """The per-process cached attachment for ``handle``.

    First call per segment maps the buffer, rebuilds the instance and
    compiles the oracle; subsequent calls (later chunks of the same run)
    are a dict hit.  The cache is a small LRU — evicted attachments
    belong to finished runs whose segments the publisher has already
    unlinked, so closing them releases the last mapping.
    """
    record = _ATTACHED.get(handle.name)
    if record is not None:
        _ATTACHED.move_to_end(handle.name)
        return record.instance, record.oracle
    record = _Attachment(handle)
    _ATTACHED[handle.name] = record
    _register_cleanup()
    while len(_ATTACHED) > _ATTACH_CAP:
        _, evicted = _ATTACHED.popitem(last=False)
        evicted.close()
    return record.instance, record.oracle


def detach_all() -> None:
    """Close every cached attachment (worker exit / test teardown)."""
    while _ATTACHED:
        _, record = _ATTACHED.popitem(last=False)
        record.close()


__all__ = [
    "ShmInstanceHandle",
    "ShmPublishError",
    "attach_instance",
    "attached_instance",
    "detach_all",
    "publish_instance",
    "published_segments",
    "unpublish",
    "unpublish_all",
]
