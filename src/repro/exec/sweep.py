"""Declarative sweep orchestration for whole-instance experiments.

Every benchmark in this repo has the same shape: *for each size in a
grid, build an instance from a family, run an algorithm from some start
nodes, record one scalar cost, then fit the growth class*.  This module
turns that shape into data:

* :class:`InstanceFamily` — a named, parameterized instance generator
  with per-parameter memoization (several sweeps over the same family
  share the built instances);
* :class:`SweepSpec` — one sweep: family × algorithm × metric (+ start
  nodes, seed, budgets), or an arbitrary ``measure`` callable for
  experiments that are not a single ``run_algorithm`` call;
* :func:`run_sweep` / :func:`run_sweeps` — execute specs on any
  :class:`~repro.exec.backends.ExecutionBackend`, with optional on-disk
  caching (:class:`SweepCache`, keyed by a stable spec hash) and progress
  reporting;
* :class:`SweepResult` — the measured points plus the fitted growth
  class, formatted with the same claimed-vs-measured row the benchmark
  tables print.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.complexity_fit import (
    FitResult,
    SweepMeasurement,
    format_sweep_row,
)
from repro.exec.backends import ExecutionBackend, get_backend
from repro.faults.journal import Journal, atomic_write_text


class InstanceFamily:
    """A named instance generator over a parameter grid, memoized.

    ``factory(param)`` builds the instance for one grid point.  Builds
    are cached so that the four sweeps of a Table-1 row reuse one set of
    instances instead of regenerating them per metric.
    """

    def __init__(self, name: str, factory: Callable, params: Sequence) -> None:
        self.name = name
        self.factory = factory
        self.params = list(params)
        self._cache: Dict[object, object] = {}

    def instance(self, param):
        key = self._key(param)
        if key not in self._cache:
            self._cache[key] = self.factory(param)
        return self._cache[key]

    def instances(self) -> List[object]:
        return [self.instance(p) for p in self.params]

    def clear(self) -> None:
        self._cache.clear()

    @staticmethod
    def _key(param) -> object:
        return tuple(param) if isinstance(param, list) else param


@dataclass
class SweepSpec:
    """One declarative sweep: what to measure over an instance family.

    Either give ``algorithm_factory`` + ``metric`` (the common case: one
    :func:`~repro.model.runner.run_algorithm` call per grid point) or a
    custom ``measure(instance, param)`` callable for composite
    experiments (CONGEST rounds, two-party bits, ...).

    ``nodes`` optionally selects the start nodes per grid point as
    ``nodes(instance, param)``; ``None`` means every node.

    The ``success_rate`` metric runs the streaming Monte-Carlo engine
    per grid point instead of a single whole-instance run: it needs a
    ``problem_factory`` (to check validity) and a ``trial_policy``
    (a :class:`~repro.montecarlo.engine.TrialPolicy` controlling trial
    budgets and early stopping); each point's cost is the estimated
    success probability, with trial counts / CI bounds / stopping
    reason recorded in :attr:`SweepPoint.detail`.
    """

    label: str
    claimed: str
    family: InstanceFamily
    metric: str = "volume"
    algorithm_factory: Optional[Callable] = None
    nodes: Optional[Callable] = None
    seed: int = 0
    max_volume: Optional[int] = None
    max_queries: Optional[int] = None
    measure: Optional[Callable] = None
    candidates: Optional[Sequence[str]] = None
    cache_extra: str = ""
    problem_factory: Optional[Callable] = None
    trial_policy: Optional[object] = None

    _METRICS = ("volume", "distance", "queries", "success_rate")

    def __post_init__(self) -> None:
        if self.measure is None:
            if self.algorithm_factory is None:
                raise ValueError(
                    f"spec {self.label!r} needs an algorithm_factory or a "
                    "measure callable"
                )
            if self.metric not in self._METRICS:
                raise ValueError(
                    f"unknown metric {self.metric!r} "
                    f"(expected one of {self._METRICS})"
                )
        if self.measure is not None:
            if self.trial_policy is not None:
                raise ValueError(
                    f"spec {self.label!r}: trial_policy does not apply to "
                    "a custom measure callable"
                )
        elif self.metric == "success_rate":
            if self.problem_factory is None or self.trial_policy is None:
                raise ValueError(
                    f"spec {self.label!r}: the success_rate metric needs "
                    "a problem_factory and a trial_policy"
                )
            if self.nodes is not None:
                # Validity is checked over the outputs of *every* node
                # (Definition 2.4); a start-node selector would be
                # silently ignored by the trial engine.
                raise ValueError(
                    f"spec {self.label!r}: the success_rate metric runs "
                    "from every node; a nodes selector does not apply"
                )
        elif self.trial_policy is not None:
            raise ValueError(
                f"spec {self.label!r}: trial_policy only applies to the "
                "success_rate metric"
            )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A stable descriptor of everything that affects the results."""
        algo_name = None
        if self.algorithm_factory is not None:
            algo_name = self.algorithm_factory().name
        return {
            "label": self.label,
            "claimed": self.claimed,
            "family": self.family.name,
            "family_factory": _callable_id(self.family.factory),
            "params": [repr(p) for p in self.family.params],
            "metric": self.metric if self.measure is None else "custom",
            "algorithm": algo_name,
            "nodes": _callable_id(self.nodes),
            "measure": _callable_id(self.measure),
            "seed": self.seed,
            "max_volume": self.max_volume,
            "max_queries": self.max_queries,
            "cache_extra": self.cache_extra,
            "problem": _callable_id(self.problem_factory),
            "trial_policy": (
                None
                if self.trial_policy is None
                else self.trial_policy.describe()
            ),
        }

    def cache_key(self) -> str:
        blob = json.dumps(self.describe(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # ------------------------------------------------------------------
    def measure_point(self, instance, param, backend: ExecutionBackend) -> float:
        return self.measure_point_detailed(instance, param, backend)[0]

    def measure_point_detailed(
        self, instance, param, backend: ExecutionBackend
    ) -> "Tuple[float, Optional[Dict[str, object]]]":
        """One grid point's cost plus an optional detail record.

        Only the ``success_rate`` metric produces a detail (trial count,
        CI bounds, stopping reason); the single-run metrics return
        ``None``.
        """
        if self.measure is not None:
            return float(self.measure(instance, param)), None
        if self.metric == "success_rate":
            from repro.montecarlo.engine import run_trials

            result = run_trials(
                self.problem_factory(),
                instance,
                self.algorithm_factory(),
                self.trial_policy,
                base_seed=self.seed,
                backend=backend,
                max_volume=self.max_volume,
                max_queries=self.max_queries,
            )
            low, high = result.interval()
            return float(result.rate), {
                "trials": result.trials,
                "successes": result.successes,
                "ci_low": low,
                "ci_high": high,
                "stopped": result.stopped,
            }
        nodes = None if self.nodes is None else self.nodes(instance, param)
        result = backend.run(
            instance,
            self.algorithm_factory(),
            nodes,
            seed=self.seed,
            max_volume=self.max_volume,
            max_queries=self.max_queries,
        )
        return float(getattr(result, f"max_{self.metric}")), None


def _callable_id(fn: Optional[Callable]) -> Optional[str]:
    """Fingerprint a callable by name *and* bytecode.

    Editing the body of a ``measure``/``nodes``/factory callable must
    invalidate cached sweep results; a bare qualname would keep serving
    stale numbers after a code change.  Plain ``repr`` is unusable (it
    embeds object addresses), so hash the code object's bytecode and its
    non-code constants instead.
    """
    if fn is None:
        return None
    name = getattr(fn, "__qualname__", fn.__class__.__qualname__)
    code = getattr(fn, "__code__", None)
    if code is None:
        call = getattr(type(fn), "__call__", None)
        code = getattr(call, "__code__", None)
    if code is None:
        return name
    consts = tuple(
        c for c in code.co_consts if not hasattr(c, "co_code")
    )
    digest = hashlib.sha256(
        code.co_code + repr(consts).encode()
    ).hexdigest()[:12]
    return f"{name}#{digest}"


@dataclass
class SweepPoint:
    """One measured grid point.

    ``detail`` carries metric-specific extras (for ``success_rate``:
    trial count, CI bounds, stopping reason); ``None`` for plain
    single-run metrics.
    """

    param: object
    n: int
    cost: float
    elapsed: float = 0.0
    detail: Optional[Dict[str, object]] = None


@dataclass
class SweepResult:
    """All points of one sweep plus fit/reporting helpers.

    ``from_cache`` means no point was executed this run; ``from_store``
    additionally records that the persistent result store (rather than
    the per-spec JSON cache) served them.
    """

    spec: SweepSpec
    points: List[SweepPoint] = field(default_factory=list)
    from_cache: bool = False
    from_store: bool = False

    @property
    def ns(self) -> List[int]:
        return [p.n for p in self.points]

    @property
    def costs(self) -> List[float]:
        return [p.cost for p in self.points]

    def measurement(self) -> SweepMeasurement:
        return SweepMeasurement(
            label=self.spec.label,
            ns=self.ns,
            costs=self.costs,
            claimed=self.spec.claimed,
        )

    def fitted(self) -> FitResult:
        return self.measurement().fitted(self.spec.candidates)

    def format_row(self) -> str:
        return format_sweep_row(self.measurement(), self.fitted())


def _sweep_payload(result: SweepResult) -> Dict[str, object]:
    """The persistable form of a sweep result (cache file and store)."""
    return {
        "describe": _jsonify(result.spec.describe()),
        "ns": result.ns,
        "costs": result.costs,
        "details": [p.detail for p in result.points],
    }


def _restore_points(
    spec: SweepSpec, ns, costs, details
) -> Optional[List[SweepPoint]]:
    """Rebuild grid points from persisted arrays, or ``None`` if mangled.

    A describe() match guarantees the stored points were measured over
    exactly this parameter grid, so the grid points are restored from
    the spec (params may not be JSON-serializable).  It also implies
    the current payload format, so missing/short arrays can only mean a
    mangled file: the caller re-measures rather than guessing.
    """
    if ns is None or costs is None or details is None:
        return None
    expected = len(spec.family.params)
    if not (len(ns) == len(costs) == len(details) == expected):
        return None
    return [
        SweepPoint(param=param, n=int(n), cost=float(cost), detail=detail)
        for param, n, cost, detail in zip(
            spec.family.params, ns, costs, details
        )
    ]


class SweepCache:
    """On-disk result cache keyed by the spec hash.

    One JSON file per spec under ``root``; a cache hit skips the whole
    sweep.  Delete the directory (or a file) to invalidate.  This is
    the file-per-spec sibling of the persistent
    :class:`~repro.corpus.results.ResultStore` — both persist
    :func:`_sweep_payload` and restore via :func:`_restore_points`, so
    their hit semantics cannot drift.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def load(self, spec: SweepSpec) -> Optional[SweepResult]:
        path = self._path(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("describe") != _jsonify(spec.describe()):
            return None  # hash collision or stale format: re-measure
        points = _restore_points(
            spec,
            payload.get("ns"),
            payload.get("costs"),
            payload.get("details"),
        )
        if points is None:
            return None
        return SweepResult(spec=spec, points=points, from_cache=True)

    def store(self, result: SweepResult) -> None:
        # Atomic + durable (temp file, fsync, rename): a crash or a
        # concurrent writer must never leave a torn cache file that a
        # later run would half-trust.
        atomic_write_text(
            self._path(result.spec),
            json.dumps(_sweep_payload(result), indent=1),
        )

    def _path(self, spec: SweepSpec) -> Path:
        return self.root / f"{spec.cache_key()}.json"


def _json_key(key) -> str:
    """The string ``json.dumps`` would coerce a dict key to."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return json.dumps(key)
    raise TypeError(
        f"dict key {key!r} ({type(key).__name__}) cannot be persisted "
        "in a JSON payload"
    )


def _jsonify(obj):
    """Normalize a payload to its JSON-decoded form — loudly.

    A plain ``json.loads(json.dumps(...))`` round trip coerces
    non-string dict keys silently (``1`` -> ``"1"``, ``True`` ->
    ``"true"``); if two keys coerce to the same string, one value is
    silently dropped and the stored payload can never compare equal to
    a freshly built one again — a permanent cache miss with no error.
    This normalizer applies the identical coercion but *raises* on a
    collision or an uncoercible key, and both the persist side and the
    compare side go through it, so persisted and fresh payloads agree
    by construction.
    """
    if isinstance(obj, dict):
        out: Dict[str, object] = {}
        for key, value in obj.items():
            norm = _json_key(key)
            if norm in out:
                raise ValueError(
                    f"dict keys collide when persisted as JSON: key "
                    f"{key!r} coerces to {norm!r}, which is already "
                    "present; use distinct string keys"
                )
            out[norm] = _jsonify(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [_jsonify(value) for value in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # Anything exotic must survive a real round trip or fail now.
    return json.loads(json.dumps(obj))


def sweep_journal_key(specs: Sequence[SweepSpec]) -> str:
    """The spec hash binding a journal to one batch of sweeps.

    Hashes every spec's :meth:`~SweepSpec.cache_key` in order, so the
    same journal file refuses a different sweep batch loudly instead of
    silently skipping the wrong points.
    """
    blob = json.dumps([spec.cache_key() for spec in specs]).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def open_sweep_journal(path, specs: Sequence[SweepSpec]) -> Journal:
    """Open (or resume) the journal for a batch of sweeps."""
    meta = {
        "sweeps": [
            {"label": spec.label, "spec": spec.cache_key()} for spec in specs
        ]
    }
    return Journal(path, sweep_journal_key(specs), meta=meta)


def _journal_points(journal: Journal) -> Dict[Tuple[str, int], Dict]:
    """Completed ``(spec hash, grid index) -> record`` from the journal."""
    done: Dict[Tuple[str, int], Dict] = {}
    for record in journal.records:
        if record.get("kind") != "point":
            continue
        done.setdefault((record["spec"], int(record["index"])), record)
    return done


def run_sweep(
    spec: SweepSpec,
    backend=None,
    cache: Optional[SweepCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    journal: Optional[Journal] = None,
    store=None,
) -> SweepResult:
    """Execute one sweep (or serve it from the cache or result store).

    With ``journal`` (an open :class:`~repro.faults.journal.Journal`,
    usually from :func:`open_sweep_journal`), each completed grid point
    is appended durably and points already journaled are restored
    instead of re-measured — a killed campaign continues where it died.
    Every point is a deterministic run, so a restored point is bitwise
    what re-measuring would produce.

    ``store`` (a :class:`~repro.corpus.results.ResultStore`) is the
    persistent sibling: every executed point appends to the store, and
    points already stored for this spec hash are restored per point —
    a re-run against a populated store executes nothing.  A fully
    store-served result sets :attr:`SweepResult.from_store` (and
    counts as a cache hit in summaries, since no measurement ran).
    """
    backend = get_backend(backend)
    spec_key = spec.cache_key()
    described = _jsonify(spec.describe())
    if cache is not None:
        hit = cache.load(spec)
        if hit is not None:
            if progress is not None:
                progress(f"[{spec.label}] loaded {len(hit.points)} cached points")
            if store is not None:
                _record_sweep_to_store(store, spec_key, described, hit)
            return hit
    stored: Dict[int, Dict[str, object]] = {}
    if store is not None:
        stored_describe = store.sweep_describe(spec_key)
        if stored_describe is not None and stored_describe != described:
            # A 16-hex hash collision (or a mangled row): neither serve
            # the foreign points nor mix ours under the same key.
            store = None
        else:
            store.record_sweep_meta(
                spec_key, spec.label, described, len(spec.family.params)
            )
            stored = store.sweep_points(spec_key)
    done = _journal_points(journal) if journal is not None else {}
    result = SweepResult(spec=spec)
    total = len(spec.family.params)
    served_store = 0
    for index, param in enumerate(spec.family.params, start=1):
        replayed = done.get((spec_key, index - 1))
        if replayed is None and index - 1 in stored:
            row = stored[index - 1]
            result.points.append(
                SweepPoint(
                    param=param,
                    n=int(row["n"]),
                    cost=float(row["cost"]),
                    elapsed=float(row["elapsed"]),
                    detail=row["detail"],
                )
            )
            served_store += 1
            if progress is not None:
                progress(
                    f"[{spec.label}] {index}/{total}: stored point "
                    f"restored (n={result.points[-1].n})"
                )
            continue
        if replayed is not None:
            point = SweepPoint(
                param=param,
                n=int(replayed["n"]),
                cost=float(replayed["cost"]),
                elapsed=float(replayed.get("elapsed", 0.0)),
                detail=replayed.get("detail"),
            )
            result.points.append(point)
            if store is not None:
                _record_point_to_store(store, spec_key, index - 1, point)
            if progress is not None:
                progress(
                    f"[{spec.label}] {index}/{total}: journaled point "
                    f"restored (n={result.points[-1].n})"
                )
            continue
        instance = spec.family.instance(param)
        started = time.perf_counter()
        cost, detail = spec.measure_point_detailed(instance, param, backend)
        elapsed = time.perf_counter() - started
        # Normalize the detail dict the way persistence will, so a
        # fresh result and its cache/store-restored twin are identical
        # (an int-keyed detail would otherwise come back str-keyed).
        detail = None if detail is None else _jsonify(detail)
        # .n, not .graph.num_nodes: implicit InstanceSpec points have no
        # graph — their size is a closed-form property of the spec.
        n = instance.n
        point = SweepPoint(
            param=param, n=n, cost=cost, elapsed=elapsed, detail=detail
        )
        result.points.append(point)
        if journal is not None:
            journal.append(
                {
                    "kind": "point",
                    "spec": spec_key,
                    "index": index - 1,
                    "param": repr(param),
                    "n": n,
                    "cost": cost,
                    "elapsed": elapsed,
                    "detail": detail,
                }
            )
        if store is not None:
            # Per point, not per sweep: a killed campaign keeps every
            # completed point (same crash-safety contract as the
            # journal, durable via sqlite instead of JSONL).
            _record_point_to_store(store, spec_key, index - 1, point)
        if progress is not None:
            progress(
                f"[{spec.label}] {index}/{total}: n={n} "
                f"{spec.metric if spec.measure is None else 'cost'}={cost:g} "
                f"({elapsed:.2f}s)"
            )
    if served_store == total and total > 0:
        result.from_store = True
        result.from_cache = True  # no measurement ran
    if cache is not None:
        cache.store(result)
    return result


def _record_sweep_to_store(store, spec_key: str, described, result) -> None:
    """Backfill a whole (cache-served) result into the store."""
    store.record_sweep_meta(
        spec_key, result.spec.label, described, len(result.points)
    )
    for index, point in enumerate(result.points):
        _record_point_to_store(store, spec_key, index, point)


def _record_point_to_store(store, spec_key: str, index: int, point) -> None:
    store.record_sweep_point(
        spec_key,
        index,
        param_repr=repr(point.param),
        n=point.n,
        cost=point.cost,
        detail=point.detail,
        elapsed=point.elapsed,
    )


def run_sweeps(
    specs: Iterable[SweepSpec],
    backend=None,
    cache: Optional[SweepCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    journal=None,
    store=None,
) -> List[SweepResult]:
    """Execute a batch of sweeps on one backend, in order.

    The closing progress line reports cache hits *separately* from
    executed sweeps — a cached result costs no measurements, so counting
    it as executed (as the summary used to) overstated the work done and
    made "N sweeps executed" unusable as a progress signal on warm
    caches.

    ``journal`` is a path (or an open :class:`~repro.faults.journal.Journal`)
    shared by the whole batch: completed grid points are appended
    durably, and a re-run of the same batch restores them instead of
    re-measuring (``repro sweep --journal``).  A journal written for a
    different batch is refused with
    :class:`~repro.faults.journal.JournalKeyError`.

    ``store`` (a :class:`~repro.corpus.results.ResultStore`) persists
    every executed point across runs and serves stored points back;
    see :func:`run_sweep`.
    """
    # A backend constructed *here* (from a spec string) is owned here:
    # a process pool nobody else can reach must not outlive the batch.
    # Caller-provided backend objects (and the shared default) are the
    # caller's to close.
    owned_backend = backend is not None and not isinstance(
        backend, ExecutionBackend
    )
    backend = get_backend(backend)
    specs = list(specs)
    jour: Optional[Journal] = None
    owned_journal = False
    if journal is not None:
        if isinstance(journal, Journal):
            jour = journal
        else:
            jour = open_sweep_journal(journal, specs)
            owned_journal = True
    try:
        results = [
            run_sweep(
                s, backend, cache=cache, progress=progress, journal=jour,
                store=store,
            )
            for s in specs
        ]
    finally:
        if owned_journal and jour is not None:
            jour.close()
        if owned_backend:
            backend.close()
    if progress is not None:
        cached = sum(1 for r in results if r.from_cache)
        line = (
            f"sweeps: {len(results) - cached} executed, {cached} cache "
            f"hit{'' if cached == 1 else 's'}"
        )
        if store is not None:
            served = sum(1 for r in results if r.from_store)
            line += f", {served} store hit{'' if served == 1 else 's'}"
        progress(line)
    return results


def cache_from_env(var: str = "REPRO_SWEEP_CACHE") -> Optional[SweepCache]:
    """A :class:`SweepCache` rooted at ``$REPRO_SWEEP_CACHE``, if set."""
    root = os.environ.get(var)
    return SweepCache(root) if root else None
