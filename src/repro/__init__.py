"""repro — reproduction of Rosenbaum & Suomela, "Seeing Far vs. Seeing
Wide: Volume Complexity of Local Graph Problems" (PODC 2020).

Public API surface: the problem definitions, the model runner, and the
instance generators; see README.md for a tour.
"""

from repro.graphs.labelings import Instance, Labeling, NodeLabel
from repro.graphs.port_graph import PortGraph
from repro.model.probe import CostProfile, ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.model.runner import (
    RunResult,
    SolveReport,
    run_algorithm,
    solve_and_check,
    success_probability,
)
from repro.problems import (
    BalancedTree,
    HHTHC,
    HierarchicalTHC,
    HybridTHC,
    LeafColoring,
)

__version__ = "1.0.0"

__all__ = [
    "BalancedTree",
    "CostProfile",
    "HHTHC",
    "HierarchicalTHC",
    "HybridTHC",
    "Instance",
    "Labeling",
    "LeafColoring",
    "NodeLabel",
    "PortGraph",
    "ProbeAlgorithm",
    "ProbeView",
    "RandomnessModel",
    "RunResult",
    "SolveReport",
    "run_algorithm",
    "solve_and_check",
    "success_probability",
]
