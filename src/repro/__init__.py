"""repro — reproduction of Rosenbaum & Suomela, "Seeing Far vs. Seeing
Wide: Volume Complexity of Local Graph Problems" (PODC 2020).

Public API surface: the problem definitions, the model runner, and the
instance generators; see README.md for a tour.
"""

from repro.adversary.engine import (
    InteractiveOracle,
    RecordingOracle,
    Transcript,
)
from repro.corpus import (
    InstanceCorpus,
    ResultStore,
)
from repro.exec.backends import (
    BackendSpec,
    BatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TrialOutcome,
    get_backend,
    parse_backend_spec,
)
from repro.faults import (
    ChaosReport,
    FaultLog,
    FaultPlan,
    Journal,
    RetryPolicy,
    run_chaos,
)
from repro.montecarlo import (
    MonteCarloResult,
    TrialPolicy,
    estimate_success_probability,
    run_trials,
)
from repro.exec.sweep import (
    InstanceFamily,
    SweepCache,
    SweepResult,
    SweepSpec,
    run_sweep,
    run_sweeps,
)
from repro.graphs.labelings import Instance, Labeling, NodeLabel
from repro.graphs.port_graph import PortGraph
from repro.model.implicit import (
    ImplicitOracle,
    InstanceSource,
    InstanceSpec,
    as_oracle,
    implicit_families,
)
from repro.model.probe import CostProfile, ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.model.runner import (
    RunResult,
    SolveReport,
    run_algorithm,
    solve_and_check,
    success_probability,
)
from repro.problems import (
    BalancedTree,
    HHTHC,
    HierarchicalTHC,
    HybridTHC,
    LeafColoring,
)
from repro.registry import (
    ADVERSARIES,
    ALGORITHMS,
    FAMILIES,
    PROBLEMS,
    iter_compatible,
    load_components,
    register_adversary,
    register_algorithm,
    register_family,
    register_problem,
)

__version__ = "1.8.0"

__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "BackendSpec",
    "BalancedTree",
    "BatchBackend",
    "ChaosReport",
    "FAMILIES",
    "FaultLog",
    "FaultPlan",
    "PROBLEMS",
    "CostProfile",
    "ExecutionBackend",
    "HHTHC",
    "HierarchicalTHC",
    "HybridTHC",
    "ImplicitOracle",
    "Instance",
    "InstanceCorpus",
    "InstanceFamily",
    "InstanceSource",
    "InstanceSpec",
    "InteractiveOracle",
    "Journal",
    "Labeling",
    "LeafColoring",
    "MonteCarloResult",
    "NodeLabel",
    "PortGraph",
    "ProbeAlgorithm",
    "ProbeView",
    "ProcessPoolBackend",
    "RandomnessModel",
    "RecordingOracle",
    "ResultStore",
    "RetryPolicy",
    "RunResult",
    "SerialBackend",
    "Transcript",
    "SolveReport",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "TrialOutcome",
    "TrialPolicy",
    "as_oracle",
    "estimate_success_probability",
    "get_backend",
    "implicit_families",
    "iter_compatible",
    "load_components",
    "parse_backend_spec",
    "register_adversary",
    "register_algorithm",
    "register_family",
    "register_problem",
    "run_algorithm",
    "run_chaos",
    "run_sweep",
    "run_sweeps",
    "run_trials",
    "solve_and_check",
    "success_probability",
]
