"""Registered instance families: the named parameter grids of the matrix.

Each family wraps one generator from :mod:`repro.graphs.generators` in a
deterministic module-level factory (the RNG is seeded from the grid
parameter, so the same name + parameter always yields the same instance,
in every process) and declares:

* which registered problems the instances are valid inputs for,
* a ``quick`` grid — small sizes for CI smoke runs and `repro bench
  --quick`, and
* a ``full`` grid — the sizes the paper-table benches sweep.

The full grids reproduce exactly the instances the Table-1 and Figure-1/2
benches have always used (same generator, same per-parameter seeds).
"""

from __future__ import annotations

import random

from repro.graphs.generators import (
    balanced_tree_instance,
    cycle_instance,
    hard_leaf_coloring_instance,
    hh_thc_instance,
    hierarchical_thc_instance,
    hybrid_thc_instance,
    leaf_coloring_instance,
    perturbed_leaf_coloring_instance,
    random_regular_instance,
    random_tree_instance,
    relay_instance,
)
from repro.model.implicit import det_backbone_color
from repro.registry import register_family


@register_family(
    "leaf-coloring",
    problems=("leaf-coloring",),
    quick=(3, 4, 5),
    full=(4, 5, 6, 7, 8),
    n_range=(15, 511),
    description="Complete binary trees with random leaf colors (§3).",
)
def leaf_coloring_family(depth: int):
    return leaf_coloring_instance(depth, rng=random.Random(depth))


@register_family(
    "leaf-coloring-hard",
    problems=("leaf-coloring",),
    quick=(3, 4, 5),
    full=(4, 5, 6, 7, 8),
    n_range=(15, 511),
    implicit=True,  # heap ids + one chi0 coin: pure function of id
    description="Proposition 3.12 promise instances: unanimous leaves.",
)
def leaf_coloring_hard_family(depth: int):
    return hard_leaf_coloring_instance(depth, rng=random.Random(depth))


@register_family(
    "balanced-tree",
    problems=("balanced-tree",),
    quick=(3, 4, 5),
    full=(3, 4, 5, 6, 7, 8),
    n_range=(15, 511),
    implicit=True,  # the compatible labeling draws no randomness
    description="Globally compatible BalancedTree instances (Def 4.2).",
)
def balanced_tree_family(depth: int):
    return balanced_tree_instance(depth, rng=random.Random(depth))


@register_family(
    "hierarchical-thc(2)",
    problems=("hierarchical-thc(2)",),
    quick=(3, 4, 6),
    full=(4, 8, 12, 16, 24),
    n_range=(12, 600),
    description="Balanced H-THC(2): Θ(√n) backbones (§5).",
)
def hierarchical_thc_2_family(backbone_length: int):
    return hierarchical_thc_instance(
        2, backbone_length, rng=random.Random(backbone_length)
    )


@register_family(
    "hierarchical-thc-det(2)",
    problems=("constant", "degree-parity"),
    quick=(3, 4, 6),
    full=(8, 16, 32),
    n_range=(12, 1056),
    implicit=True,  # colors are per-id CRC32 hashes, not an RNG stream
    description="H-THC(2) gadget with hash-deterministic backbone colors.",
)
def hierarchical_thc_det_2_family(backbone_length: int):
    instance = hierarchical_thc_instance(2, backbone_length)
    for node_id in instance.graph.nodes():
        instance.labeling[node_id].color = det_backbone_color(node_id)
    instance.name = f"hierarchical-thc-det-k2-m{backbone_length}"
    return instance


@register_family(
    "hybrid-thc(2)",
    problems=("hybrid-thc(2)",),
    quick=((2, 2), (3, 2), (3, 3)),
    full=((2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7)),
    n_range=(16, 1800),
    description="Hybrid-THC(2): BalancedTrees hanging off a backbone (§6).",
)
def hybrid_thc_2_family(shape):
    backbone_length, bt_depth = shape
    return hybrid_thc_instance(
        2, backbone_length, bt_depth, rng=random.Random(backbone_length)
    )


@register_family(
    "hh-thc(2,3)",
    problems=("hh-thc(2,3)",),
    quick=((3, 2, 2), (4, 2, 2), (4, 4, 2)),
    full=((5, 4, 3), (6, 8, 3), (8, 8, 4), (10, 16, 4), (12, 16, 5)),
    n_range=(56, 3000),
    description="HH-THC(2,3): two disjoint populations (§6.1).",
)
def hh_thc_2_3_family(shape):
    hierarchical_backbone, hybrid_backbone, bt_depth = shape
    return hh_thc_instance(
        2,
        3,
        hierarchical_backbone,
        hybrid_backbone,
        bt_depth,
        rng=random.Random(hierarchical_backbone),
    )


@register_family(
    "cycle",
    problems=(
        "cycle-3-coloring",
        "cycle-2-coloring",
        "mis",
        "constant",
        "degree-parity",
    ),
    quick=(8, 16, 32),
    full=(16, 64, 256, 1024),
    n_range=(8, 1024),
    description="Even cycles with shuffled polynomial-range IDs (Figs 1-2).",
)
def cycle_family(n: int):
    return cycle_instance(n, rng=random.Random(n))


@register_family(
    "cycle-uniform",
    problems=("constant", "degree-parity"),
    quick=(8, 16),
    full=(64, 1024, 65536),
    n_range=(8, 65536),
    implicit=True,  # sequential ids: neighbor_at is modular arithmetic
    description="Cycles with sequential IDs (the implicit giant-n cycle).",
)
def cycle_uniform_family(n: int):
    return cycle_instance(n, shuffle_ids=False)


@register_family(
    "cycle-small",
    problems=("mis",),
    quick=(8, 16),
    full=(16, 64, 256),
    n_range=(8, 256),
    description="Shorter cycle grid for the per-node-heavier MIS sweeps.",
)
def cycle_small_family(n: int):
    return cycle_instance(n, rng=random.Random(n))


# ----------------------------------------------------------------------
# randomized scenario families (PR 5): the grids stay deterministic —
# each parameter seeds its own RNG, so every process draws the same
# instance — but the *shapes* are random rather than hand-built, which
# widens the matrix beyond the paper's worst-case gadgets.
# ----------------------------------------------------------------------
@register_family(
    "random-tree",
    problems=("leaf-coloring",),
    quick=(40, 70, 100),
    full=(60, 120, 240, 480),
    n_range=(40, 520),
    description="Random binary pseudo-trees grown toward a target size.",
)
def random_tree_family(target_size: int):
    return random_tree_instance(target_size, rng=random.Random(target_size))


@register_family(
    "random-tree-cyclic",
    problems=("leaf-coloring",),
    quick=(48, 80, 120),
    full=(64, 160, 360, 480),
    n_range=(48, 520),
    description="Random pseudo-trees with the one G_T cycle (Obs 3.7).",
)
def random_tree_cyclic_family(target_size: int):
    return random_tree_instance(
        target_size,
        rng=random.Random(target_size),
        with_cycle=True,
        cycle_length=max(4, target_size // 10),
    )


@register_family(
    "leaf-coloring-perturbed",
    problems=("leaf-coloring",),
    quick=((3, 0.1), (4, 0.25), (5, 0.25)),
    full=((4, 0.1), (5, 0.25), (6, 0.5), (7, 0.25), (8, 0.25)),
    n_range=(15, 511),
    description="Prop 3.12 gadgets with a controlled leaf defect rate.",
)
def leaf_coloring_perturbed_family(shape):
    depth, defect_rate = shape
    return perturbed_leaf_coloring_instance(
        depth,
        defect_rate,
        rng=random.Random(int(depth * 100 + defect_rate * 100)),
    )


@register_family(
    "random-regular",
    problems=("constant", "degree-parity"),
    quick=(10, 20, 30),
    full=(16, 64, 256, 1024),
    n_range=(10, 1024),
    description="Sparse random 3-regular port graphs (pairing model).",
)
def random_regular_family(n: int):
    return random_regular_instance(n, degree=3, rng=random.Random(n))


@register_family(
    "relay",
    problems=("relay", "constant", "degree-parity"),
    quick=(2, 3),
    full=(3, 4, 5, 6),
    n_range=(14, 254),
    description="Example 7.6: two binary trees joined by one bridge edge.",
)
def relay_family(depth: int):
    return relay_instance(depth, rng=random.Random(depth))
