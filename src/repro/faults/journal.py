"""Crash-safe append-only journals for long campaign runs.

A journaled run appends one JSON line per *completed unit of work* — a
Monte-Carlo trial outcome, a sweep grid point — and fsyncs at batch
boundaries, so a ``kill -9`` (or power loss) can lose at most the batch
in flight.  Because every unit is a pure function of its seeds (trial
``i`` always runs under ``base_seed + i``; a sweep point is a
deterministic run), replaying the journal and continuing from the next
index reproduces the uninterrupted run *bitwise* — resume never needs
to trust partial state beyond "these units completed".

Format (one JSON document per line, UTF-8, ``\\n``-terminated)::

    {"journal": "repro-journal/1", "key": "<16-hex spec hash>", ...}
    {"kind": "trial", "trial": 0, "seed": 7, "valid": true, ...}
    {"kind": "point", "spec": "<hash>", "index": 0, "cost": 12.0, ...}

The header binds the file to the run's *spec hash* (problem, instance,
algorithm, policy, seed, budgets): opening an existing journal with a
different key raises :class:`JournalKeyError` — resuming someone else's
campaign silently would corrupt both.  A torn final line (the crash
wrote half a record) is detected and ignored; everything before it is
intact because records are only appended.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

MAGIC = "repro-journal/1"


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Durably replace ``path``'s contents: temp file + fsync + rename.

    The journal's discipline for whole-file writers: write the new
    contents to a temporary file *in the same directory* (``os.replace``
    is only atomic within one filesystem), flush + fsync it, then rename
    over the target.  A crash at any point leaves either the old file or
    the new one — never a torn or interleaved mix — and a concurrent
    writer's replace wins or loses wholesale instead of corrupting the
    target.  The directory entry is fsynced too (best effort) so the
    rename itself survives power loss.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=target.parent,
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    try:  # make the rename durable, where the platform allows it
        dir_fd = os.open(target.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(dir_fd)


class JournalError(RuntimeError):
    """The journal file is unusable (bad magic, unreadable header)."""


class JournalKeyError(JournalError):
    """The journal belongs to a different run spec.

    The message names both keys and the journal path: the actionable
    fixes are "point --journal at a fresh path" or "re-run the exact
    spec the journal was created for".
    """


class Journal:
    """One append-only JSONL journal bound to a spec key.

    ``records`` holds every intact record replayed from disk at open
    time (header excluded); :meth:`append` / :meth:`append_many` add new
    ones durably.  The file handle stays open in append mode for the
    journal's lifetime; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        path: Union[str, Path],
        key: str,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = Path(path)
        self.key = key
        self.records: List[Dict[str, object]] = []
        self._handle: Optional[io.TextIOWrapper] = None
        header_ok = False
        if self.path.exists() and self.path.stat().st_size > 0:
            header_ok = self._replay()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if not header_ok:
            self._write_line(
                {"journal": MAGIC, "key": key, "meta": meta or {}}
            )
            self.sync()

    # ------------------------------------------------------------------
    def _replay(self) -> bool:
        """Load intact records; drop a torn tail.  True if header stood.

        A crash mid-append leaves a torn final line (no terminator, or
        garbage JSON); every earlier line was fully written + newline
        before any later one started, so only the tail can be damaged.
        The file is *truncated* back to the last intact line — appending
        after a torn tail without truncating would weld the new record
        onto the dangling bytes and corrupt it too.
        """
        raw = self.path.read_bytes()
        good_end = 0  # byte offset one past the last intact line
        parsed: List[Dict[str, object]] = []
        start = 0
        while start < len(raw):
            newline = raw.find(b"\n", start)
            if newline < 0:
                break  # unterminated tail: the crash interrupted a write
            line = raw[start:newline]
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("not a record object")
            except (ValueError, UnicodeDecodeError):
                if newline == len(raw) - 1:
                    break  # torn tail that still got its newline
                raise JournalError(
                    f"journal {self.path} is corrupt mid-file at byte "
                    f"{start} (not just a torn tail); refusing to guess"
                ) from None
            parsed.append(record)
            start = good_end = newline + 1
        if good_end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
        if not parsed:
            return False  # only a torn header survived: start fresh
        header = parsed[0]
        if header.get("journal") != MAGIC:
            raise JournalError(
                f"{self.path} is not a {MAGIC} journal "
                f"(header: {header!r})"
            )
        if header.get("key") != self.key:
            raise JournalKeyError(
                f"journal {self.path} was written for spec key "
                f"{header.get('key')!r}, not {self.key!r}; use a fresh "
                "--journal path for a different run, or re-run the "
                "original spec to resume this one"
            )
        self.records = parsed[1:]
        return True

    def _write_line(self, record: Dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object], sync: bool = True) -> None:
        """Durably append one record (fsync unless ``sync=False``)."""
        self._write_line(record)
        self.records.append(record)
        if sync:
            self.sync()

    def append_many(self, records) -> None:
        """Append a batch with a single flush+fsync at the end."""
        wrote = False
        for record in records:
            self._write_line(record)
            self.records.append(record)
            wrote = True
        if wrote:
            self.sync()

    def sync(self) -> None:
        """Flush buffered lines and fsync the file to disk."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.records)


__all__ = [
    "Journal",
    "JournalError",
    "JournalKeyError",
    "MAGIC",
    "atomic_write_text",
]
