"""Fault-tolerant execution: supervision, retry, journals, chaos.

Everything in this package exploits one property the rest of the repo
already guarantees: every unit of work — a chunk of per-node executions,
a solve-and-check trial, a sweep grid point — is a *pure function of its
seeds*.  A lost unit can therefore be re-executed bitwise-identically,
which turns fault tolerance from a consistency problem into a dispatch
problem:

* :mod:`repro.faults.retry` — :class:`RetryPolicy` (bounded retries,
  deterministic backoff jitter) and the structured :class:`FaultLog`
  attached to results that survived faults;
* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultInjector`,
  the seeded deterministic fault schedules the chaos harness injects
  through the backends' zero-overhead-when-off hooks;
* :mod:`repro.faults.journal` — the crash-safe append-only
  :class:`Journal` behind ``repro mc --journal`` / ``repro sweep
  --journal`` resume;
* :mod:`repro.faults.chaos` — :func:`run_chaos`, which executes a
  workload under a fault plan and verifies bitwise result equivalence
  plus shared-memory cleanliness.

See DESIGN.md §11 for the fault model and the determinism argument.
"""

from repro.faults.journal import Journal, JournalError, JournalKeyError
from repro.faults.plan import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ShmAttachError,
)
from repro.faults.retry import FaultEvent, FaultLog, RetryPolicy

_CHAOS_EXPORTS = ("ChaosReport", "run_chaos", "shm_entries")


def __getattr__(name: str):
    # repro.faults.chaos imports the backends, which import this package:
    # resolving the chaos surface lazily keeps the import graph acyclic.
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_KINDS",
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "InjectedFault",
    "Journal",
    "JournalError",
    "JournalKeyError",
    "RetryPolicy",
    "ShmAttachError",
    "run_chaos",
    "shm_entries",
]
