"""The chaos harness: run a workload under faults, prove nothing changed.

The fault-tolerance contract has two halves — *results* (a supervised
run that survives injected faults is bitwise-identical to the fault-free
run, because every re-dispatched unit is a pure function of its seeds)
and *resources* (no shared-memory segment outlives the run, no matter
which failure path retired it).  :func:`run_chaos` checks both for one
workload × one :class:`~repro.faults.plan.FaultPlan`:

1. execute the workload fault-free on :class:`SerialBackend` (the
   reference semantics every backend must match);
2. execute it again on a supervised :class:`ProcessPoolBackend` with the
   plan's :class:`~repro.faults.plan.FaultInjector` active;
3. compare outputs/profiles (or per-trial outcomes) for bit equality,
   and assert the shared-memory registry and ``/dev/shm`` are exactly
   as they started.

``repro chaos`` (:mod:`repro.cli.chaos`) and the chaos property suite
(``tests/faults``) are thin wrappers over this function.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exec import shm as shm_layer
from repro.exec.backends import (
    FixedInstanceFactory,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.retry import FaultLog, RetryPolicy


def shm_entries() -> "set[str]":
    """Current ``psm_*`` segment files (empty on non-POSIX-shm hosts)."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-POSIX host
        return set()


@dataclass
class ChaosReport:
    """One chaos run's verdicts and evidence."""

    workload: str
    transport: str
    plan: FaultPlan
    equal: bool
    shm_clean: bool
    injected: int
    fault_log: FaultLog = field(default_factory=FaultLog)
    leaked: List[str] = field(default_factory=list)
    baseline_s: float = 0.0
    chaos_s: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.equal and self.shm_clean

    def to_payload(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "transport": self.transport,
            "plan": self.plan.describe(),
            "ok": self.ok,
            "equal": self.equal,
            "shm_clean": self.shm_clean,
            "injected": self.injected,
            "events": self.fault_log.to_payload(),
            "leaked": list(self.leaked),
            "baseline_s": self.baseline_s,
            "chaos_s": self.chaos_s,
            "detail": self.detail,
        }

    def format_line(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        notes = []
        if not self.equal:
            notes.append("results diverged")
        if not self.shm_clean:
            notes.append(f"shm residue: {self.leaked}")
        suffix = f" ({'; '.join(notes)})" if notes else ""
        return (
            f"{verdict}  {self.workload} [{self.transport}] "
            f"plan(seed={self.plan.seed}, rate={self.plan.rate:g}) "
            f"injected={self.injected} handled=[{self.fault_log.summary()}] "
            f"{self.chaos_s:.2f}s vs {self.baseline_s:.2f}s clean{suffix}"
        )


def run_chaos(
    problem,
    instance,
    algorithm,
    *,
    plan: FaultPlan,
    workers: int = 2,
    transport: str = "shm",
    seed: int = 0,
    trials: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """Run one workload under ``plan`` and verify nothing observable changed.

    ``trials=None`` runs the whole-instance workload (``backend.run``
    from every node); ``trials=k`` runs a fixed-instance solve-and-check
    trial batch instead (the Monte-Carlo shape — this is the only mode
    that needs ``problem``; pass ``problem=None`` otherwise).  A small
    ``chunk_size`` forces several chunks even on tiny test instances so
    faults have distinct units to hit.
    """
    if transport not in ("shm", "pickle"):
        raise ValueError(f"unknown transport {transport!r} (shm|pickle)")
    if retry is None:
        # Chaos runs must outlast the plan's worst case: give every
        # stage at least one attempt beyond the last faultable one.
        retry = RetryPolicy(max_attempts=plan.max_attempt + 2)
    before = shm_entries()
    serial = SerialBackend()
    if trials is None:
        started = time.perf_counter()
        baseline = serial.run(instance, algorithm, seed=seed)
        baseline_s = time.perf_counter() - started
    else:
        factory = FixedInstanceFactory(instance)
        started = time.perf_counter()
        baseline = serial.run_trial_batch(
            problem, factory, algorithm, range(trials), base_seed=seed
        )
        baseline_s = time.perf_counter() - started
    injector = FaultInjector(plan)
    pool = ProcessPoolBackend(
        workers=workers,
        chunk_size=chunk_size,
        shared_memory=(transport == "shm"),
        timeout=timeout,
        retry=retry,
        fault_injector=injector,
    )
    detail = ""
    try:
        started = time.perf_counter()
        if trials is None:
            chaotic = pool.run(instance, algorithm, seed=seed)
            equal = (
                chaotic.outputs == baseline.outputs
                and chaotic.profiles == baseline.profiles
            )
        else:
            chaotic = pool.run_trial_batch(
                problem,
                FixedInstanceFactory(instance),
                algorithm,
                range(trials),
                base_seed=seed,
            )
            equal = chaotic == baseline
        chaos_s = time.perf_counter() - started
        fault_log = pool.fault_log.since(0)
    except Exception as exc:  # a chaos run must never crash the harness
        chaos_s = time.perf_counter() - started
        equal = False
        detail = f"chaos run raised {type(exc).__name__}: {exc}"
        fault_log = pool.fault_log.since(0)
    finally:
        pool.close()
    leaked = sorted(
        (shm_entries() - before) | set(shm_layer.published_segments())
    )
    name = getattr(instance, "name", type(instance).__name__)
    workload = (
        f"run[{name}]" if trials is None else f"trials[{name}]x{trials}"
    )
    return ChaosReport(
        workload=workload,
        transport=transport,
        plan=plan,
        equal=equal,
        shm_clean=not leaked,
        injected=len(injector.fired),
        fault_log=fault_log,
        leaked=leaked,
        baseline_s=baseline_s,
        chaos_s=chaos_s,
        detail=detail,
    )


__all__ = ["ChaosReport", "run_chaos", "shm_entries"]
