"""Retry policies and the structured fault log.

The supervisor re-dispatches only the *lost* chunks of a run — chunk
outcomes are pure functions of ``(chunk nodes, seed)``, so a re-executed
chunk is bitwise-identical to the one that was lost and retrying is
semantically invisible.  :class:`RetryPolicy` bounds how hard it tries
and how long it waits; :class:`FaultLog` records what happened so a run
that survived faults says so instead of pretending nothing happened.

Backoff determinism: the jitter for ``(key, attempt)`` is drawn from a
string-seeded RNG that includes the dispatch seed, so re-running a
failed campaign reproduces the exact same delay schedule — chaos tests
can assert on wall-clock ordering without racing a global RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a lost unit, and how long to wait.

    ``max_attempts`` is the per-transport-stage budget: a chunk may run
    up to ``max_attempts`` times on its starting transport and, after a
    degradation, up to ``max_attempts`` more on the next one (the chain
    is shm → pickle → serial in-process; serial always completes or
    raises the real error).  ``app_attempts`` caps retries of *worker
    application errors* (an exception the chunk itself raised) — those
    are usually deterministic, so after ``app_attempts`` total tries the
    chunk goes straight to the serial stage, which reproduces the real
    exception for the caller instead of burning the full retry budget.

    Delays follow ``base_delay * backoff**attempt`` capped at
    ``max_delay``, scaled by a deterministic jitter factor in
    ``[1 - jitter, 1]`` drawn from the (seed-bearing) key.
    """

    max_attempts: int = 3
    app_attempts: int = 2
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.app_attempts < 1:
            raise ValueError("app_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, key: str, attempt: int) -> float:
        """The backoff before re-dispatching ``key``'s attempt ``attempt``."""
        raw = min(self.max_delay, self.base_delay * self.backoff**attempt)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(f"repro-retry:{key}:{attempt}")
        return raw * (1.0 - self.jitter * rng.random())

    def describe(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "app_attempts": self.app_attempts,
            "base_delay": self.base_delay,
            "backoff": self.backoff,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One observed failure (or injected fault) and the action taken.

    ``kind`` classifies what was observed (``worker-crash``,
    ``timeout``, ``chunk-error``, ``shm-attach``, ``shm-publish``,
    ``corrupt-payload``, or ``injected:<fault>``); ``action`` what the
    supervisor did about it (``retry``, ``degrade:pickle``,
    ``degrade:serial``, ``fallback:pickle``, ``injected``).  ``scope``
    names the dispatch (``run:3`` / ``trials:1``), ``unit`` the chunk
    index within it, ``attempt`` which try observed the failure.
    """

    kind: str
    scope: str
    unit: int
    attempt: int
    action: str
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "scope": self.scope,
            "unit": self.unit,
            "attempt": self.attempt,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass
class FaultLog:
    """An append-only record of everything the supervisor handled.

    Attached (as a snapshot slice) to :class:`~repro.model.runner.RunResult`
    and :class:`~repro.montecarlo.engine.MonteCarloResult` so fault
    recovery is visible in results and artifacts, never silent.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def since(self, mark: int) -> "FaultLog":
        """A snapshot of the events recorded after ``mark``."""
        return FaultLog(list(self.events[mark:]))

    def counts(self) -> Dict[str, int]:
        """Event totals by kind (the summary line chaos reports print)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_payload(self) -> List[Dict[str, object]]:
        return [event.to_payload() for event in self.events]

    def summary(self) -> str:
        if not self.events:
            return "no faults"
        parts = [f"{kind} x{n}" for kind, n in sorted(self.counts().items())]
        return ", ".join(parts)


__all__ = ["FaultEvent", "FaultLog", "RetryPolicy"]
