"""Deterministic fault plans: seeded schedules of injectable failures.

The supervision layer (``ProcessPoolBackend``'s retry/degradation loop)
is only trustworthy if its recovery paths are *exercised*, and they are
only testable if the failures that trigger them are reproducible.  A
:class:`FaultPlan` is therefore a pure value: a seed plus a fault-kind
menu, an injection rate, and a total budget.  Whether a given dispatch
unit is faulted — and with which kind — is a pure function of
``(plan, scope, unit, attempt)`` drawn from a string-seeded RNG, so two
runs of the same plan against the same workload inject byte-identical
fault schedules, and a chaos run can be compared bitwise against its
fault-free twin.

Injection sites (all decided in the *parent*, so the schedule never
depends on worker scheduling):

* ``kill-worker`` — the worker executing the chunk calls ``os._exit``
  mid-chunk, breaking the pool (``BrokenProcessPool``);
* ``delay-chunk`` — the worker sleeps ``delay_s`` before executing,
  tripping the per-chunk timeout when one is configured;
* ``transient-oserror`` — the worker raises ``OSError`` before
  executing (a transient infrastructure error; a retry succeeds);
* ``corrupt-payload`` — the parent truncates the pickled chunk payload,
  so the worker fails to unpickle it;
* ``shm-attach-fail`` — the worker refuses to attach the shared-memory
  segment (as if it vanished), forcing the pickle-transport fallback;
* ``shm-publish-fail`` — the parent's publish step fails, forcing the
  whole dispatch onto the pickle transport.

Worker-side kinds travel as a tiny *directive* prepended to the chunk
payload and interpreted by :func:`faulted_worker`; parent-side kinds are
applied directly by the backend.  When no plan is active the backend's
only cost is one ``is None`` check per dispatch — the hook is
zero-overhead when off.

A :class:`FaultInjector` wraps a plan for one backend's lifetime: it
enforces the total fault budget (consumed in deterministic dispatch
order) and records every injected fault.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: Every injectable fault kind, in documentation order.
FAULT_KINDS = (
    "kill-worker",
    "delay-chunk",
    "transient-oserror",
    "corrupt-payload",
    "shm-attach-fail",
    "shm-publish-fail",
)

#: Kinds that ride into the worker as a directive (the rest are
#: applied parent-side by the backend).
WORKER_KINDS = (
    "kill-worker",
    "delay-chunk",
    "transient-oserror",
    "shm-attach-fail",
)


class ShmAttachError(RuntimeError):
    """A worker could not attach the published shared-memory segment.

    Raised for real by a vanished segment (``FileNotFoundError`` maps to
    it) and injected by the ``shm-attach-fail`` fault; the supervisor
    degrades the affected chunk to the pickle transport either way.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, bounded schedule of injectable faults.

    ``rate`` is the per-(unit, attempt) injection probability; ``kinds``
    the menu a firing fault is drawn from (uniformly); ``max_faults``
    the total budget across the plan's lifetime (consumed in dispatch
    order); ``delay_s`` how long a ``delay-chunk`` fault sleeps;
    ``max_attempt`` the last attempt index faults may fire on (letting
    plans that should eventually succeed stop interfering with retries).
    """

    seed: int = 0
    kinds: Tuple[str, ...] = FAULT_KINDS
    rate: float = 0.25
    max_faults: int = 4
    delay_s: float = 1.5
    max_attempt: int = 2

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ValueError("a fault plan needs at least one fault kind")
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown!r} "
                f"(expected a subset of {list(FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.max_faults < 0:
            raise ValueError("max_faults must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.max_attempt < 0:
            raise ValueError("max_attempt must be >= 0")

    def draw(self, scope: str, unit: int, attempt: int) -> Optional[str]:
        """The fault (if any) scheduled for one dispatch of one unit.

        A pure function of the arguments: the RNG is seeded from the
        plan seed plus the full coordinate, so the schedule is
        independent of wall clock, completion order, and process
        identity.  Budget enforcement lives in :class:`FaultInjector`.
        """
        if attempt > self.max_attempt:
            return None
        rng = random.Random(
            f"repro-fault:{self.seed}:{scope}:{unit}:{attempt}"
        )
        if rng.random() >= self.rate:
            return None
        return self.kinds[rng.randrange(len(self.kinds))]

    def describe(self) -> dict:
        """A stable JSON-able descriptor (chaos reports, artifacts)."""
        return {
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rate": self.rate,
            "max_faults": self.max_faults,
            "delay_s": self.delay_s,
            "max_attempt": self.max_attempt,
        }


@dataclass
class InjectedFault:
    """One fault the injector actually fired."""

    kind: str
    scope: str
    unit: int
    attempt: int


class FaultInjector:
    """A plan activated for one backend: budget state + fired log.

    The backend asks :meth:`fault_for` once per (chunk, attempt) it
    dispatches; the injector applies the plan's pure schedule, consumes
    the budget in that deterministic query order, and records what
    fired.  ``allowed`` filters the plan's menu per dispatch context
    (e.g. shm kinds only make sense on the shm transport).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: List[InjectedFault] = []

    @property
    def remaining(self) -> int:
        return max(0, self.plan.max_faults - len(self.fired))

    def fault_for(
        self,
        scope: str,
        unit: int,
        attempt: int,
        allowed: Optional[Sequence[str]] = None,
    ) -> Optional[str]:
        """The fault to inject for this dispatch, consuming budget."""
        if self.remaining == 0:
            return None
        kind = self.plan.draw(scope, unit, attempt)
        if kind is None:
            return None
        if allowed is not None and kind not in allowed:
            return None
        self.fired.append(InjectedFault(kind, scope, unit, attempt))
        return kind


# ----------------------------------------------------------------------
# Worker-side directive transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultDirective:
    """The worker-side half of an injected fault (pickled per chunk)."""

    kind: str
    delay_s: float = 0.0


def apply_directive(directive: FaultDirective) -> None:
    """Execute one directive inside a worker process."""
    if directive.kind == "kill-worker":
        # A hard exit, not an exception: the point is to break the pool
        # the way an OOM-kill or segfault would.
        os._exit(23)
    if directive.kind == "delay-chunk":
        time.sleep(directive.delay_s)
        return
    if directive.kind == "transient-oserror":
        raise OSError("injected transient I/O error")
    if directive.kind == "shm-attach-fail":
        raise ShmAttachError("injected shared-memory attach failure")
    raise ValueError(f"unknown fault directive {directive.kind!r}")


def faulted_worker(payload: bytes):
    """Worker entry point wrapping another worker with a directive.

    The payload is ``pickle((directive, inner_worker, inner_payload))``;
    the directive runs first (and may never return), then the wrapped
    worker runs unchanged — so a surviving faulted chunk produces
    exactly the bytes the clean dispatch would have.
    """
    directive, inner, inner_payload = pickle.loads(payload)
    apply_directive(directive)
    return inner(inner_payload)


def wrap_payload(kind: str, plan: FaultPlan, worker, payload: bytes):
    """Parent-side helper: apply ``kind`` to one chunk dispatch.

    Returns ``(worker, payload)`` — either the originals (no-op), a
    truncated payload (``corrupt-payload``; guaranteed to fail
    unpickling in the worker), or the :func:`faulted_worker` wrapper
    carrying a directive.
    """
    if kind == "corrupt-payload":
        return worker, payload[: max(1, len(payload) - 16)]
    if kind in WORKER_KINDS:
        directive = FaultDirective(kind, delay_s=plan.delay_s)
        return faulted_worker, pickle.dumps((directive, worker, payload))
    return worker, payload


__all__ = [
    "FAULT_KINDS",
    "WORKER_KINDS",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "ShmAttachError",
    "apply_directive",
    "faulted_worker",
    "wrap_payload",
]
