"""Component registry: every problem, algorithm, and instance family by name.

The paper's volume-model components — LCL problems, probe algorithms, and
the instance families their proofs use — are registered under stable
string names with capability metadata, so sweeps, smoke matrices, and CI
gates can be *enumerated* instead of hand-written:

* ``@register_problem`` / ``@register_algorithm`` decorate the defining
  classes in :mod:`repro.problems` and :mod:`repro.algorithms`
  (parameterized constructions register one canonical parameterization
  via ``defaults``, e.g. ``hierarchical-thc(2)``);
* ``@register_family`` decorates ``factory(param) -> Instance`` functions
  in :mod:`repro.families`, each carrying a quick grid (CI smoke) and a
  full grid (the paper-table sizes);
* :func:`iter_compatible` enumerates the problem x algorithm x family
  matrix from the declared capabilities (which problem an algorithm
  solves, which families realize a problem, per-algorithm family
  restrictions such as promise-only solvers).

This module is deliberately import-light: the component modules import
*it*, and :func:`load_components` imports *them* on first use, so lookup
by name works without hand-maintaining an import list at every call site.
"""

from __future__ import annotations

import difflib
import functools
import importlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


class RegistryError(LookupError):
    """Unknown component name or conflicting registration.

    Derives from ``LookupError`` (not ``KeyError``, whose ``__str__``
    repr-quotes the message) so ``str(exc)`` is printable as-is.
    """


def _first_docline(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


@dataclass(frozen=True)
class ProblemEntry:
    """One registered LCL problem (or global problem, e.g. relay)."""

    name: str
    factory: Callable[[], object]
    cls: type
    tags: Tuple[str, ...] = ()
    description: str = ""

    def make(self) -> object:
        return self.factory()


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered probe algorithm and its capabilities.

    ``problem`` names the registered problem the algorithm solves;
    ``families`` (when set) restricts validity to specific instance
    families (e.g. promise-only solvers like ``leaf-coloring/secret-rw``);
    ``seed`` is a default seed under which the quick grids validate —
    randomized solvers succeed w.h.p., not surely, so smoke matrices pin
    a known-good seed instead of rolling the dice per CI run.
    """

    name: str
    factory: Callable[[], object]
    cls: type
    problem: str
    randomized: bool = False
    seed: int = 0
    families: Optional[Tuple[str, ...]] = None
    description: str = ""

    def make(self) -> object:
        return self.factory()


@dataclass(frozen=True)
class FamilyEntry:
    """One registered instance family: ``factory(param) -> Instance``.

    ``problems`` lists every registered problem the generated instances
    are valid inputs for; ``quick``/``full`` are the parameter grids used
    by CI smoke runs and the paper-table benches; ``n_range`` documents
    the approximate instance sizes the full grid spans.  ``implicit``
    declares that the family also has an implicit generator in
    :mod:`repro.model.implicit` — node neighborhoods are pure functions
    of the node id, so an :class:`~repro.model.implicit.InstanceSpec`
    naming this family can be served at giant n without materializing
    the graph (the differential suite pins generator == factory).
    """

    name: str
    factory: Callable[[object], object]
    problems: Tuple[str, ...]
    quick: Tuple[object, ...]
    full: Tuple[object, ...]
    n_range: Tuple[int, int] = (0, 0)
    implicit: bool = False
    description: str = ""

    def params(self, grid: str = "quick") -> Tuple[object, ...]:
        if grid not in ("quick", "full"):
            raise ValueError(f"unknown grid {grid!r} (expected quick/full)")
        return self.quick if grid == "quick" else self.full

    def instance(self, param: object) -> object:
        return self.factory(param)

    def instance_family(self, grid: str = "quick"):
        """A sweep-orchestrator :class:`InstanceFamily` over one grid."""
        from repro.exec.sweep import InstanceFamily

        return InstanceFamily(self.name, self.factory, self.params(grid))


@dataclass(frozen=True)
class AdversaryEntry:
    """One registered interactive adversary (a lower-bound process P).

    ``problem`` names the registered problem whose complexity the game
    bounds and ``bound`` states the Ω-claim it witnesses; ``victim`` is
    the registered deterministic algorithm the game runs against by
    default.  ``quick``/``full`` are budget grids (the game's size
    parameter), and the measured query/bit curve over a grid must fit
    one of ``expected_fit`` (chosen among ``candidates``) for the bench
    gate to pass.
    """

    name: str
    factory: Callable[..., object]
    cls: type
    problem: str
    bound: str
    victim: str
    quick: Tuple[object, ...]
    full: Tuple[object, ...]
    expected_fit: Tuple[str, ...]
    candidates: Tuple[str, ...]
    description: str = ""

    def make(self, victim: Optional[str] = None) -> object:
        return self.factory(victim)

    def params(self, grid: str = "quick") -> Tuple[object, ...]:
        if grid not in ("quick", "full"):
            raise ValueError(f"unknown grid {grid!r} (expected quick/full)")
        return self.quick if grid == "quick" else self.full


class Registry:
    """An ordered name -> entry mapping with helpful lookup errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, object] = {}

    def add(self, entry) -> None:
        if entry.name in self._entries:
            raise RegistryError(
                f"duplicate {self.kind} registration: {entry.name!r}"
            )
        self._entries[entry.name] = entry

    def get(self, name: str):
        try:
            return self._entries[name]
        except KeyError:
            close = difflib.get_close_matches(name, self._entries, n=3)
            hint = f" (did you mean: {', '.join(close)}?)" if close else ""
            raise RegistryError(
                f"unknown {self.kind} {name!r}{hint}; "
                f"see `repro list` for all registered names"
            ) from None

    def names(self) -> List[str]:
        return list(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


PROBLEMS = Registry("problem")
ALGORITHMS = Registry("algorithm")
FAMILIES = Registry("instance family")
ADVERSARIES = Registry("adversary")


def _partial_factory(cls: type, defaults: Optional[Dict[str, object]]):
    if not defaults:
        return cls
    return functools.partial(cls, **defaults)


def register_problem(
    name: str,
    *,
    defaults: Optional[Dict[str, object]] = None,
    tags: Sequence[str] = (),
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator: register a problem under ``name``.

    ``defaults`` partially applies constructor keywords, registering one
    canonical parameterization of a parameterized construction.
    """

    def decorate(cls: type) -> type:
        PROBLEMS.add(
            ProblemEntry(
                name=name,
                factory=_partial_factory(cls, defaults),
                cls=cls,
                tags=tuple(tags),
                description=description or _first_docline(cls),
            )
        )
        return cls

    return decorate


def register_algorithm(
    name: str,
    *,
    problem: str,
    defaults: Optional[Dict[str, object]] = None,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator: register a probe algorithm under ``name``.

    Whether the algorithm is randomized is derived from the instance the
    factory builds (its ``is_randomized`` property), so the metadata can
    never drift from the implementation.
    """

    def decorate(cls: type) -> type:
        factory = _partial_factory(cls, defaults)
        ALGORITHMS.add(
            AlgorithmEntry(
                name=name,
                factory=factory,
                cls=cls,
                problem=problem,
                randomized=bool(getattr(factory(), "is_randomized", False)),
                seed=seed,
                families=None if families is None else tuple(families),
                description=description or _first_docline(cls),
            )
        )
        return cls

    return decorate


def register_family(
    name: str,
    *,
    problems: Sequence[str],
    quick: Sequence[object],
    full: Sequence[object],
    n_range: Tuple[int, int] = (0, 0),
    implicit: bool = False,
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Function decorator: register ``factory(param) -> Instance``.

    Pass ``implicit=True`` only for families with a matching implicit
    generator registered in :mod:`repro.model.implicit` (the capability
    the giant-n :class:`~repro.model.implicit.InstanceSpec` path keys
    on); the differential suite cross-checks the two registries.
    """

    def decorate(factory: Callable) -> Callable:
        FAMILIES.add(
            FamilyEntry(
                name=name,
                factory=factory,
                problems=tuple(problems),
                quick=tuple(quick),
                full=tuple(full),
                n_range=n_range,
                implicit=implicit,
                description=description or _first_docline(factory),
            )
        )
        return factory

    return decorate


def register_adversary(
    name: str,
    *,
    problem: str,
    bound: str,
    victim: str,
    quick: Sequence[object],
    full: Sequence[object],
    expected_fit: Sequence[str],
    candidates: Sequence[str],
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator: register an interactive adversary under ``name``.

    The class must subclass :class:`repro.adversary.base.Adversary`; its
    constructor takes an optional victim-algorithm override.
    """

    def decorate(cls: type) -> type:
        ADVERSARIES.add(
            AdversaryEntry(
                name=name,
                factory=cls,
                cls=cls,
                problem=problem,
                bound=bound,
                victim=victim,
                quick=tuple(quick),
                full=tuple(full),
                expected_fit=tuple(expected_fit),
                candidates=tuple(candidates),
                description=description or _first_docline(cls),
            )
        )
        return cls

    return decorate


# ----------------------------------------------------------------------
# population and enumeration
# ----------------------------------------------------------------------
_COMPONENT_MODULES: Tuple[str, ...] = (
    "repro.problems",
    "repro.algorithms.classic_algs",
    "repro.algorithms.trivial_algs",
    "repro.algorithms.leaf_coloring_algs",
    "repro.algorithms.balanced_tree_algs",
    "repro.algorithms.hierarchical_algs",
    "repro.algorithms.hybrid_algs",
    "repro.algorithms.hh_algs",
    "repro.families",
    "repro.adversary.leaf_coloring",
    "repro.adversary.hierarchical",
    "repro.adversary.disjointness",
)

_loaded = False


def load_components() -> None:
    """Import every component module so all registrations have run."""
    global _loaded
    if _loaded:
        return
    for module in _COMPONENT_MODULES:
        importlib.import_module(module)
    _loaded = True


@dataclass(frozen=True)
class MatrixCell:
    """One compatible (problem, algorithm, family) triple."""

    problem: ProblemEntry
    algorithm: AlgorithmEntry
    family: FamilyEntry

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.problem.name, self.algorithm.name, self.family.name)


def iter_compatible(
    problems: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
) -> Iterator[MatrixCell]:
    """Enumerate the compatible problem x algorithm x family matrix.

    A cell exists when the algorithm declares the problem, the family
    lists the problem among its valid inputs, and the algorithm's family
    restriction (if any) admits the family.  Optional name lists filter
    each axis.  Iteration order follows registration order, so the matrix
    is deterministic across runs.
    """
    load_components()
    for algorithm in ALGORITHMS:
        if algorithms is not None and algorithm.name not in algorithms:
            continue
        problem = PROBLEMS.get(algorithm.problem)
        if problems is not None and problem.name not in problems:
            continue
        for family in FAMILIES:
            if families is not None and family.name not in families:
                continue
            if problem.name not in family.problems:
                continue
            if (
                algorithm.families is not None
                and family.name not in algorithm.families
            ):
                continue
            yield MatrixCell(problem=problem, algorithm=algorithm, family=family)


__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "AdversaryEntry",
    "AlgorithmEntry",
    "FAMILIES",
    "FamilyEntry",
    "MatrixCell",
    "PROBLEMS",
    "ProblemEntry",
    "Registry",
    "RegistryError",
    "iter_compatible",
    "load_components",
    "register_adversary",
    "register_algorithm",
    "register_family",
    "register_problem",
]
