"""Batched flat-array gather kernels over compiled CSR instances.

The scalar engine (:mod:`repro.model.probe` + :func:`repro.model.views.
gather_ball`) executes one node's exploration at a time through a
:class:`~repro.model.probe.ProbeView`, paying per-query bookkeeping
(visited dict, adjacency sets, incremental-DIST labels) on every probe.
For the repo's dominant workload — deterministic full-gather algorithms
run from *every* start node — all of that bookkeeping is recomputable
from the CSR arrays directly: a whole-run batch of start nodes advances
as flat frontier arrays of dense indices over ``port_offsets`` /
``port_endpoints``, with a stamped scratch array replacing the per-start
visited set.

:class:`CsrGatherKernel` provides two tiers:

* :meth:`summarize` — ``(ball size, eccentricity, queries)`` for one
  start, touching nothing but flat ``int`` arrays.  This is what
  summary-style gather algorithms (the hot-path bench's pure gather)
  consume; it allocates no per-node Python objects at all.
* :meth:`ball` — a **bit-exact replica** of
  ``gather_ball(view, radius)``: the same :class:`~repro.model.views.
  Ball` content *and insertion orders* (discovery order, port order,
  adjacency row creation order), plus the exact
  :class:`~repro.model.probe.CostProfile` the scalar engine would have
  produced.  Full-gather algorithms rebuild their local instance from it
  and reference-solve as before, so outputs are bitwise identical.

Correctness argument (DESIGN.md §9.3): ``gather_ball`` is a level-order
BFS probing each expanded node's *connected* ports in ascending order —
exactly the order the CSR row stores them — so replaying that loop over
the flat arrays visits the same nodes in the same order and issues the
same query count.  The scalar profile's ``distance`` equals the maximum
BFS depth: discovery depth is the true component distance (BFS over all
edges of every expanded node), the explored subgraph is a subgraph of
the component (so explored distances are ≥ true distances) and contains
every discovery edge (so they are ≤ the depth); the incremental-DIST
labels therefore never relax below depth and the maximum label is the
maximum depth.  ``volume`` equals the ball size because every queried
endpoint joins the ball in the same iteration it becomes visited.  The
scalar path survives untouched as the reference semantics; the
equivalence suite (``tests/perf`` + ``tests/model/test_batched_kernel``)
pins batched == scalar on every registry cell.

The kernel only ever *applies* when the scalar run would have been
deterministic and unbudgeted — the dispatch gate in
``repro.exec.backends._execute_nodes`` requires a compiled oracle, a
deterministic algorithm, and no volume/query budget (truncation
semantics stay with the scalar engine).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.model.probe import CostProfile
from repro.model.views import Ball


class CsrGatherKernel:
    """Flat-array gather engine for one compiled oracle's CSR snapshot.

    One kernel is memoized per :class:`~repro.model.oracle.CompiledOracle`
    (see :meth:`~repro.model.oracle.CompiledOracle.gather_kernel`), so
    its scratch arrays are shared by every start node of a whole-run
    batch — the per-start cost is the BFS itself, nothing else.
    """

    __slots__ = (
        "_oracle",
        "_frozen",
        "_ids",
        "_offsets",
        "_endpoints",
        "_seen",
        "_stamp",
    )

    def __init__(self, oracle) -> None:
        frozen = oracle.frozen_graph
        self._oracle = oracle
        self._frozen = frozen
        self._ids = frozen.node_ids()
        self._offsets = frozen.port_offsets
        self._endpoints = frozen.port_endpoints
        # Stamped scratch: bumping the stamp "clears" the visited marks
        # for the next start without touching n entries.
        self._seen = [0] * frozen.num_nodes
        self._stamp = 0

    def summarize(self, start_id: int, radius: int) -> Tuple[int, int, int]:
        """``(ball size, max depth, queries)`` of a radius-bounded gather.

        Matches ``gather_ball(view, radius)`` started at ``start_id``:
        size is the number of distinct nodes discovered, max depth is the
        scalar profile's ``distance``, and queries counts one probe per
        connected port of every expanded node (nodes discovered at depth
        ``radius`` are never expanded, exactly as in the scalar loop).
        """
        offsets = self._offsets
        endpoints = self._endpoints
        seen = self._seen
        self._stamp += 1
        stamp = self._stamp
        start = self._frozen.dense_index(start_id)
        seen[start] = stamp
        frontier: List[int] = [start]
        size = 1
        depth_max = 0
        queries = 0
        for depth in range(1, radius + 1):
            nxt: List[int] = []
            for u in frontier:
                for off in range(offsets[u], offsets[u + 1]):
                    e = endpoints[off]
                    if e < 0:
                        continue
                    queries += 1
                    if seen[e] != stamp:
                        seen[e] = stamp
                        nxt.append(e)
            if not nxt:
                break
            frontier = nxt
            size += len(nxt)
            depth_max = depth
        return size, depth_max, queries

    def ball(self, start_id: int, radius: int) -> Tuple[Ball, CostProfile]:
        """A bit-exact replica of ``gather_ball(view, radius)``.

        The returned :class:`Ball` reproduces the scalar gather's dict
        contents *and insertion orders* (discovery order for ``info`` /
        ``distance``, expansion order for ``adjacency`` rows, ascending
        port order within a row), so downstream consumers that are
        sensitive to iteration order — ``ball_to_instance`` and whatever
        reference solver runs on its output — see an identical value.
        The profile is the one the scalar engine would have measured.
        """
        oracle = self._oracle
        ids = self._ids
        offsets = self._offsets
        endpoints = self._endpoints
        node_info = oracle.node_info
        ball = Ball(center=start_id, radius=radius)
        info_map = ball.info
        distance = ball.distance
        adjacency = ball.adjacency
        info_map[start_id] = node_info(start_id)
        distance[start_id] = 0
        frontier: List[int] = [self._frozen.dense_index(start_id)]
        depth_max = 0
        queries = 0
        for depth in range(1, radius + 1):
            nxt: List[int] = []
            for u in frontier:
                uid = ids[u]
                base = offsets[u]
                row = None
                for off in range(base, offsets[u + 1]):
                    e = endpoints[off]
                    if e < 0:
                        continue
                    queries += 1
                    if row is None:
                        row = adjacency.setdefault(uid, {})
                    nid = ids[e]
                    row[off - base + 1] = nid
                    if nid not in distance:
                        distance[nid] = depth
                        info_map[nid] = node_info(nid)
                        nxt.append(e)
            if not nxt:
                break
            frontier = nxt
            depth_max = depth
        profile = CostProfile(
            volume=len(distance),
            distance=depth_max,
            queries=queries,
            random_bits=0,
        )
        return ball, profile


def gather_kernel(oracle) -> Optional[CsrGatherKernel]:
    """The memoized CSR kernel behind ``oracle``, or ``None``.

    Only :class:`~repro.model.oracle.CompiledOracle` carries a kernel;
    reference oracles (and the lazy adversarial ones) return ``None``,
    which tells batch-capable algorithms to fall back to the scalar
    engine.
    """
    factory = getattr(oracle, "gather_kernel", None)
    return None if factory is None else factory()


__all__ = ["CsrGatherKernel", "gather_kernel"]
