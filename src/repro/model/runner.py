"""Running algorithms over whole instances and verifying the results.

Definition 2.4: an algorithm solves a problem when the per-node outputs
``L'(v) = A(v, G, L)`` form a valid output labeling.  The runner executes
the algorithm once from *every* node (they share one tape store, so a
randomized run is one joint sample of all nodes' strings), aggregates the
cost profiles, and checks validity against the problem's checker.

*How* the per-node executions are dispatched is delegated to an
:class:`~repro.exec.backends.ExecutionBackend`: every entry point takes a
``backend=`` argument (``None`` → serial, the reference semantics; other
backends are drop-in and produce bitwise-identical results — see
``repro.exec``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.graphs.labelings import Instance
from repro.model.probe import CostProfile, ProbeAlgorithm


@dataclass
class RunResult:
    """Outputs and cost profiles of one whole-instance run.

    The worst-case cost properties read as 0 on an empty run (no started
    executions — e.g. ``run_algorithm(..., nodes=[])``): the maximum over
    an empty set of executions is vacuously zero cost here, and returning
    0 beats surfacing a bare ``max() arg is an empty sequence``.
    """

    algorithm: str
    instance: str
    outputs: Dict[int, object] = field(default_factory=dict)
    profiles: Dict[int, CostProfile] = field(default_factory=dict)

    @property
    def max_volume(self) -> int:
        """``VOL_n(A)`` on this instance: the worst per-node volume."""
        return max((p.volume for p in self.profiles.values()), default=0)

    @property
    def max_distance(self) -> int:
        """``DIST_n(A)`` on this instance: the worst per-node distance."""
        return max((p.distance for p in self.profiles.values()), default=0)

    @property
    def max_queries(self) -> int:
        return max((p.queries for p in self.profiles.values()), default=0)

    @property
    def mean_volume(self) -> float:
        if not self.profiles:
            return 0.0
        return statistics.fmean(p.volume for p in self.profiles.values())

    @property
    def total_random_bits(self) -> int:
        return sum(p.random_bits for p in self.profiles.values())

    @property
    def truncated_nodes(self) -> List[int]:
        return [v for v, p in self.profiles.items() if p.truncated]


def run_algorithm(
    instance: Instance,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    nodes: Optional[Iterable[int]] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> RunResult:
    """Execute ``algorithm`` from every node (or the given subset).

    ``backend`` selects the execution strategy (an
    :class:`~repro.exec.backends.ExecutionBackend`, a name like
    ``"process:4"``, or ``None`` for serial); all backends return
    identical results for identical seeds.
    """
    from repro.exec.backends import get_backend

    return get_backend(backend).run(
        instance,
        algorithm,
        nodes,
        seed=seed,
        max_volume=max_volume,
        max_queries=max_queries,
    )


@dataclass
class SolveReport:
    """A run together with its validity verdict."""

    run: RunResult
    valid: bool
    violations: List["Violation"]

    @property
    def max_volume(self) -> int:
        return self.run.max_volume

    @property
    def max_distance(self) -> int:
        return self.run.max_distance


def solve_and_check(
    problem,
    instance: Instance,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> SolveReport:
    """Run the algorithm on the full instance and verify its output."""
    run = run_algorithm(
        instance,
        algorithm,
        seed=seed,
        max_volume=max_volume,
        max_queries=max_queries,
        backend=backend,
    )
    violations = problem.validate(instance, run.outputs)
    return SolveReport(run=run, valid=not violations, violations=violations)


def success_probability(
    problem,
    instance_factory,
    algorithm: ProbeAlgorithm,
    trials: int,
    base_seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> float:
    """Fraction of independent trials in which the algorithm solved Π.

    ``instance_factory(trial_index)`` supplies the input for each trial
    (fixed instance, or a fresh draw from a hard distribution as in the
    Proposition 3.12 experiment); trial ``i`` uses seed ``base_seed + i``.

    With a :class:`~repro.exec.backends.BatchBackend` the per-trial
    oracle construction is amortized across trials on a repeated
    instance; a :class:`~repro.exec.backends.ProcessPoolBackend` fans the
    trials out across workers.  The value is backend-independent.
    """
    from repro.exec.backends import get_backend

    return get_backend(backend).success_probability(
        problem,
        instance_factory,
        algorithm,
        trials,
        base_seed=base_seed,
        max_volume=max_volume,
        max_queries=max_queries,
    )


# Imported late to avoid a cycle: problems import model pieces too.
from repro.lcl.base import Violation  # noqa: E402
