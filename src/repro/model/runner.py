"""Running algorithms over whole instances and verifying the results.

Definition 2.4: an algorithm solves a problem when the per-node outputs
``L'(v) = A(v, G, L)`` form a valid output labeling.  The runner executes
the algorithm once from *every* node (they share one tape store, so a
randomized run is one joint sample of all nodes' strings), aggregates the
cost profiles, and checks validity against the problem's checker.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.graphs.labelings import Instance
from repro.model.oracle import StaticOracle
from repro.model.probe import CostProfile, ProbeAlgorithm, execute_at
from repro.model.randomness import TapeStore


@dataclass
class RunResult:
    """Outputs and cost profiles of one whole-instance run."""

    algorithm: str
    instance: str
    outputs: Dict[int, object] = field(default_factory=dict)
    profiles: Dict[int, CostProfile] = field(default_factory=dict)

    @property
    def max_volume(self) -> int:
        """``VOL_n(A)`` on this instance: the worst per-node volume."""
        return max(p.volume for p in self.profiles.values())

    @property
    def max_distance(self) -> int:
        """``DIST_n(A)`` on this instance: the worst per-node distance."""
        return max(p.distance for p in self.profiles.values())

    @property
    def max_queries(self) -> int:
        return max(p.queries for p in self.profiles.values())

    @property
    def mean_volume(self) -> float:
        return statistics.fmean(p.volume for p in self.profiles.values())

    @property
    def total_random_bits(self) -> int:
        return sum(p.random_bits for p in self.profiles.values())

    @property
    def truncated_nodes(self) -> List[int]:
        return [v for v, p in self.profiles.items() if p.truncated]


def run_algorithm(
    instance: Instance,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    nodes: Optional[Iterable[int]] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
) -> RunResult:
    """Execute ``algorithm`` from every node (or the given subset)."""
    oracle = StaticOracle(instance)
    tapes = TapeStore(seed) if algorithm.is_randomized else None
    result = RunResult(algorithm=algorithm.name, instance=instance.name)
    node_iter = instance.graph.nodes() if nodes is None else nodes
    for node in node_iter:
        output, profile = execute_at(
            oracle,
            algorithm,
            node,
            tape_store=tapes,
            max_volume=max_volume,
            max_queries=max_queries,
        )
        result.outputs[node] = output
        result.profiles[node] = profile
    return result


@dataclass
class SolveReport:
    """A run together with its validity verdict."""

    run: RunResult
    valid: bool
    violations: List["Violation"]

    @property
    def max_volume(self) -> int:
        return self.run.max_volume

    @property
    def max_distance(self) -> int:
        return self.run.max_distance


def solve_and_check(
    problem,
    instance: Instance,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
) -> SolveReport:
    """Run the algorithm on the full instance and verify its output."""
    run = run_algorithm(
        instance,
        algorithm,
        seed=seed,
        max_volume=max_volume,
        max_queries=max_queries,
    )
    violations = problem.validate(instance, run.outputs)
    return SolveReport(run=run, valid=not violations, violations=violations)


def success_probability(
    problem,
    instance_factory,
    algorithm: ProbeAlgorithm,
    trials: int,
    base_seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
) -> float:
    """Fraction of independent trials in which the algorithm solved Π.

    ``instance_factory(trial_index)`` supplies the input for each trial
    (fixed instance, or a fresh draw from a hard distribution as in the
    Proposition 3.12 experiment); trial ``i`` uses seed ``base_seed + i``.
    """
    successes = 0
    for trial in range(trials):
        instance = instance_factory(trial)
        report = solve_and_check(
            problem,
            instance,
            algorithm,
            seed=base_seed + trial,
            max_volume=max_volume,
            max_queries=max_queries,
        )
        if report.valid:
            successes += 1
    return successes / trials


# Imported late to avoid a cycle: problems import model pieces too.
from repro.lcl.base import Violation  # noqa: E402
