"""Running algorithms over whole instances and verifying the results.

Definition 2.4: an algorithm solves a problem when the per-node outputs
``L'(v) = A(v, G, L)`` form a valid output labeling.  The runner executes
the algorithm once from *every* node (they share one tape store, so a
randomized run is one joint sample of all nodes' strings), aggregates the
cost profiles, and checks validity against the problem's checker.

*How* the per-node executions are dispatched is delegated to an
:class:`~repro.exec.backends.ExecutionBackend`: every entry point takes a
``backend=`` argument (``None`` → serial, the reference semantics; other
backends are drop-in and produce bitwise-identical results — see
``repro.exec``).
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.graphs.frozen import FrozenPortGraph
from repro.graphs.labelings import Instance, Labeling
from repro.graphs.port_graph import PortGraph
from repro.model.implicit import (
    MATERIALIZE_LIMIT,
    InstanceSource,
    InstanceSpec,
)
from repro.model.probe import CostProfile, ProbeAlgorithm


def _coerce_source(source) -> InstanceSource:
    """Back-compat shim: normalize legacy instance arguments.

    The public signatures take an :data:`~repro.model.implicit.InstanceSource`
    (``Instance | InstanceSpec``).  Two concrete-object call styles that
    predate the :func:`~repro.model.implicit.as_oracle` front door are
    still accepted with a :class:`DeprecationWarning`:

    * a pre-built oracle (``StaticOracle``/``CompiledOracle``) — callers
      used to freeze-then-attach by hand; the oracle's instance is
      unwrapped and the backend rebuilds the right oracle itself;
    * a bare ``PortGraph``/``FrozenPortGraph`` — wrapped into an
      unlabeled :class:`~repro.graphs.labelings.Instance`.
    """
    if isinstance(source, (Instance, InstanceSpec)):
        return source
    if isinstance(source, (FrozenPortGraph, PortGraph)):
        warnings.warn(
            "passing a bare graph to the runner is deprecated; wrap it "
            "in an Instance (or pass it through as_oracle)",
            DeprecationWarning,
            stacklevel=3,
        )
        return Instance(graph=source, labeling=Labeling())
    inner = getattr(source, "instance", None)
    if (
        inner is not None
        and hasattr(source, "node_info")
        and hasattr(source, "resolve")
    ):
        warnings.warn(
            "passing a pre-built oracle to the runner is deprecated; "
            "pass the Instance (or InstanceSpec) and let the backend "
            "build the oracle via as_oracle",
            DeprecationWarning,
            stacklevel=3,
        )
        return inner
    return source


@dataclass
class RunResult:
    """Outputs and cost profiles of one whole-instance run.

    The worst-case cost properties read as 0 on an empty run (no started
    executions — e.g. ``run_algorithm(..., nodes=[])``): the maximum over
    an empty set of executions is vacuously zero cost here, and returning
    0 beats surfacing a bare ``max() arg is an empty sequence``.
    """

    algorithm: str
    instance: str
    outputs: Dict[int, object] = field(default_factory=dict)
    profiles: Dict[int, CostProfile] = field(default_factory=dict)
    # Set by supervised backends when this run survived handled faults
    # (a repro.faults.retry.FaultLog snapshot).  Excluded from equality:
    # a recovered run IS the fault-free run, bit for bit.
    fault_log: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    @property
    def max_volume(self) -> int:
        """``VOL_n(A)`` on this instance: the worst per-node volume."""
        return max((p.volume for p in self.profiles.values()), default=0)

    @property
    def max_distance(self) -> int:
        """``DIST_n(A)`` on this instance: the worst per-node distance."""
        return max((p.distance for p in self.profiles.values()), default=0)

    @property
    def max_queries(self) -> int:
        return max((p.queries for p in self.profiles.values()), default=0)

    @property
    def mean_volume(self) -> float:
        if not self.profiles:
            return 0.0
        return statistics.fmean(p.volume for p in self.profiles.values())

    @property
    def total_random_bits(self) -> int:
        return sum(p.random_bits for p in self.profiles.values())

    @property
    def truncated_nodes(self) -> List[int]:
        return [v for v, p in self.profiles.items() if p.truncated]


def run_algorithm(
    instance: InstanceSource,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    nodes: Optional[Iterable[int]] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> RunResult:
    """Execute ``algorithm`` from every node (or the given subset).

    ``instance`` is an :data:`~repro.model.implicit.InstanceSource`: a
    materialized :class:`~repro.graphs.labelings.Instance` or an
    :class:`~repro.model.implicit.InstanceSpec` naming an implicit
    family (giant n; pass an explicit ``nodes=`` selection there).
    ``backend`` selects the execution strategy (an
    :class:`~repro.exec.backends.ExecutionBackend`, a spec string like
    ``"process:4"``, or ``None`` for serial); all backends return
    identical results for identical seeds.
    """
    from repro.exec.backends import get_backend

    return get_backend(backend).run(
        _coerce_source(instance),
        algorithm,
        nodes,
        seed=seed,
        max_volume=max_volume,
        max_queries=max_queries,
    )


@dataclass
class SolveReport:
    """A run together with its validity verdict."""

    run: RunResult
    valid: bool
    violations: List["Violation"]

    @property
    def max_volume(self) -> int:
        return self.run.max_volume

    @property
    def max_distance(self) -> int:
        return self.run.max_distance


def solve_and_check(
    problem,
    instance: InstanceSource,
    algorithm: ProbeAlgorithm,
    seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> SolveReport:
    """Run the algorithm on the full instance and verify its output.

    Problem checkers are whole-graph passes, so an
    :class:`~repro.model.implicit.InstanceSpec` is materialized for the
    validation step — which bounds this entry point to materializable
    sizes.  Giant-n specs belong in :func:`run_algorithm` (cost
    measurement over explicit node selections), not here.
    """
    source = _coerce_source(instance)
    if isinstance(source, InstanceSpec) and source.n > MATERIALIZE_LIMIT:
        raise ValueError(
            f"solve_and_check validates against the whole graph and "
            f"cannot check {source!r} (n={source.n} > "
            f"{MATERIALIZE_LIMIT}); use run_algorithm with an "
            "explicit node selection for giant-n cost measurements"
        )
    run = run_algorithm(
        source,
        algorithm,
        seed=seed,
        max_volume=max_volume,
        max_queries=max_queries,
        backend=backend,
    )
    if isinstance(source, InstanceSpec):
        source = source.materialize()
    violations = problem.validate(source, run.outputs)
    return SolveReport(run=run, valid=not violations, violations=violations)


def success_probability(
    problem,
    instance_factory,
    algorithm: ProbeAlgorithm,
    trials: int,
    base_seed: int = 0,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    backend=None,
) -> float:
    """Fraction of independent trials in which the algorithm solved Π.

    ``instance_factory(trial_index)`` supplies the input for each trial
    (fixed instance, or a fresh draw from a hard distribution as in the
    Proposition 3.12 experiment); trial ``i`` uses seed ``base_seed + i``.

    With a :class:`~repro.exec.backends.BatchBackend` the per-trial
    oracle construction is amortized across trials on a repeated
    instance; a :class:`~repro.exec.backends.ProcessPoolBackend` fans the
    trials out across workers.  The value is backend-independent.
    """
    from repro.exec.backends import get_backend

    return get_backend(backend).success_probability(
        problem,
        instance_factory,
        algorithm,
        trials,
        base_seed=base_seed,
        max_volume=max_volume,
        max_queries=max_queries,
    )


# Imported late to avoid a cycle: problems import model pieces too.
from repro.lcl.base import Violation  # noqa: E402
