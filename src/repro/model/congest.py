"""A synchronous CONGEST simulator (Section 7.3).

The CONGEST model refines LOCAL by limiting every message to ``B`` bits per
edge per round (typically B = O(log n)).  The paper uses it twice:

* Observation 7.4 — BalancedTree is solvable in O(log n) CONGEST rounds by
  flooding "inconsistency" notices, so the Ω(n) volume bound shows volume
  can be exponentially *larger* than CONGEST time.
* Example 7.6 — the two-trees-with-a-bridge relay problem needs Ω(n/B)
  CONGEST rounds but only O(log n) probe volume, the opposite separation.

The simulator is deliberately strict: a message whose declared bit size
exceeds the bandwidth raises, and per-round per-edge usage is recorded so
benches can report total communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graphs.labelings import Instance
from repro.model.implicit import as_oracle
from repro.model.oracle import NodeInfo


class CongestError(RuntimeError):
    """A bandwidth or protocol violation inside the simulator."""


@dataclass
class Message:
    """A CONGEST message with an explicit bit size.

    Payloads are arbitrary Python values; honesty about ``bits`` is the
    algorithm author's responsibility and is sanity-checked against the
    bandwidth only.
    """

    payload: object
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise CongestError("messages must carry at least one bit")


class CongestAlgorithm:
    """Base class: per-node synchronous state machines.

    ``init_state(info, n)`` builds the node state before round 1.
    ``step(state, round_index, inbox)`` returns ``(outbox, output)`` where
    ``inbox``/``outbox`` map port numbers to :class:`Message`; a non-None
    ``output`` halts the node (it keeps forwarding nothing afterwards).
    """

    name: str = "congest-algorithm"

    def init_state(self, info: NodeInfo, n: int) -> dict:
        raise NotImplementedError

    def step(
        self,
        state: dict,
        round_index: int,
        inbox: Dict[int, Message],
    ) -> Tuple[Dict[int, Message], Optional[object]]:
        raise NotImplementedError


@dataclass
class CongestResult:
    """Outcome of a CONGEST execution."""

    rounds: int
    outputs: Dict[int, object]
    total_bits: int
    max_bits_on_edge: int

    @property
    def all_terminated(self) -> bool:
        return all(v is not None for v in self.outputs.values())


def run_congest(
    instance: Instance,
    algorithm: CongestAlgorithm,
    bandwidth: int,
    max_rounds: int,
    done_predicate=None,
) -> CongestResult:
    """Run the synchronous protocol until done (or the round cap).

    By default "done" means every node produced an output; protocols whose
    relays never halt (e.g. the Example 7.6 pipeline) pass a
    ``done_predicate(outputs)`` — typically "all leaves answered".
    """
    if bandwidth < 1:
        raise CongestError("bandwidth must be >= 1")
    oracle = as_oracle(instance, mode="reference")
    graph = instance.graph
    nodes = list(graph.nodes())
    n = instance.n

    states: Dict[int, dict] = {}
    outputs: Dict[int, Optional[object]] = {}
    for v in nodes:
        states[v] = algorithm.init_state(oracle.node_info(v), n)
        outputs[v] = None

    # edge_bits[(u, port)] tracks usage of the directed edge out of u.
    total_bits = 0
    max_edge_bits = 0
    inboxes: Dict[int, Dict[int, Message]] = {v: {} for v in nodes}

    if done_predicate is None:
        def done_predicate(outs):
            return all(v is not None for v in outs.values())

    rounds = 0
    for round_index in range(1, max_rounds + 1):
        if done_predicate(outputs):
            break
        rounds = round_index
        next_inboxes: Dict[int, Dict[int, Message]] = {v: {} for v in nodes}
        for v in nodes:
            if outputs[v] is not None:
                continue
            outbox, output = algorithm.step(
                states[v], round_index, inboxes[v]
            )
            if output is not None:
                outputs[v] = output
            for port, message in outbox.items():
                if message.bits > bandwidth:
                    raise CongestError(
                        f"node {v} sent {message.bits} bits on port {port} "
                        f"(bandwidth {bandwidth})"
                    )
                endpoint = (
                    graph.neighbor_at(v, port)
                    if 1 <= port <= graph.num_ports(v)
                    else None
                )
                if endpoint is None:
                    raise CongestError(
                        f"node {v} sent a message into dangling port {port}"
                    )
                back_port = graph.endpoint_port(v, port)
                next_inboxes[endpoint][back_port] = message
                total_bits += message.bits
                max_edge_bits = max(max_edge_bits, message.bits)
        inboxes = next_inboxes
    return CongestResult(
        rounds=rounds,
        outputs={v: outputs[v] for v in nodes},
        total_bits=total_bits,
        max_bits_on_edge=max_edge_bits,
    )
