"""Random tapes and the randomness disciplines of Sections 2.2 and 7.4.

The paper's model gives each node ``v`` a private random string
``r_v : N → {0, 1}`` of iid fair bits.  The string is *part of v's input*,
so any execution that visits ``v`` can read ``r_v`` — crucially, every
execution reads the **same** bits (this is what makes ``RWtoLeaf`` walks
started at different nodes merge, Proposition 3.10).

Section 7.4 contrasts three disciplines, all implemented here:

* **public** — one shared string visible to every execution;
* **private** — per-node strings, readable once the node is visited
  (the paper's default model);
* **secret** — per-node strings readable *only* by the node itself.

Bits are produced lazily and cached, so re-reading past indices is allowed
while new bits are only ever generated at the end of the tape — this is the
paper's technical "sequential access" assumption (Section 2.2 footnote),
under which the Chang et al. derandomization carries over to volume.

Bit generation is word-batched: one ``getrandbits(32 * W)`` call replaces
``32 * W`` per-bit RNG round-trips, while producing *exactly* the bit
sequence the per-bit path produced.  CPython's Mersenne Twister serves
``getrandbits(1)`` as the top bit of a fresh 32-bit word and
``getrandbits(32 * W)`` as ``W`` consecutive words packed little-endian,
so bit ``j`` of the old sequence is bit ``32 * j + 31`` of the batch.
The equality is locked down by a regression test against both the
per-bit construction and a hardcoded golden sequence.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional

# Batched generation draws geometrically growing chunks (each bit costs
# one 32-bit Mersenne Twister word, matching the per-bit sequence
# exactly): tiny first chunks keep one-coin tapes cheap, the doubling
# amortizes long tapes, and the cap bounds decode-ahead waste.
_FIRST_CHUNK_BITS = 8
_MAX_CHUNK_BITS = 1024

# byte -> its most-significant bit, for decoding a whole chunk with one
# C-level bytes.translate instead of a per-bit Python loop.
_MSB_TO_BIT = bytes(byte >> 7 for byte in range(256))


class RandomnessModel(enum.Enum):
    """Which random strings an execution started at ``v`` may read."""

    DETERMINISTIC = "deterministic"
    PRIVATE = "private"
    PUBLIC = "public"
    SECRET = "secret"


class RandomnessError(RuntimeError):
    """Raised on an access the active randomness discipline forbids."""


class Tape:
    """One lazily generated, cached random bit string ``r : N → {0, 1}``."""

    def __init__(self, seed_material: str) -> None:
        self._rng = random.Random(seed_material)
        self._bits: List[int] = []
        self._chunk_bits = _FIRST_CHUNK_BITS
        # The paper's bound b: the highest index ever read + 1.  Tracked
        # separately from ``_bits`` because word batching decodes a full
        # chunk ahead of what has actually been consumed.
        self._generated = 0

    def bit(self, index: int) -> int:
        """The ``index``-th bit; generates sequentially up to that index."""
        if index < 0:
            raise IndexError("random bit index must be non-negative")
        bits = self._bits
        while index >= len(bits):
            count = self._chunk_bits
            self._chunk_bits = min(count * 2, _MAX_CHUNK_BITS)
            chunk = self._rng.getrandbits(32 * count)
            # Word j of the batch is bits [32j, 32j+32); the per-bit
            # sequence is each word's top bit, i.e. bit 7 of the word's
            # most-significant byte.  Decode entirely at C level
            # (to_bytes -> stride slice -> translate -> list extend);
            # big-int shifts or a per-bit Python loop here would cost
            # more than the per-bit RNG calls they replace.
            buf = chunk.to_bytes(4 * count, "little")
            bits.extend(buf[3::4].translate(_MSB_TO_BIT))
        if index >= self._generated:
            self._generated = index + 1
        return bits[index]

    @property
    def bits_generated(self) -> int:
        """How many distinct bits have been read (the bound b).

        Batched decoding keeps bits in reserve beyond this point; the
        bound reports only what an execution actually consumed, exactly
        as the per-bit implementation did.
        """
        return self._generated


class TapeStore:
    """All tapes of one execution environment, keyed by node id.

    The same store is shared by every per-node execution on an instance, so
    different executions reading the same node's tape agree bit-for-bit —
    the coordination property Proposition 3.10's proof relies on.
    """

    PUBLIC_KEY = "public"

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._tapes: Dict[object, Tape] = {}

    def tape_for(self, node_id: int) -> Tape:
        return self._materialize(node_id)

    def public_tape(self) -> Tape:
        return self._materialize(self.PUBLIC_KEY)

    def total_bits_generated(self) -> int:
        return sum(t.bits_generated for t in self._tapes.values())

    def _materialize(self, key: object) -> Tape:
        tape = self._tapes.get(key)
        if tape is None:
            tape = Tape(f"repro-tape:{self._seed}:{key}")
            self._tapes[key] = tape
        return tape


class RandomnessContext:
    """Per-execution view onto a :class:`TapeStore` under one discipline.

    ``owner`` is the node the execution was initiated at; ``readable`` is a
    callback telling whether a node has been visited (for the private
    model, where querying a node reveals its string).  It may be left
    unset at construction time and supplied later via
    :meth:`bind_visibility` — the probe engine constructs the context
    first and binds the view's visited-set predicate once the view
    exists.
    """

    def __init__(
        self,
        store: Optional[TapeStore],
        model: RandomnessModel,
        owner: int,
        readable=None,
    ) -> None:
        self._store = store
        self._model = model
        self._owner = owner
        self._readable = readable
        self.bits_read = 0

    def bind_visibility(self, readable) -> None:
        """Supply the visited-set predicate after construction.

        Used by :class:`~repro.model.probe.ProbeView`, which cannot exist
        before the context it is constructed with.
        """
        self._readable = readable

    @property
    def has_visibility(self) -> bool:
        return self._readable is not None

    @property
    def model(self) -> RandomnessModel:
        return self._model

    def bit(self, node_id: int, index: int) -> int:
        """Read ``r_{node_id}(index)`` if the discipline permits it."""
        if self._model is RandomnessModel.DETERMINISTIC or self._store is None:
            raise RandomnessError(
                "deterministic execution attempted to read a random bit"
            )
        if self._model is RandomnessModel.PUBLIC:
            # Public randomness is one shared string; the node argument is
            # accepted for interface uniformity but ignored.
            self.bits_read += 1
            return self._store.public_tape().bit(index)
        if self._model is RandomnessModel.SECRET and node_id != self._owner:
            raise RandomnessError(
                f"secret-randomness execution at {self._owner} tried to read "
                f"the tape of node {node_id}"
            )
        if self._model is RandomnessModel.PRIVATE:
            if self._readable is None:
                raise RandomnessError(
                    "private-randomness context has no visibility predicate; "
                    "bind one with bind_visibility() before reading tapes"
                )
            if not self._readable(node_id):
                raise RandomnessError(
                    f"private tape of {node_id} read before the node was "
                    "visited"
                )
        self.bits_read += 1
        return self._store.tape_for(node_id).bit(index)
