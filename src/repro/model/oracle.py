"""Graph oracles: how a probe execution learns about the input graph.

The probe engine never touches an :class:`~repro.graphs.labelings.Instance`
directly; it asks a :class:`GraphOracle`.  This indirection is what lets the
lower-bound processes of Propositions 3.13 and 5.20 be implemented exactly
as the paper specifies them: the adversary *is* an oracle that constructs
the graph lazily in response to the algorithm's queries.

:class:`StaticOracle` is the ordinary case: a fixed labeled graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.graphs.labelings import Instance, NodeLabel


@dataclass(frozen=True)
class NodeInfo:
    """What a query (or the initial self-inspection) reveals about a node.

    Section 2.2: the response to ``query(w, j)`` carries the identity of the
    endpoint, its degree, and its entire input.  ``ports`` lists the node's
    *connected* port numbers: in the paper ports are exactly
    ``1..deg(v)`` (all connected), so this is redundant there; we expose
    the list because our builders follow the paper's looser conventions
    (e.g. lateral edges on ports 4/5 regardless of degree), and it
    restores exactly the information an algorithm would have had under
    strict numbering — which edges exist — and nothing more.
    """

    node_id: int
    degree: int
    label: NodeLabel
    ports: tuple  # the node's *connected* ports (see docstring above)


class GraphOracle(Protocol):
    """The interface the probe engine uses to explore an input."""

    @property
    def n(self) -> int:
        """The advertised number of nodes (given to every algorithm)."""

    def node_info(self, node_id: int) -> NodeInfo:
        """Inspect a node (used for the initiating node, which is free)."""

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        """The node on the other end of ``(node_id, port)``, or None."""


class StaticOracle:
    """A :class:`GraphOracle` over a concrete, fully built instance."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance

    @property
    def n(self) -> int:
        return self._instance.n

    @property
    def instance(self) -> Instance:
        return self._instance

    def node_info(self, node_id: int) -> NodeInfo:
        graph = self._instance.graph
        ports = tuple(
            p
            for p in range(1, graph.num_ports(node_id) + 1)
            if graph.neighbor_at(node_id, p) is not None
        )
        return NodeInfo(
            node_id=node_id,
            degree=graph.degree(node_id),
            label=self._instance.label(node_id),
            ports=ports,
        )

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        graph = self._instance.graph
        if port < 1 or port > graph.num_ports(node_id):
            return None
        return graph.neighbor_at(node_id, port)
