"""Graph oracles: how a probe execution learns about the input graph.

The probe engine never touches an :class:`~repro.graphs.labelings.Instance`
directly; it asks a :class:`GraphOracle`.  This indirection is what lets the
lower-bound processes of Propositions 3.13 and 5.20 be implemented exactly
as the paper specifies them: the adversary *is* an oracle that constructs
the graph lazily in response to the algorithm's queries.

:class:`StaticOracle` is the ordinary case: a fixed labeled graph.  It is
the *reference semantics*: every query walks the live
:class:`~repro.graphs.port_graph.PortGraph` and rebuilds a
:class:`NodeInfo` from scratch.  :class:`CompiledOracle` is the fast path
over the same semantics: it freezes the graph
(:meth:`~repro.graphs.port_graph.PortGraph.freeze`) and precomputes the
full ``NodeInfo`` table and per-port resolution rows once per instance,
so the ``n x queries`` inner loop of a whole-instance run is pure dict /
tuple indexing with zero per-query allocation.  The execution backends
auto-compile static instances (see :mod:`repro.exec.backends`); results
are bitwise-identical by construction and enforced by the property suite
in ``tests/perf/test_compiled_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.graphs.labelings import Instance, NodeLabel
from repro.graphs.port_graph import PortGraphError


@dataclass(frozen=True)
class NodeInfo:
    """What a query (or the initial self-inspection) reveals about a node.

    Section 2.2: the response to ``query(w, j)`` carries the identity of the
    endpoint, its degree, and its entire input.  ``ports`` lists the node's
    *connected* port numbers: in the paper ports are exactly
    ``1..deg(v)`` (all connected), so this is redundant there; we expose
    the list because our builders follow the paper's looser conventions
    (e.g. lateral edges on ports 4/5 regardless of degree), and it
    restores exactly the information an algorithm would have had under
    strict numbering — which edges exist — and nothing more.
    """

    node_id: int
    degree: int
    label: NodeLabel
    ports: tuple  # the node's *connected* ports (see docstring above)


class GraphOracle(Protocol):
    """The interface the probe engine uses to explore an input."""

    @property
    def n(self) -> int:
        """The advertised number of nodes (given to every algorithm)."""

    def node_info(self, node_id: int) -> NodeInfo:
        """Inspect a node (used for the initiating node, which is free)."""

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        """The node on the other end of ``(node_id, port)``, or None."""


class StaticOracle:
    """A :class:`GraphOracle` over a concrete, fully built instance."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance

    @property
    def n(self) -> int:
        return self._instance.n

    @property
    def instance(self) -> Instance:
        return self._instance

    def node_info(self, node_id: int) -> NodeInfo:
        graph = self._instance.graph
        ports = tuple(
            p
            for p in range(1, graph.num_ports(node_id) + 1)
            if graph.neighbor_at(node_id, p) is not None
        )
        return NodeInfo(
            node_id=node_id,
            degree=graph.degree(node_id),
            label=self._instance.label(node_id),
            ports=ports,
        )

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        graph = self._instance.graph
        if port < 1 or port > graph.num_ports(node_id):
            return None
        return graph.neighbor_at(node_id, port)


class CompiledOracle:
    """A :class:`GraphOracle` with the whole answer table precomputed.

    Construction is one O(n * Delta) pass: the instance's graph is frozen
    into a CSR :class:`~repro.graphs.frozen.FrozenPortGraph`, every
    node's :class:`NodeInfo` is built exactly as :class:`StaticOracle`
    would build it, and every ``resolve`` row is flattened into a tuple.
    After that, :meth:`node_info` is one dict lookup returning a shared
    (frozen) record, and :meth:`resolve` is one dict lookup plus a tuple
    index — no port-dict hashing, no ``_require_node`` try/except, no
    per-query ``NodeInfo`` allocation.

    Answers agree with ``StaticOracle(instance)`` on every query,
    including out-of-range ports (``None``) and unknown nodes
    (:class:`~repro.graphs.port_graph.PortGraphError`).
    """

    def __init__(self, instance: Instance) -> None:
        self._instance = instance
        self._kernel = None
        frozen = instance.graph.freeze()
        self._frozen = frozen
        info: Dict[int, NodeInfo] = {}
        resolved: Dict[int, Tuple[Optional[int], ...]] = {}
        for node_id in frozen.nodes():
            row = tuple(
                frozen.neighbor_at(node_id, port)
                for port in range(1, frozen.num_ports(node_id) + 1)
            )
            resolved[node_id] = row
            info[node_id] = NodeInfo(
                node_id=node_id,
                degree=frozen.degree(node_id),
                label=instance.label(node_id),
                ports=tuple(
                    port for port, nbr in enumerate(row, start=1)
                    if nbr is not None
                ),
            )
        self._info = info
        self._resolved = resolved

    @property
    def n(self) -> int:
        return self._instance.n

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def frozen_graph(self):
        """The CSR snapshot backing this oracle."""
        return self._frozen

    def node_info(self, node_id: int) -> NodeInfo:
        try:
            return self._info[node_id]
        except KeyError:
            raise PortGraphError(f"unknown node {node_id}") from None

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        try:
            row = self._resolved[node_id]
        except KeyError:
            raise PortGraphError(f"unknown node {node_id}") from None
        if 1 <= port <= len(row):
            return row[port - 1]
        return None

    # ------------------------------------------------------------------
    # batched surface (the flat-array kernel layer, DESIGN.md §9.3)
    # ------------------------------------------------------------------
    def resolve_many(
        self, queries: Iterable[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Resolve a whole batch of ``(node, port)`` pairs in one call.

        Answers element-for-element what per-pair :meth:`resolve` calls
        would have returned (including ``None`` for out-of-range ports
        and :class:`PortGraphError` for unknown nodes); batch consumers
        amortize the method dispatch over the precomputed row table.
        """
        resolved = self._resolved
        out: List[Optional[int]] = []
        append = out.append
        for node_id, port in queries:
            try:
                row = resolved[node_id]
            except KeyError:
                raise PortGraphError(f"unknown node {node_id}") from None
            append(row[port - 1] if 1 <= port <= len(row) else None)
        return out

    def node_info_many(self, node_ids: Sequence[int]) -> List[NodeInfo]:
        """The :class:`NodeInfo` records for a batch of nodes."""
        info = self._info
        try:
            return [info[node_id] for node_id in node_ids]
        except KeyError as exc:
            raise PortGraphError(f"unknown node {exc.args[0]}") from None

    def gather_kernel(self):
        """The memoized flat-array gather kernel over this oracle's CSR.

        Built lazily (most oracles never batch) and shared across every
        start node of a run, so the kernel's scratch arrays are allocated
        once per compiled instance.
        """
        if self._kernel is None:
            from repro.model.batched import CsrGatherKernel

            self._kernel = CsrGatherKernel(self)
        return self._kernel


def compile_oracle(instance: Instance) -> CompiledOracle:
    """Compile ``instance`` into a :class:`CompiledOracle`.

    The compiled table is a pure function of the instance, so callers
    that run many whole-instance passes over one instance (trial loops,
    ablations) should build it once and reuse it —
    :class:`~repro.exec.backends.BatchBackend` does exactly that.
    """
    return CompiledOracle(instance)
