"""Implicit giant-n instances: oracles that synthesize nodes on demand.

The paper's central separation (VOLUME vs DIST) only becomes visually
unambiguous at n >> 10^6, but a materialized
:class:`~repro.graphs.labelings.Instance` caps sweeps near n ~ 10^5.  A
volume-bounded algorithm only ever touches O(queries) nodes, so nothing
forces materialization: for the structured families whose node
neighborhoods are *pure functions of the node id* (complete-binary-tree
gadgets, laterally linked balanced trees, uniform cycles, hierarchical
backbones with arithmetic id blocks), an oracle can compute any node's
:class:`~repro.model.oracle.NodeInfo` from closed-form index arithmetic
the moment it is queried.

Three layers live here:

* :class:`InstanceSpec` — an O(1)-picklable value ``(family, param,
  seed)`` naming one instance of a registered ``implicit=True`` family.
  It is the *instance source* the exec backends dispatch for giant-n
  runs: workers receive a few dozen bytes instead of a graph, and no
  shared-memory publish is needed on this path.
* the **implicit generators** — one per qualifying family, each a pure
  function ``node id -> (port row, label)`` replicating the registered
  materialized factory *bit for bit* (same ids, same port numbers, same
  dangling ports, same labels).  The differential suite under
  ``tests/model/test_implicit.py`` enforces node-for-node equality
  against the materialized instances at small n.
* :class:`ImplicitOracle` — a :class:`~repro.model.oracle.GraphOracle`
  over a generator with a bounded LRU of realized nodes, so memory is
  O(min(touched, cache bound)) regardless of n.

:func:`as_oracle` is the single front door the rest of the repo uses to
turn *any* instance source — ``Instance``, ``FrozenPortGraph``, or
``InstanceSpec`` — into a :class:`~repro.model.oracle.GraphOracle`,
replacing the scattered ``StaticOracle(...)`` / ``compile_oracle(...)``
call sites that PRs 3-6 grew ad hoc.

Determinism argument (DESIGN.md §10): every generator below derives all
randomness from the grid parameter alone, exactly as the registered
factories in :mod:`repro.families` do (``rng=random.Random(param)``),
and draws it in a *random-access* pattern — a single χ0 coin for
``leaf-coloring-hard``, none at all for ``balanced-tree`` and
``cycle-uniform``, a per-id hash for ``hierarchical-thc-det(2)``.
Families whose factories consume a sequential RNG stream per node
(``leaf-coloring``'s per-leaf coins, ``cycle``'s shuffled ids, the
per-creation-order colors of ``hierarchical-thc(2)``) cannot be served
implicitly without replaying the whole stream, and stay materialized.
"""

from __future__ import annotations

import functools
import random
import zlib
from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.graphs.frozen import FrozenPortGraph
from repro.graphs.labelings import (
    COLORS,
    RED,
    Instance,
    Labeling,
    NodeLabel,
)
from repro.graphs.port_graph import PortGraph, PortGraphError
from repro.model.oracle import (
    CompiledOracle,
    NodeInfo,
    StaticOracle,
)

#: A node row: the neighbor behind each port ``1..num_ports`` (``None``
#: for a dangling port) — exactly what ``StaticOracle`` reads off a
#: built graph, as closed-form arithmetic instead of storage.
PortRow = Tuple[Optional[int], ...]

#: Largest implicit instance whose full node list backends will
#: enumerate when ``nodes=None``.  Above this, callers must pass an
#: explicit node selection (giant-n sweeps always do — e.g. the
#: ``root_only`` selector); materializing 10^7+ ids implicitly defeats
#: the point of the bounded-memory path.
NODE_ENUMERATION_LIMIT = 1 << 21

#: Largest implicit instance ``solve_and_check`` will materialize to
#: validate outputs against (validation walks the whole graph).
MATERIALIZE_LIMIT = 1 << 21


def det_backbone_color(node_id: int) -> str:
    """The deterministic per-id color of ``hierarchical-thc-det(2)``.

    A CRC32 hash (not Python's salted ``hash()``) keyed by the node id,
    so any process — and the implicit generator, from index arithmetic
    alone — draws the same color without replaying an RNG stream.
    """
    return COLORS[zlib.crc32(b"hthc-det:%d" % node_id) & 1]


# ----------------------------------------------------------------------
# implicit generators: node id -> (port row, label), closed form
# ----------------------------------------------------------------------
class ImplicitGenerator:
    """Base class: one family instance as a pure function of node ids.

    Subclasses fill in ``n``, ``name``, ``meta`` (the O(1) subset of the
    materialized instance's meta that selectors read — ``root`` etc.;
    O(n) entries like leaf lists are deliberately absent) and
    :meth:`node_row`.  Node ids are always ``1..n``, matching every
    registered generator's sequential-id construction.
    """

    n: int = 0
    name: str = ""
    meta: Dict[str, object] = {}

    def node_row(self, node_id: int) -> Tuple[PortRow, NodeLabel]:
        raise NotImplementedError

    def node_ids(self) -> Iterator[int]:
        return iter(range(1, self.n + 1))

    def _require(self, node_id: int) -> None:
        if not isinstance(node_id, int) or not 1 <= node_id <= self.n:
            raise PortGraphError(f"unknown node {node_id}")


class LeafColoringHardGenerator(ImplicitGenerator):
    """``leaf-coloring-hard``: the Prop 3.12 hard gadget, heap-indexed.

    Node ids are heap indices on the complete binary tree of the given
    depth (node ``i``'s children are ``2i``/``2i+1``, parent ``i // 2``).
    Internal nodes are red; every leaf carries the single χ0 coin the
    registered factory draws first from ``random.Random(depth)``.
    """

    def __init__(self, depth: int, seed: int = 0) -> None:
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.depth = depth
        self.n = 2 ** (depth + 1) - 1
        self.chi0 = random.Random(depth).choice(COLORS)
        self.name = f"leaf-coloring-hard-d{depth}"
        self.meta = {"depth": depth, "root": 1, "chi0": self.chi0}

    def node_row(self, i: int) -> Tuple[PortRow, NodeLabel]:
        self._require(i)
        if i == 1:
            if self.depth == 0:
                return (), NodeLabel(color=self.chi0)
            return (2, 3), NodeLabel(
                left_child=1, right_child=2, color=RED
            )
        if i >= 2 ** self.depth:  # leaf row
            return (i // 2,), NodeLabel(parent=1, color=self.chi0)
        return (i // 2, 2 * i, 2 * i + 1), NodeLabel(
            parent=1, left_child=2, right_child=3, color=RED
        )


class BalancedTreeGenerator(ImplicitGenerator):
    """``balanced-tree``: the compatible Def 4.2 gadget, heap-indexed.

    The tree rows are heap-indexed as above; lateral edges link row
    neighbors on ports 5 (to the right) / 4 (to the left).  Because the
    builder adds tree edges first and laterals afterwards, row interiors
    carry five ports, the leftmost node of a row has a *dangling* port 4
    and the rightmost stops at four ports — the generator reproduces
    those reservation artifacts exactly.  The compatible labeling draws
    no randomness at all.
    """

    def __init__(self, depth: int, seed: int = 0) -> None:
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.depth = depth
        self.n = 2 ** (depth + 1) - 1
        self.name = f"balanced-tree-d{depth}-ok"
        self.meta = {"depth": depth, "root": 1, "broken": []}

    def node_row(self, i: int) -> Tuple[PortRow, NodeLabel]:
        self._require(i)
        row = i.bit_length() - 1  # tree level: ids 2^row .. 2^(row+1)-1
        j = i - (1 << row)  # position within the row
        last = (1 << row) - 1  # rightmost position
        label = NodeLabel()
        if row == 0:
            kids: PortRow = () if self.depth == 0 else (2, 3)
            if self.depth > 0:
                label.left_child = 1
                label.right_child = 2
            return kids, label
        label.parent = 1
        if row < self.depth:
            tree: PortRow = (i // 2, 2 * i, 2 * i + 1)
            label.left_child = 2
            label.right_child = 3
        else:
            tree = (i // 2, None, None)
        if j > 0:
            label.left_neighbor = 4
        if j < last:
            label.right_neighbor = 5
        if j == 0:
            return tree + (None, i + 1), label
        if j == last:
            return tree + (i - 1,), label
        return tree + (i - 1, i + 1), label


class UniformCycleGenerator(ImplicitGenerator):
    """``cycle-uniform``: the n-cycle with sequential ids ``1..n``.

    Port 1 looks left (to ``i - 1``), port 2 looks right (to ``i + 1``),
    wrapping around; every label is empty.  This is ``cycle_instance(n,
    shuffle_ids=False)`` — the shuffled-id ``cycle`` family draws a
    sequential ``rnd.sample`` over the whole id universe and cannot be
    served implicitly.
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 3:
            raise ValueError("a cycle needs at least 3 nodes")
        self.n = n
        self.name = f"cycle-{n}"
        self.meta = {"n": n}

    def node_row(self, i: int) -> Tuple[PortRow, NodeLabel]:
        self._require(i)
        n = self.n
        return (((i - 2) % n) + 1, (i % n) + 1), NodeLabel()


class HierarchicalDetGenerator(ImplicitGenerator):
    """``hierarchical-thc-det(2)``: H-THC(2) with hash-deterministic colors.

    The registered ``hierarchical-thc(2)`` factory draws one color per
    node in creation order, which is not random-access replicable; this
    variant keeps the identical graph (backbone ``1..m`` chained on
    ports 2→1, backbone node ``b`` hanging its length-m level-1 chain —
    ids ``m + (b-1)m + 1 .. m + bm`` — from port 3) and takes colors
    from :func:`det_backbone_color` instead.  n = m(m+1).
    """

    def __init__(self, backbone_length: int, seed: int = 0) -> None:
        if backbone_length < 1:
            raise ValueError("backbone_length must be >= 1")
        m = backbone_length
        self.m = m
        self.n = m * (m + 1)
        self.name = f"hierarchical-thc-det-k2-m{m}"
        self.meta = {
            "k": 2,
            "backbone_length": m,
            "lengths": [m, m],
            "root": 1,
        }

    def node_row(self, i: int) -> Tuple[PortRow, NodeLabel]:
        self._require(i)
        m = self.m
        label = NodeLabel(color=det_backbone_color(i))
        if i <= m:  # backbone node b = i
            label.right_child = 3  # every backbone node hangs a chain
            chain_root = m + (i - 1) * m + 1
            if m == 1:
                return (None, None, chain_root), label
            if i == 1:
                label.left_child = 2
                return (None, 2, chain_root), label
            label.parent = 1
            if i == m:
                return (m - 1, None, chain_root), label
            label.left_child = 2
            return (i - 1, i + 1, chain_root), label
        b = (i - m - 1) // m + 1  # owning backbone node
        t = (i - m - 1) % m  # position along b's chain
        label.parent = 1
        if m == 1:
            return (b,), label
        if t == 0:
            label.left_child = 2
            return (b, i + 1), label
        if t == m - 1:
            return (i - 1,), label
        label.left_child = 2
        return (i - 1, i + 1), label


#: Family name -> generator factory.  A family may be registered with
#: ``implicit=True`` only if it has an entry here (enforced by the
#: differential suite); :func:`implicit_families` lists the names.
_GENERATOR_FACTORIES: Dict[str, Callable[..., ImplicitGenerator]] = {
    "leaf-coloring-hard": LeafColoringHardGenerator,
    "balanced-tree": BalancedTreeGenerator,
    "cycle-uniform": UniformCycleGenerator,
    "hierarchical-thc-det(2)": HierarchicalDetGenerator,
}


def implicit_families() -> Tuple[str, ...]:
    """The family names an :class:`InstanceSpec` can name."""
    return tuple(_GENERATOR_FACTORIES)


@functools.lru_cache(maxsize=64)
def _generator_for(family: str, param, seed: int) -> ImplicitGenerator:
    """The (memoized) implicit generator for one spec.

    Generators are immutable closed-form descriptions a few machine
    words big, so caching them across oracles/backends/sweep points is
    free and keeps ``InstanceSpec`` property access O(1).
    """
    try:
        factory = _GENERATOR_FACTORIES[family]
    except KeyError:
        known = ", ".join(sorted(_GENERATOR_FACTORIES))
        raise ValueError(
            f"no implicit generator for family {family!r} "
            f"(implicit families: {known})"
        ) from None
    return factory(param, seed)


# ----------------------------------------------------------------------
# the O(1)-picklable instance source
# ----------------------------------------------------------------------
class InstanceSpec:
    """An instance named by ``(family, param, seed)`` — nothing realized.

    This is the giant-n counterpart of a materialized
    :class:`~repro.graphs.labelings.Instance`: it pickles to O(1) bytes
    (three scalars), so process backends ship it to workers directly —
    no graph pickle, no shared-memory publish — and each worker serves
    queries from its own :class:`ImplicitOracle`.

    ``seed`` rides along for forward compatibility with randomized
    implicit distributions; the registered structural generators derive
    all randomness from ``param`` (exactly like their materialized
    factories) and ignore it.
    """

    __slots__ = ("family", "param", "seed")

    def __init__(self, family: str, param, seed: int = 0) -> None:
        self.family = family
        self.param = param
        self.seed = seed

    # -- identity ------------------------------------------------------
    def __repr__(self) -> str:
        tail = f", seed={self.seed}" if self.seed else ""
        return f"InstanceSpec({self.family!r}, {self.param!r}{tail})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, InstanceSpec)
            and self.family == other.family
            and self.param == other.param
            and self.seed == other.seed
        )

    def __hash__(self) -> int:
        return hash((self.family, self.param, self.seed))

    def __getstate__(self):
        return (self.family, self.param, self.seed)

    def __setstate__(self, state) -> None:
        self.family, self.param, self.seed = state

    # -- the O(1) instance surface selectors/sweeps/backends read ------
    @property
    def generator(self) -> ImplicitGenerator:
        return _generator_for(self.family, self.param, self.seed)

    @property
    def n(self) -> int:
        return self.generator.n

    @property
    def name(self) -> str:
        return self.generator.name

    @property
    def meta(self) -> Dict[str, object]:
        """The O(1) subset of the materialized meta (root, depth, ...)."""
        return dict(self.generator.meta)

    # -- realization (small n only) ------------------------------------
    def materialize(self) -> Instance:
        """Build the full materialized instance via the family registry.

        Differential tests and output validation at small n use this;
        the guard refuses to allocate a giant graph by accident.
        """
        if self.n > MATERIALIZE_LIMIT:
            raise ValueError(
                f"refusing to materialize {self!r} (n={self.n} > "
                f"{MATERIALIZE_LIMIT}); run it through an ImplicitOracle"
            )
        from repro.registry import FAMILIES, load_components

        load_components()
        return FAMILIES.get(self.family).factory(self.param)


#: What every public runner/engine entry point accepts as its instance.
InstanceSource = Union[Instance, InstanceSpec]


class ImplicitFamilyFactory:
    """``factory(param) -> InstanceSpec`` for one implicit family.

    A module-level class (not a lambda) so sweep caching can fingerprint
    it stably and process backends can pickle it.
    """

    def __init__(self, family: str, seed: int = 0) -> None:
        self.family = family
        self.seed = seed

    def __call__(self, param) -> InstanceSpec:
        return InstanceSpec(self.family, param, self.seed)


def iter_node_ids(source) -> Iterator[int]:
    """Every node id of an instance source (backends' ``nodes=None``).

    Materialized instances iterate their graph; implicit specs iterate
    ``1..n`` — but only below :data:`NODE_ENUMERATION_LIMIT`, because a
    whole-instance run over 10^7+ implicit nodes defeats the
    bounded-memory point.  Giant-n sweeps pass explicit selections
    (``nodes=[root]`` etc.) and never hit this guard.
    """
    if isinstance(source, InstanceSpec):
        n = source.n
        if n > NODE_ENUMERATION_LIMIT:
            raise ValueError(
                f"implicit instance {source.name!r} has n={n} > "
                f"{NODE_ENUMERATION_LIMIT}; pass an explicit `nodes=` "
                "selection (e.g. the sweep's root_only selector) instead "
                "of running from every node"
            )
        return source.generator.node_ids()
    return iter(source.graph.nodes())


# ----------------------------------------------------------------------
# the bounded-memory oracle
# ----------------------------------------------------------------------
class ImplicitOracle:
    """A :class:`~repro.model.oracle.GraphOracle` that realizes nodes lazily.

    Query semantics replicate :class:`~repro.model.oracle.StaticOracle`
    exactly: ``node_info`` reveals the node's connected ports, degree
    and label; ``resolve`` answers ``None`` for out-of-range or dangling
    ports and raises :class:`~repro.graphs.port_graph.PortGraphError`
    for unknown node ids.  Realized ``(row, NodeInfo)`` records live in
    a bounded LRU, so a volume-bounded run's footprint is
    O(min(nodes touched, ``max_realized``)) — independent of n.
    """

    def __init__(
        self, spec: InstanceSpec, max_realized: int = 65536
    ) -> None:
        if max_realized < 1:
            raise ValueError("max_realized must be positive")
        self._spec = spec
        self._generator = spec.generator
        self._max_realized = max_realized
        self._cache: "OrderedDict[int, Tuple[PortRow, NodeInfo]]" = (
            OrderedDict()
        )
        #: Total generator invocations (cache misses) — the bench's
        #: "how many nodes did this run actually realize" statistic.
        self.realized_total = 0

    @property
    def n(self) -> int:
        return self._generator.n

    @property
    def spec(self) -> InstanceSpec:
        return self._spec

    @property
    def instance(self) -> InstanceSpec:
        """The spec, in the seat backends' oracle caches key on."""
        return self._spec

    @property
    def realized(self) -> int:
        """Nodes currently held in the LRU."""
        return len(self._cache)

    def _realize(self, node_id: int) -> Tuple[PortRow, NodeInfo]:
        cache = self._cache
        entry = cache.get(node_id)
        if entry is not None:
            cache.move_to_end(node_id)
            return entry
        row, label = self._generator.node_row(node_id)
        info = NodeInfo(
            node_id=node_id,
            degree=sum(1 for nbr in row if nbr is not None),
            label=label,
            ports=tuple(
                port
                for port, nbr in enumerate(row, start=1)
                if nbr is not None
            ),
        )
        self.realized_total += 1
        cache[node_id] = (row, info)
        if len(cache) > self._max_realized:
            cache.popitem(last=False)
        return row, info

    def node_info(self, node_id: int) -> NodeInfo:
        return self._realize(node_id)[1]

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        row = self._realize(node_id)[0]
        if 1 <= port <= len(row):
            return row[port - 1]
        return None


# ----------------------------------------------------------------------
# the single oracle front door
# ----------------------------------------------------------------------
def as_oracle(source, mode: str = "auto"):
    """Turn any instance source into a :class:`GraphOracle`.

    ``source`` may be a materialized
    :class:`~repro.graphs.labelings.Instance`, a bare
    :class:`~repro.graphs.frozen.FrozenPortGraph` /
    :class:`~repro.graphs.port_graph.PortGraph` (wrapped with an empty
    labeling), or an :class:`InstanceSpec`.  ``mode`` selects the
    engine:

    * ``"auto"`` — the right default: the compiled fast path for
      materialized instances, the lazy bounded-memory oracle for specs.
    * ``"compiled"`` / ``"reference"`` — force
      :class:`~repro.model.oracle.CompiledOracle` /
      :class:`~repro.model.oracle.StaticOracle` semantics; a spec is
      materialized first (small n only), which is how differential
      suites pin implicit == materialized.
    * ``"implicit"`` — require the lazy oracle; materialized sources
      are rejected (they have no generator to serve from).
    """
    if mode not in ("auto", "compiled", "reference", "implicit"):
        raise ValueError(
            f"unknown oracle mode {mode!r} "
            "(expected 'auto', 'compiled', 'reference', or 'implicit')"
        )
    if isinstance(source, InstanceSpec):
        if mode in ("auto", "implicit"):
            return ImplicitOracle(source)
        instance = source.materialize()
        if mode == "compiled":
            return CompiledOracle(instance)
        return StaticOracle(instance)
    if isinstance(source, (FrozenPortGraph, PortGraph)):
        source = Instance(graph=source, labeling=Labeling())
    if isinstance(source, Instance):
        if mode == "implicit":
            raise ValueError(
                "mode='implicit' needs an InstanceSpec; got a "
                "materialized instance"
            )
        if mode == "reference":
            return StaticOracle(source)
        return CompiledOracle(source)
    raise TypeError(
        f"cannot build an oracle from {type(source).__name__!r} "
        "(expected Instance, FrozenPortGraph, PortGraph, or InstanceSpec)"
    )


__all__ = [
    "ImplicitFamilyFactory",
    "ImplicitGenerator",
    "ImplicitOracle",
    "InstanceSource",
    "InstanceSpec",
    "MATERIALIZE_LIMIT",
    "NODE_ENUMERATION_LIMIT",
    "as_oracle",
    "det_backbone_color",
    "implicit_families",
    "iter_node_ids",
]
