"""Adapters between probe executions and higher-level vocabularies.

* :class:`ProbeTopology` exposes a :class:`~repro.graphs.tree_structure.Topology`
  over a live :class:`~repro.model.probe.ProbeView`, so the structure
  predicates (is_internal, level_of, backbone navigation, ...) can be used
  *inside* algorithms, with every port resolution charged as a query.

* :func:`gather_ball` implements LOCAL-style exploration (Remark 2.3): a
  distance-T algorithm is a probe algorithm that collects the radius-T
  ball.  The distance cost of such an execution is exactly T (Lemma 2.5's
  simulation argument), and its volume is the ball size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graphs.labelings import NodeLabel
from repro.model.oracle import NodeInfo
from repro.model.probe import ProbeView


class ProbeTopology:
    """Query-backed :class:`Topology`: resolutions cost probe queries.

    Resolutions are memoized per (node, port) so that predicate code can be
    written naturally; re-resolving an edge re-reads cached info and issues
    no new query (volume is unaffected either way, per Definition 2.2).
    """

    def __init__(self, view: ProbeView) -> None:
        self._view = view
        self._resolved: Dict[tuple, Optional[int]] = {}

    def label(self, node_id: int) -> NodeLabel:
        return self._view.info(node_id).label

    def node_at(self, node_id: int, port: Optional[int]) -> Optional[int]:
        if port is None:
            return None
        key = (node_id, port)
        if key not in self._resolved:
            info = self._view.query(node_id, port)
            self._resolved[key] = None if info is None else info.node_id
        return self._resolved[key]


@dataclass
class Ball:
    """A gathered radius-``radius`` ball around ``center``.

    ``distance[w]`` is the BFS depth at which ``w`` was discovered, and
    ``adjacency`` covers every explored edge (both directions).
    """

    center: int
    radius: int
    info: Dict[int, NodeInfo] = field(default_factory=dict)
    distance: Dict[int, int] = field(default_factory=dict)
    adjacency: Dict[int, Dict[int, int]] = field(default_factory=dict)
    # adjacency[u][port] = neighbor id

    def nodes(self) -> List[int]:
        return sorted(self.distance)

    def neighbors(self, node_id: int) -> List[int]:
        return list(self.adjacency.get(node_id, {}).values())

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.distance


def gather_ball(view: ProbeView, radius: int, center: Optional[int] = None) -> Ball:
    """Collect the radius-``radius`` ball around ``center`` by BFS.

    ``center`` defaults to the execution's start node (and must be visited
    already).  Every port of every frontier node is probed once.
    """
    start = view.start if center is None else center
    ball = Ball(center=start, radius=radius)
    # Local bindings: this loop issues the bulk of all probe queries in
    # the repo (every full-gather run from every start node), so the
    # attribute lookups are hoisted out of it.
    info_map = ball.info
    distance = ball.distance
    adjacency = ball.adjacency
    query = view.query
    info_map[start] = view.info(start)
    distance[start] = 0
    frontier = [start]
    for depth in range(1, radius + 1):
        nxt: List[int] = []
        for u in frontier:
            row = None
            for port in info_map[u].ports:
                endpoint = query(u, port)
                if endpoint is None:
                    continue
                if row is None:
                    row = adjacency.setdefault(u, {})
                node = endpoint.node_id
                row[port] = node
                if node not in distance:
                    distance[node] = depth
                    info_map[node] = endpoint
                    nxt.append(node)
        frontier = nxt
        if not frontier:
            break
    return ball
