"""The probe-model execution engine (Section 2.2).

An execution initiated at ``v`` maintains a set ``V_v`` of visited nodes,
initially ``{v}``.  Each step issues ``query(w, j)`` for a visited ``w`` and
port ``j``; the response reveals the endpoint's identity, degree and entire
input (including, for randomized algorithms, access to its random string),
and the endpoint joins ``V_v``.  The two costs of Definitions 2.1 / 2.2:

* ``VOL`` — ``|V_v|`` at termination;
* ``DIST`` — ``max { dist(v, w) : w ∈ V_v }``.

``DIST`` is measured over the *explored* subgraph.  On forests and
pseudo-forests — every instance family in the paper — explored-subgraph
distance equals true graph distance (paths are unique); in general it is an
upper bound.  This is documented in DESIGN.md §1.4.

The engine maintains ``DIST`` **incrementally** (DESIGN.md §6.3): every
visited node carries a distance label that is set when the node is visited
and lowered by a relaxation wave when a later edge insertion shortens a
path (on forests/pseudo-forests at most one such wave fires per closed
cycle).  ``distance_cost()`` is therefore O(1) — it reads the maintained
maximum — instead of re-running a full BFS after every invalidation.  The
reference BFS semantics survive as ``distance_mode="reference"`` /
:meth:`ProbeView.distance_cost_reference`, and the equivalence suite
asserts both paths agree on every run.

The engine enforces the model's information constraints: only visited nodes
may be queried, and random tapes are readable only as the active
:class:`~repro.model.randomness.RandomnessModel` allows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.model.oracle import GraphOracle, NodeInfo
from repro.model.randomness import (
    RandomnessContext,
    RandomnessModel,
    TapeStore,
)


class ProbeError(RuntimeError):
    """An algorithm violated the probe model (e.g. queried an unseen node)."""


class BudgetExceeded(RuntimeError):
    """The execution outgrew its volume or query budget.

    Used for the Remark 3.11 truncation: randomized algorithms with a
    high-probability volume bound are cut off at that bound, and the node
    falls back to an arbitrary output.
    """

    def __init__(self, kind: str, limit: int) -> None:
        super().__init__(f"{kind} budget of {limit} exceeded")
        self.kind = kind
        self.limit = limit


@dataclass
class CostProfile:
    """The measured costs of one per-node execution."""

    volume: int
    distance: int
    queries: int
    random_bits: int
    truncated: bool = False


class ProbeView:
    """What a single per-node execution can see and do.

    The algorithm receives exactly this object.  All information flows
    through :meth:`query`; the initiating node's own info is available for
    free (``V_v`` starts as ``{v}``).

    ``__slots__`` because one view is created per execution and
    :meth:`query` — the engine's hottest function — reads half a dozen
    attributes per call.
    """

    __slots__ = (
        "_oracle",
        "_resolve",
        "_node_info",
        "_start",
        "_randomness",
        "_max_volume",
        "_max_queries",
        "_visited",
        "_adjacency",
        "_queries",
        "_incremental",
        "_dist",
        "_dist_counts",
        "_max_dist",
        "_distance_cache",
    )

    DISTANCE_MODES = ("incremental", "reference")

    def __init__(
        self,
        oracle: GraphOracle,
        start: int,
        randomness: RandomnessContext,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
        distance_mode: str = "incremental",
    ) -> None:
        if distance_mode not in self.DISTANCE_MODES:
            raise ValueError(
                f"unknown distance_mode {distance_mode!r} "
                f"(expected one of {self.DISTANCE_MODES})"
            )
        self._oracle = oracle
        # Bound methods, so the per-query hot loop skips the attribute
        # chain (the oracle is fixed for the lifetime of the view).
        self._resolve = oracle.resolve
        self._node_info = oracle.node_info
        self._start = start
        self._randomness = randomness
        self._max_volume = max_volume
        self._max_queries = max_queries
        self._visited: Dict[int, NodeInfo] = {}
        self._adjacency: Dict[int, Set[int]] = {start: set()}
        self._queries = 0
        self._incremental = distance_mode == "incremental"
        # Incremental-DIST state: a distance label per *visited* node,
        # bucket counts per distance value, and the current maximum.
        self._dist: Dict[int, int] = {}
        self._dist_counts: List[int] = []
        self._max_dist = 0
        # Reference-mode state: the memoized BFS result.
        self._distance_cache: Optional[int] = None
        if not randomness.has_visibility:
            # The private-randomness discipline needs to know which nodes
            # this execution has visited; the view *is* that knowledge, so
            # the predicate can only be bound once the view exists.
            randomness.bind_visibility(self.is_visited)
        self._record_visit(oracle.node_info(start))

    # ------------------------------------------------------------------
    # model interface
    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """The node this execution was initiated at."""
        return self._start

    @property
    def start_info(self) -> NodeInfo:
        return self._visited[self._start]

    @property
    def n(self) -> int:
        """The number of nodes, provided as input to every algorithm."""
        return self._oracle.n

    def query(self, node_id: int, port: int) -> Optional[NodeInfo]:
        """Issue ``query(node_id, port)``; returns the endpoint's info.

        ``node_id`` must already be visited.  A dangling or out-of-range
        port returns ``None`` (the query is still counted).
        """
        visited = self._visited
        if node_id not in visited:
            raise ProbeError(
                f"query at unvisited node {node_id} (start {self._start})"
            )
        self._queries += 1
        if self._max_queries is not None and self._queries > self._max_queries:
            raise BudgetExceeded("query", self._max_queries)
        endpoint = self._resolve(node_id, port)
        if endpoint is None:
            return None
        adjacency = self._adjacency
        # Every visited node has an adjacency entry (the start node's is
        # created in __init__, every other node's when the edge it was
        # reached through is recorded), so index directly.
        nbrs = adjacency[node_id]
        if endpoint not in nbrs:
            nbrs.add(endpoint)
            back = adjacency.get(endpoint)
            if back is None:
                back = adjacency[endpoint] = set()
            back.add(node_id)
            new_edge = True
            if not self._incremental:
                self._distance_cache = None
        else:
            new_edge = False
        info = visited.get(endpoint)
        if info is not None:
            if new_edge and self._incremental:
                # A new explored edge between two visited nodes can
                # shorten distances (e.g. closing a cycle): relax.
                self._relax_edge(node_id, endpoint)
            return info
        if (
            self._max_volume is not None
            and len(visited) + 1 > self._max_volume
        ):
            raise BudgetExceeded("volume", self._max_volume)
        info = self._node_info(endpoint)
        self._record_visit(info, via=node_id)
        return info

    def info(self, node_id: int) -> NodeInfo:
        """Re-read a visited node's info (free: no new query)."""
        try:
            return self._visited[node_id]
        except KeyError:
            raise ProbeError(f"node {node_id} has not been visited") from None

    def is_visited(self, node_id: int) -> bool:
        return node_id in self._visited

    def random_bit(self, node_id: int, index: int) -> int:
        """Read bit ``index`` of ``r_{node_id}`` (discipline permitting)."""
        return self._randomness.bit(node_id, index)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def volume(self) -> int:
        return len(self._visited)

    @property
    def queries(self) -> int:
        return self._queries

    def distance_cost(self) -> int:
        """``max dist(start, w)`` over visited ``w`` in the explored graph.

        In the default ``incremental`` mode this reads the maintained
        maximum — O(1), no matter how the exploration interleaved queries
        and cost reads.  In ``reference`` mode it is the memoized full
        BFS (invalidated whenever the explored graph grows), kept as the
        executable specification the incremental labels are tested
        against.
        """
        if self._incremental:
            return self._max_dist
        if self._distance_cache is not None:
            return self._distance_cache
        self._distance_cache = self.distance_cost_reference()
        return self._distance_cache

    def distance_cost_reference(self) -> int:
        """The BFS-from-scratch reference for :meth:`distance_cost`.

        Always recomputed; used by the equivalence tests to check the
        incremental labels, and by ``reference`` mode (memoized there).
        """
        dist = {self._start: 0}
        frontier = [self._start]
        best = 0
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for w in self._adjacency.get(u, ()):
                    if w in self._visited and w not in dist:
                        dist[w] = dist[u] + 1
                        best = max(best, dist[w])
                        nxt.append(w)
            frontier = nxt
        return best

    def cost_profile(self, truncated: bool = False) -> CostProfile:
        return CostProfile(
            volume=self.volume,
            distance=self.distance_cost(),
            queries=self._queries,
            random_bits=self._randomness.bits_read,
            truncated=truncated,
        )

    # ------------------------------------------------------------------
    # incremental DIST maintenance (DESIGN.md §6.3)
    #
    # Invariant: after every public operation, ``self._dist[w]`` is the
    # explored-subgraph distance from ``start`` to ``w`` for every
    # *visited* ``w`` (unvisited endpoints of explored edges carry no
    # label and never relay a wave, matching the reference BFS, which
    # neither labels nor expands them), and ``self._max_dist`` is the
    # maximum label.  Labels only ever decrease once set, so each
    # relaxation wave terminates and total wave work is bounded by the
    # total label decrease.
    # ------------------------------------------------------------------
    def _record_visit(self, info: NodeInfo, via: Optional[int] = None) -> None:
        node = info.node_id
        self._visited[node] = info
        if not self._incremental:
            self._distance_cache = None
            return
        dist = self._dist
        if via is not None and len(self._adjacency[node]) == 1:
            # Fast path (every visit on a tree): the node's only explored
            # edge is the one it was just reached through, so its label
            # is forced and — with a single edge — it cannot serve as an
            # intermediate hop that shortens any other label.
            d = dist[via] + 1
            dist[node] = d
            counts = self._dist_counts
            if d == len(counts):
                counts.append(1)
            else:
                counts[d] += 1
            if d > self._max_dist:
                self._max_dist = d
            return
        if not dist:
            # The first visit is the start node itself.
            self._set_dist(node, 0)
            return
        # The node was reached through at least one visited (hence
        # labeled) neighbor; its explored distance is one more than the
        # nearest labeled neighbor.
        d = 1 + min(
            dist[x] for x in self._adjacency.get(node, ()) if x in dist
        )
        self._set_dist(node, d)
        # Becoming visited makes the node usable as an intermediate hop:
        # paths through it may now shorten other labels.
        self._relax_wave(node)

    def _relax_edge(self, u: int, w: int) -> None:
        """A new explored edge ``{u, w}``: lower whichever side it helps."""
        dist = self._dist
        du = dist.get(u)
        dw = dist.get(w)
        if du is None or dw is None:
            # At least one endpoint is unvisited: it carries no label and
            # cannot shorten paths until (unless) it is visited.
            return
        if du + 1 < dw:
            self._set_dist(w, du + 1)
            self._relax_wave(w)
        elif dw + 1 < du:
            self._set_dist(u, dw + 1)
            self._relax_wave(u)

    def _relax_wave(self, source: int) -> None:
        """Propagate a label decrease at ``source`` through the labels."""
        dist = self._dist
        adjacency = self._adjacency
        queue = deque((source,))
        while queue:
            u = queue.popleft()
            through = dist[u] + 1
            for w in adjacency.get(u, ()):
                dw = dist.get(w)
                if dw is not None and dw > through:
                    self._set_dist(w, through)
                    queue.append(w)

    def _set_dist(self, node: int, d: int) -> None:
        """Write a label and maintain the bucket counts / running max."""
        counts = self._dist_counts
        old = self._dist.get(node)
        self._dist[node] = d
        while len(counts) <= d:
            counts.append(0)
        counts[d] += 1
        if old is not None:
            counts[old] -= 1
            if old == self._max_dist and counts[old] == 0:
                m = self._max_dist
                while m > 0 and counts[m] == 0:
                    m -= 1
                self._max_dist = m
        if d > self._max_dist:
            self._max_dist = d


class ProbeAlgorithm:
    """Base class for per-node probe algorithms.

    Subclasses implement :meth:`run`, returning the node's output (any
    hashable value; problems define their own output conventions).  If the
    engine raises :class:`BudgetExceeded`, the runner calls
    :meth:`fallback`, the "arbitrary output" of the Remark 3.11 truncation.
    """

    name: str = "probe-algorithm"
    randomness: RandomnessModel = RandomnessModel.DETERMINISTIC

    def run(self, view: ProbeView):
        raise NotImplementedError

    def run_node_batch(self, oracle, nodes):
        """Optional batched whole-run fast path; ``None`` = unsupported.

        Implementations must return, for the given start nodes in order,
        exactly the ``(node, output, CostProfile)`` triples that per-node
        :func:`execute_at` calls would have produced — the dispatcher
        (``repro.exec.backends._execute_nodes``) treats the batch as a
        drop-in replacement and the equivalence suites enforce bitwise
        identity.  Only ever invoked for deterministic, unbudgeted runs
        (no tape store, no volume/query truncation); gather-style
        algorithms implement it over the flat-array CSR kernel
        (:mod:`repro.model.batched`).  Returning ``None`` — the default,
        and the right answer whenever ``oracle`` has no kernel — selects
        the scalar engine.
        """
        return None

    def fallback(self, view: ProbeView):
        """Output to emit when truncated (default: the node's input color)."""
        label = view.start_info.label
        return label.color

    @property
    def is_randomized(self) -> bool:
        return self.randomness is not RandomnessModel.DETERMINISTIC


def execute_at(
    oracle: GraphOracle,
    algorithm: ProbeAlgorithm,
    node: int,
    tape_store: Optional[TapeStore] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
    distance_mode: str = "incremental",
):
    """Run ``algorithm`` from ``node``; returns ``(output, CostProfile)``.

    Budget overruns are converted into the algorithm's fallback output with
    ``truncated=True`` in the profile, matching Remark 3.11.
    ``distance_mode`` selects how the view maintains ``DIST`` (the value
    is identical either way; ``"reference"`` exists for benchmarking and
    the equivalence suite).
    """
    context = RandomnessContext(tape_store, algorithm.randomness, node)
    view = ProbeView(
        oracle,
        node,
        context,  # ProbeView binds its visited-set predicate to the context
        max_volume=max_volume,
        max_queries=max_queries,
        distance_mode=distance_mode,
    )
    try:
        output = algorithm.run(view)
        return output, view.cost_profile()
    except BudgetExceeded:
        return algorithm.fallback(view), view.cost_profile(truncated=True)
