"""The probe-model execution engine (Section 2.2).

An execution initiated at ``v`` maintains a set ``V_v`` of visited nodes,
initially ``{v}``.  Each step issues ``query(w, j)`` for a visited ``w`` and
port ``j``; the response reveals the endpoint's identity, degree and entire
input (including, for randomized algorithms, access to its random string),
and the endpoint joins ``V_v``.  The two costs of Definitions 2.1 / 2.2:

* ``VOL`` — ``|V_v|`` at termination;
* ``DIST`` — ``max { dist(v, w) : w ∈ V_v }``.

``DIST`` is computed by BFS over the *explored* subgraph.  On forests and
pseudo-forests — every instance family in the paper — explored-subgraph
distance equals true graph distance (paths are unique); in general it is an
upper bound.  This is documented in DESIGN.md §1.4.

The engine enforces the model's information constraints: only visited nodes
may be queried, and random tapes are readable only as the active
:class:`~repro.model.randomness.RandomnessModel` allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.model.oracle import GraphOracle, NodeInfo
from repro.model.randomness import (
    RandomnessContext,
    RandomnessModel,
    TapeStore,
)


class ProbeError(RuntimeError):
    """An algorithm violated the probe model (e.g. queried an unseen node)."""


class BudgetExceeded(RuntimeError):
    """The execution outgrew its volume or query budget.

    Used for the Remark 3.11 truncation: randomized algorithms with a
    high-probability volume bound are cut off at that bound, and the node
    falls back to an arbitrary output.
    """

    def __init__(self, kind: str, limit: int) -> None:
        super().__init__(f"{kind} budget of {limit} exceeded")
        self.kind = kind
        self.limit = limit


@dataclass
class CostProfile:
    """The measured costs of one per-node execution."""

    volume: int
    distance: int
    queries: int
    random_bits: int
    truncated: bool = False


class ProbeView:
    """What a single per-node execution can see and do.

    The algorithm receives exactly this object.  All information flows
    through :meth:`query`; the initiating node's own info is available for
    free (``V_v`` starts as ``{v}``).
    """

    def __init__(
        self,
        oracle: GraphOracle,
        start: int,
        randomness: RandomnessContext,
        max_volume: Optional[int] = None,
        max_queries: Optional[int] = None,
    ) -> None:
        self._oracle = oracle
        self._start = start
        self._randomness = randomness
        self._max_volume = max_volume
        self._max_queries = max_queries
        self._visited: Dict[int, NodeInfo] = {}
        self._adjacency: Dict[int, Set[int]] = {start: set()}
        self._queries = 0
        self._distance_cache: Optional[int] = None
        if not randomness.has_visibility:
            # The private-randomness discipline needs to know which nodes
            # this execution has visited; the view *is* that knowledge, so
            # the predicate can only be bound once the view exists.
            randomness.bind_visibility(self.is_visited)
        self._record_visit(oracle.node_info(start))

    # ------------------------------------------------------------------
    # model interface
    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """The node this execution was initiated at."""
        return self._start

    @property
    def start_info(self) -> NodeInfo:
        return self._visited[self._start]

    @property
    def n(self) -> int:
        """The number of nodes, provided as input to every algorithm."""
        return self._oracle.n

    def query(self, node_id: int, port: int) -> Optional[NodeInfo]:
        """Issue ``query(node_id, port)``; returns the endpoint's info.

        ``node_id`` must already be visited.  A dangling or out-of-range
        port returns ``None`` (the query is still counted).
        """
        if node_id not in self._visited:
            raise ProbeError(
                f"query at unvisited node {node_id} (start {self._start})"
            )
        self._queries += 1
        if self._max_queries is not None and self._queries > self._max_queries:
            raise BudgetExceeded("query", self._max_queries)
        endpoint = self._oracle.resolve(node_id, port)
        if endpoint is None:
            return None
        if endpoint not in self._adjacency.get(node_id, ()):
            # A new explored edge can shorten distances even between two
            # already-visited nodes (e.g. closing a cycle), so any
            # adjacency growth invalidates the cached BFS result.
            self._distance_cache = None
        self._adjacency.setdefault(node_id, set()).add(endpoint)
        self._adjacency.setdefault(endpoint, set()).add(node_id)
        if endpoint in self._visited:
            return self._visited[endpoint]
        if (
            self._max_volume is not None
            and len(self._visited) + 1 > self._max_volume
        ):
            raise BudgetExceeded("volume", self._max_volume)
        info = self._oracle.node_info(endpoint)
        self._record_visit(info)
        return info

    def info(self, node_id: int) -> NodeInfo:
        """Re-read a visited node's info (free: no new query)."""
        try:
            return self._visited[node_id]
        except KeyError:
            raise ProbeError(f"node {node_id} has not been visited") from None

    def is_visited(self, node_id: int) -> bool:
        return node_id in self._visited

    def random_bit(self, node_id: int, index: int) -> int:
        """Read bit ``index`` of ``r_{node_id}`` (discipline permitting)."""
        return self._randomness.bit(node_id, index)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def volume(self) -> int:
        return len(self._visited)

    @property
    def queries(self) -> int:
        return self._queries

    def distance_cost(self) -> int:
        """``max dist(start, w)`` over visited ``w`` in the explored graph.

        The BFS result is cached and invalidated whenever the explored
        graph grows (a new visit or a new adjacency edge), so repeated
        ``cost_profile()`` calls after a large exploration are O(1).
        """
        if self._distance_cache is not None:
            return self._distance_cache
        dist = {self._start: 0}
        frontier = [self._start]
        best = 0
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for w in self._adjacency.get(u, ()):
                    if w in self._visited and w not in dist:
                        dist[w] = dist[u] + 1
                        best = max(best, dist[w])
                        nxt.append(w)
            frontier = nxt
        self._distance_cache = best
        return best

    def cost_profile(self, truncated: bool = False) -> CostProfile:
        return CostProfile(
            volume=self.volume,
            distance=self.distance_cost(),
            queries=self._queries,
            random_bits=self._randomness.bits_read,
            truncated=truncated,
        )

    def _record_visit(self, info: NodeInfo) -> None:
        self._visited[info.node_id] = info
        self._distance_cache = None


class ProbeAlgorithm:
    """Base class for per-node probe algorithms.

    Subclasses implement :meth:`run`, returning the node's output (any
    hashable value; problems define their own output conventions).  If the
    engine raises :class:`BudgetExceeded`, the runner calls
    :meth:`fallback`, the "arbitrary output" of the Remark 3.11 truncation.
    """

    name: str = "probe-algorithm"
    randomness: RandomnessModel = RandomnessModel.DETERMINISTIC

    def run(self, view: ProbeView):
        raise NotImplementedError

    def fallback(self, view: ProbeView):
        """Output to emit when truncated (default: the node's input color)."""
        label = view.start_info.label
        return label.color

    @property
    def is_randomized(self) -> bool:
        return self.randomness is not RandomnessModel.DETERMINISTIC


def execute_at(
    oracle: GraphOracle,
    algorithm: ProbeAlgorithm,
    node: int,
    tape_store: Optional[TapeStore] = None,
    max_volume: Optional[int] = None,
    max_queries: Optional[int] = None,
):
    """Run ``algorithm`` from ``node``; returns ``(output, CostProfile)``.

    Budget overruns are converted into the algorithm's fallback output with
    ``truncated=True`` in the profile, matching Remark 3.11.
    """
    context = RandomnessContext(tape_store, algorithm.randomness, node)
    view = ProbeView(
        oracle,
        node,
        context,  # ProbeView binds its visited-set predicate to the context
        max_volume=max_volume,
        max_queries=max_queries,
    )
    try:
        output = algorithm.run(view)
        return output, view.cost_profile()
    except BudgetExceeded:
        return algorithm.fallback(view), view.cost_profile(truncated=True)
