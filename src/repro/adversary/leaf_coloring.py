"""The Proposition 3.13 adversary: D-VOL(LeafColoring) = Ω(n).

The process P interacts with a deterministic algorithm A started at a
root ``v0``: every query is answered by lazily growing a binary tree whose
created nodes all carry internal labels (P=1, LC=2, RC=3) and input color
red.  Because A is deterministic and sees only red, whatever color χ0 it
outputs at v0 can be punished: P completes the tree by hanging a leaf with
color χ1 ≠ χ0 on every unmaterialized port.  All leaves of the finished
instance then carry χ1, so the *unique* valid output is all-χ1
(Proposition 3.12's induction) — and A already answered χ0 at the root.

If A uses fewer than n/3 queries the finished tree fits in n nodes, hence
any deterministic algorithm with volume < n/3 fails on some n-node input.

The lazy growth, degree-commit bookkeeping and transcript recording all
come from :class:`~repro.adversary.engine.InteractiveOracle`: created
nodes commit to their final degree (internal ⇒ 3, the root ⇒ 2, matching
the paper's v0), so the info A receives during the interaction is exactly
the info it would receive on the finished instance — ``finalized()``
replays the whole transcript against the finished instance to prove it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adversary.base import Adversary, AdversaryRun
from repro.adversary.engine import InteractiveOracle, Transcript
from repro.graphs.labelings import (
    Instance,
    NodeLabel,
    RED,
    other_color,
)
from repro.model.probe import (
    BudgetExceeded,
    ProbeAlgorithm,
    ProbeView,
)
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.registry import register_adversary


class AdversarialTreeOracle(InteractiveOracle):
    """The lazy Proposition 3.13 tree, grown on demand by the engine."""

    adversary_name = "prop313/leaf-coloring"
    ROOT = 1

    def __init__(self, n: int) -> None:
        super().__init__(n, max_degree=3)
        root = self.create_node(
            # v0: no parent; children on ports 1 and 2 (proof of Prop 3.13).
            NodeLabel(parent=None, left_child=1, right_child=2, color=RED),
            (1, 2),
        )
        assert root == self.ROOT

    def materialize(self, node_id: int, port: int) -> int:
        # A fresh internal red node behind this port, committed to
        # degree 3 the moment it becomes visible.
        child = self.create_node(
            NodeLabel(parent=1, left_child=2, right_child=3, color=RED),
            (1, 2, 3),
        )
        self.connect(node_id, port, child, 1)
        return child

    def finalize(self, root_output: str) -> Instance:
        """Complete the tree: a χ1-colored leaf on every unbuilt port."""
        chi1 = other_color(root_output)
        for node in list(self.graph.nodes()):
            for port in self.committed[node]:
                if self.graph.neighbor_at(node, port) is None:
                    leaf = self.create_node(
                        NodeLabel(parent=1, color=chi1), (1,)
                    )
                    self.connect(node, port, leaf, 1)
        return self.finalized(
            name=f"prop313-adversarial-{self.graph.num_nodes}",
            meta={"root": self.ROOT, "chi1": chi1},
        )


@dataclass
class AdversaryOutcome:
    """Result of one adversary-vs-algorithm duel."""

    defeated: bool  # the algorithm produced an invalid output
    exceeded_budget: bool  # the algorithm needed more than the query budget
    queries_used: int
    instance: Optional[Instance]
    root_output: Optional[str]
    transcript: Optional[Transcript] = None
    query_budget: int = 0  # the budget the duel actually enforced


def duel_leaf_coloring(
    algorithm: ProbeAlgorithm,
    n: int,
    query_budget: Optional[int] = None,
) -> AdversaryOutcome:
    """Run Proposition 3.13's process P against a deterministic algorithm.

    ``query_budget`` defaults to ⌊n/3⌋ − 1, the paper's bound.  Returns
    whether the algorithm was defeated (its root output contradicts the
    unique valid solution of the finished instance) or whether it escaped
    by exceeding the budget — the dichotomy that proves Ω(n) volume.

    The duel always finalizes: on a budget escape the tree is completed
    against the fallback color red, so the outcome carries a concrete
    witness instance (with every interactive answer still true of it)
    either way.
    """
    if algorithm.is_randomized:
        raise ValueError("Proposition 3.13 concerns deterministic algorithms")
    budget = (n // 3) - 1 if query_budget is None else query_budget
    oracle = AdversarialTreeOracle(n)
    oracle.transcript.meta.update(
        {"algorithm": algorithm.name, "budget": budget}
    )
    view = ProbeView(
        oracle,
        oracle.ROOT,
        RandomnessContext(None, RandomnessModel.DETERMINISTIC, oracle.ROOT),
        max_queries=budget,
    )
    try:
        root_output: Optional[str] = algorithm.run(view)
        exceeded = False
    except BudgetExceeded:
        root_output = None
        exceeded = True
    instance = oracle.finalize(root_output if root_output is not None else RED)
    # The unique valid output colors every node χ1 ≠ root_output; whatever
    # the other nodes answer, the global labeling is invalid.
    defeated = not exceeded and root_output != instance.meta["chi1"]
    return AdversaryOutcome(
        defeated=defeated,
        exceeded_budget=exceeded,
        queries_used=view.queries,
        instance=instance,
        root_output=root_output,
        transcript=oracle.transcript,
        query_budget=budget,
    )


@register_adversary(
    "prop313/leaf-coloring",
    problem="leaf-coloring",
    bound="D-VOL(LeafColoring) = Ω(n)",
    victim="leaf-coloring/distance",
    quick=(60, 120, 240),
    full=(60, 120, 240, 480, 960, 1920),
    expected_fit=("n",),
    candidates=("log n", "n^{1/2}", "n"),
    description="Prop 3.13: lazy red tree, leaves colored after the output.",
)
class Prop313Adversary(Adversary):
    """Prop 3.13: lazy red tree, leaves colored after the output.

    ``budget`` is the advertised instance size n; the query budget is the
    paper's ⌊n/3⌋ − 1, so the query count an escaping algorithm is forced
    to spend grows as Ω(n).
    """

    name = "prop313/leaf-coloring"
    default_victim = "leaf-coloring/distance"

    def run(self, budget: object) -> AdversaryRun:
        n = int(budget)
        outcome = duel_leaf_coloring(self.make_victim(), n=n)
        return AdversaryRun(
            adversary=self.name,
            algorithm=self.victim,
            budget=n,
            n=outcome.instance.graph.num_nodes,
            queries=outcome.queries_used,
            defeated=outcome.defeated,
            upheld=outcome.defeated or outcome.exceeded_budget,
            instance=outcome.instance,
            transcript=outcome.transcript,
            detail={
                "advertised_n": n,
                "query_budget": outcome.query_budget,
                "exceeded_budget": outcome.exceeded_budget,
                "root_output": outcome.root_output,
                "chi1": outcome.instance.meta["chi1"],
            },
        )

    def verify(self, run: AdversaryRun, backend=None) -> bool:
        from repro.model.implicit import as_oracle
        from repro.model.runner import run_algorithm
        from repro.problems.leaf_coloring import LeafColoring

        instance = run.instance
        if run.transcript.replay(as_oracle(instance, mode="reference")):
            return False
        if run.transcript.replay(as_oracle(instance, mode="compiled")):
            return False
        root = instance.meta["root"]
        result = run_algorithm(
            instance,
            self.make_victim(),
            nodes=[root],
            max_queries=run.detail["query_budget"],
            backend=backend,
        )
        profile = result.profiles[root]
        if run.detail["exceeded_budget"]:
            if not profile.truncated:
                return False
        else:
            if profile.truncated:
                return False
            if result.outputs[root] != run.detail["root_output"]:
                return False
        if run.defeated:
            # Defeat must certify a real counterexample: the same budgeted
            # run from every node yields a globally invalid output.
            full = run_algorithm(
                instance,
                self.make_victim(),
                max_queries=run.detail["query_budget"],
                backend=backend,
            )
            if full.outputs[root] != run.detail["root_output"]:
                return False
            if not LeafColoring().validate(instance, full.outputs):
                return False
        return True
