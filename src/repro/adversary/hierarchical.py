"""The Proposition 5.20 adversary: D-VOL(Hierarchical-THC(k)) = Ω̃(n).

The process P defeats any deterministic algorithm A of volume ≤ m by
constructing, over k phases, an instance on O(k²·m·log m) nodes on which
A's outputs violate validity.  Phase ℓ holds a node v_ℓ at level ℓ whose
parent has output X (so v_ℓ may not decline, by condition 4(b)/5(a)):

* simulate A from v_ℓ inside its single-colored component; if A answers X,
  descend to v_{ℓ-1} = RC(v_ℓ);
* otherwise spawn a fresh opposite-colored component, simulate its root
  v'_ℓ; if X, descend there;
* otherwise splice the new component below v_ℓ (v'_ℓ becomes a left
  descendant) — the two ends of the resulting backbone path now hold
  *different* non-X outputs, so a valid output must place an X between
  them; binary search either finds that X (descend) or pins two adjacent
  nodes with conflicting non-X outputs — a local violation.

Phase 1 cannot escape: level-1 nodes may not output X (condition 3), may
not decline (the parent's X), and the adversary appends an opposite-color
leaf below, contradicting whatever color A chose.

The lazy growth, degree-commit discipline and transcript recording come
from :class:`~repro.adversary.engine.InteractiveOracle`: nodes commit to
their final degree when first revealed (level ≥ 2 ⇒ ports P/LC/RC;
level 1 ⇒ P/LC), so re-running A on the finished instance reproduces
every interactive execution — the final verdict is ground truth:
finalize, re-run A from every node, validate.  Simulated executions run
under A's volume budget with Remark 3.11 truncation semantics (fallback
output), exactly as the re-run does.  Finalization closes every dangling
port with the minimal level-consistent gadget (an O(k)-node chain), as in
the proof's last step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.base import Adversary, AdversaryRun
from repro.adversary.engine import InteractiveOracle, Transcript
from repro.graphs.labelings import (
    BLUE,
    EXEMPT,
    Instance,
    NodeLabel,
    RED,
    other_color,
)
from repro.model.probe import BudgetExceeded, ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessContext, RandomnessModel
from repro.registry import register_adversary

# Port conventions for adversary-created nodes (the proof's invariant).
_P, _LC, _RC = 1, 2, 3
# Finalization tops use the root convention: children on ports 1/2.
_TOP_LC, _TOP_RC = 1, 2


@dataclass
class _NodeMeta:
    level: int
    color: str
    kind: str  # "backbone" | "top" | "chain" | "leaf"


class AdversarialTHCOracle(InteractiveOracle):
    """Lazy level-aware oracle implementing the process P's answers."""

    adversary_name = "prop520/hierarchical-thc"

    def __init__(self, k: int, n: int) -> None:
        super().__init__(n, max_degree=3)
        self.k = k
        self.meta: Dict[int, _NodeMeta] = {}

    # -- lazy construction ---------------------------------------------
    def new_backbone_node(self, level: int, color: str) -> int:
        """A fresh node of the proof's standard shape at ``level``."""
        if level >= 2:
            label = NodeLabel(
                parent=_P, left_child=_LC, right_child=_RC, color=color
            )
            ports = (_P, _LC, _RC)
        else:
            label = NodeLabel(parent=_P, left_child=_LC, color=color)
            ports = (_P, _LC)
        node = self.create_node(label, ports)
        self.meta[node] = _NodeMeta(level=level, color=color, kind="backbone")
        return node

    def materialize(self, node_id: int, port: int) -> int:
        info = self.meta[node_id]
        label = self.labeling.get(node_id)
        if info.kind == "top":
            # tops have children on ports 1/2 and no parent
            if port == _TOP_LC:
                child = self.new_backbone_node(info.level, info.color)
            else:
                child = self.new_backbone_node(info.level - 1, info.color)
            self.connect(node_id, port, child, _P)
            return child
        if port == label.parent:
            # Same-level parent: node_id becomes the parent's LC, keeping
            # the component's level profile intact.
            parent = self.new_backbone_node(info.level, info.color)
            self.connect(node_id, port, parent, _LC)
            return parent
        if port == label.left_child:
            child = self.new_backbone_node(info.level, info.color)
        elif port == label.right_child:
            child = self.new_backbone_node(info.level - 1, info.color)
        else:  # pragma: no cover - committed ports only
            raise AssertionError("uncommitted port materialized")
        self.connect(node_id, port, child, _P)
        return child

    # -- structure walks used by the phases -----------------------------
    def highest_ancestor(self, node: int) -> int:
        """Topmost *materialized* same-level ancestor along LC links."""
        current = node
        while True:
            label = self.labeling.get(current)
            if label.parent is None:
                return current
            parent = self.graph.neighbor_at(current, label.parent)
            if parent is None:
                return current
            parent_lc = self.labeling.get(parent).left_child or -1
            if self.graph.neighbor_at(parent, parent_lc) != current:
                return current  # we hang off a RC port: different level
            current = parent

    def leftmost_descendant(self, node: int) -> int:
        """Deepest materialized same-level descendant along LC links."""
        current = node
        while True:
            label = self.labeling.get(current)
            if label.left_child is None:
                return current
            child = self.graph.neighbor_at(current, label.left_child)
            if child is None:
                return current
            current = child

    def backbone_path(self, top: int, bottom: int) -> List[int]:
        """Materialized LC path from ``top`` down to ``bottom``."""
        path = [top]
        current = top
        while current != bottom:
            label = self.labeling.get(current)
            child = self.graph.neighbor_at(current, label.left_child)
            if child is None:
                raise AssertionError("backbone path interrupted")
            path.append(child)
            current = child
        return path

    def splice_below(self, upper_end: int, lower_top: int) -> None:
        """Attach a component: ``lower_top`` becomes LC-child of upper_end."""
        up_label = self.labeling.get(upper_end)
        lo_label = self.labeling.get(lower_top)
        self.connect(upper_end, up_label.left_child, lower_top, lo_label.parent)

    def append_leaf(self, node: int, color: str) -> int:
        """Phase 1's coup de grâce: a level-1 leaf of the opposite color."""
        label = self.labeling.get(node)
        leaf = self.create_node(NodeLabel(parent=_P, color=color), (_P,))
        self.connect(node, label.left_child, leaf, _P)
        self.meta[leaf] = _NodeMeta(level=1, color=color, kind="leaf")
        return leaf

    # -- finalization ----------------------------------------------------
    def _new_chain_node(self, level: int, color: str) -> int:
        """Minimal level-consistent filler: a level-ℓ leaf with RC chain."""
        if level >= 2:
            # chain nodes: parent on 1, RC on 2 (no LC: they are level leaves)
            label = NodeLabel(parent=_P, right_child=2, color=color)
            ports = (1, 2)
        else:
            label = NodeLabel(parent=_P, color=color)
            ports = (1,)
        node = self.create_node(label, ports)
        self.meta[node] = _NodeMeta(level=level, color=color, kind="chain")
        return node

    def _attach_chain(self, node: int, port: int, level: int, color: str) -> None:
        """Hang a minimal level-``level`` component off ``(node, port)``."""
        head = self._new_chain_node(level, color)
        self.connect(node, port, head, 1)
        current = head
        for lvl in range(level - 1, 0, -1):
            nxt = self._new_chain_node(lvl, color)
            self.connect(current, 2, nxt, 1)
            current = nxt

    def finalize(self) -> Instance:
        """Close every dangling committed port with a consistent gadget."""
        for node in list(self.graph.nodes()):
            info = self.meta[node]
            label = self.labeling.get(node)
            ports = list(self.committed[node])
            for port in ports:
                if self.graph.neighbor_at(node, port) is not None:
                    continue
                if info.kind == "top":
                    level = info.level if port == _TOP_LC else info.level - 1
                    self._attach_chain(node, port, level, info.color)
                elif port == label.parent:
                    # a fresh top above: keeps every seen degree intact
                    top = self.create_node(
                        NodeLabel(
                            left_child=_TOP_LC,
                            right_child=_TOP_RC,
                            color=info.color,
                        ),
                        (_TOP_LC, _TOP_RC),
                    )
                    self.meta[top] = _NodeMeta(
                        level=info.level, color=info.color, kind="top"
                    )
                    self.connect(node, port, top, _TOP_LC)
                    self._attach_chain(top, _TOP_RC, info.level - 1, info.color)
                elif port == label.left_child:
                    self._attach_chain(node, port, info.level, info.color)
                elif port == label.right_child:
                    self._attach_chain(node, port, info.level - 1, info.color)
        if self.graph.num_nodes > self._n:
            raise RuntimeError(
                f"adversary outgrew its advertised n: "
                f"{self.graph.num_nodes} > {self._n}"
            )
        return self.finalized(
            name=f"prop520-adversarial-k{self.k}",
            meta={"k": self.k},
        )


@dataclass
class THCAdversaryOutcome:
    defeated: bool
    instance: Optional[Instance]
    simulations: int
    phase_log: List[str] = field(default_factory=list)
    transcript: Optional[Transcript] = None


def _simulate(oracle, algorithm, node, budget):
    view = ProbeView(
        oracle,
        node,
        RandomnessContext(None, RandomnessModel.DETERMINISTIC, node),
        max_volume=budget,
    )
    try:
        return algorithm.run(view)
    except BudgetExceeded:
        return algorithm.fallback(view)


def duel_hierarchical(
    algorithm: ProbeAlgorithm,
    k: int,
    volume_budget: int,
    n: Optional[int] = None,
) -> THCAdversaryOutcome:
    """Run Proposition 5.20's process P against a deterministic algorithm.

    The algorithm runs with ``volume_budget`` and Remark 3.11 truncation;
    the verdict re-runs it from every node of the finished instance under
    the same budget and validates.  For budgets m = o(n / (k² log m)) the
    process provably defeats any deterministic algorithm.
    """
    if algorithm.is_randomized:
        raise ValueError("Proposition 5.20 concerns deterministic algorithms")
    m = volume_budget
    if n is None:
        n = 64 * k * k * m * max(1, math.ceil(math.log2(max(2, m))))
    oracle = AdversarialTHCOracle(k, n)
    oracle.transcript.adversary = f"prop520/hierarchical-thc({k})"
    oracle.transcript.meta.update(
        {"algorithm": algorithm.name, "k": k, "volume_budget": m}
    )
    log: List[str] = []
    sims = 0

    def simulate(node) -> object:
        nonlocal sims
        sims += 1
        return _simulate(oracle, algorithm, node, m)

    def binary_search_phase(path: List[int], out_lo, out_hi) -> Optional[int]:
        """Find an X on the path, or pin a conflicting adjacent pair."""
        lo, hi = 0, len(path) - 1
        known = {lo: out_lo, hi: out_hi}
        while hi - lo > 1:
            mid = (lo + hi) // 2
            out_mid = simulate(path[mid])
            known[mid] = out_mid
            if out_mid == EXEMPT:
                return path[mid]
            if out_mid == known[lo]:
                lo = mid
            else:
                hi = mid
        return None  # adjacent conflict: defeat expected

    # ---- phases k .. 2 --------------------------------------------------
    current_color = BLUE
    v = oracle.new_backbone_node(k, BLUE)
    for level in range(k, 1, -1):
        out_v = simulate(v)
        log.append(f"phase {level}: A({v}) = {out_v}")
        if out_v == EXEMPT:
            v = oracle.resolve(v, oracle.labeling.get(v).right_child)
            current_color = oracle.meta[v].color
            continue
        v_prime = oracle.new_backbone_node(level, other_color(current_color))
        out_vp = simulate(v_prime)
        log.append(f"phase {level}: A({v_prime}) = {out_vp}")
        if out_vp == EXEMPT:
            v = oracle.resolve(
                v_prime, oracle.labeling.get(v_prime).right_child
            )
            current_color = oracle.meta[v].color
            continue
        # splice v' below v and binary search for an X between them
        lower_top = oracle.highest_ancestor(v_prime)
        upper_end = oracle.leftmost_descendant(v)
        oracle.splice_below(upper_end, lower_top)
        path = oracle.backbone_path(
            oracle.highest_ancestor(v), oracle.leftmost_descendant(v_prime)
        )
        # restrict to the v..v' stretch
        i_v, i_vp = path.index(v), path.index(v_prime)
        path = path[i_v : i_vp + 1]
        found = binary_search_phase(path, out_v, out_vp)
        if found is None:
            log.append(f"phase {level}: adjacent conflict — verifying")
            return _verdict(oracle, algorithm, m, sims, log)
        log.append(f"phase {level}: X at {found}; descending")
        v = oracle.resolve(found, oracle.labeling.get(found).right_child)
        current_color = oracle.meta[v].color

    # ---- phase 1 ---------------------------------------------------------
    out1 = simulate(v)
    log.append(f"phase 1: A({v}) = {out1}")
    if out1 in (RED, BLUE):
        # Append an opposite-colored leaf below the deepest explored node.
        bottom = oracle.leftmost_descendant(v)
        oracle.append_leaf(bottom, other_color(out1))
        log.append("phase 1: appended contradicting leaf")
    # Any other answer (D/X/pair) is locally invalid at level 1 under an
    # exempt parent; fall through to the verdict either way.
    return _verdict(oracle, algorithm, m, sims, log)


def _verdict(oracle, algorithm, budget, sims, log) -> THCAdversaryOutcome:
    from repro.model.runner import run_algorithm
    from repro.problems.hierarchical_thc import HierarchicalTHC

    instance = oracle.finalize()
    # The re-run goes through the default execution backend, i.e. the
    # compiled instance fast path — n·budget probe steps on CSR arrays.
    result = run_algorithm(instance, algorithm, max_volume=budget)
    problem = HierarchicalTHC(oracle.k)
    violations = problem.validate(instance, result.outputs)
    log.append(
        f"verdict: {len(violations)} violations on {instance.graph.num_nodes} nodes"
    )
    return THCAdversaryOutcome(
        defeated=bool(violations),
        instance=instance,
        simulations=sims,
        phase_log=log,
        transcript=oracle.transcript,
    )


@register_adversary(
    "prop520/hierarchical-thc(2)",
    problem="hierarchical-thc(2)",
    bound="D-VOL(Hierarchical-THC(k)) = Ω̃(n)",
    victim="hierarchical-thc(2)/recursive",
    quick=(20, 30, 45),
    full=(20, 40, 80, 160),
    expected_fit=("n",),
    candidates=("log n", "n^{1/2}", "n"),
    description="Prop 5.20: k-phase exemption chase with binary search.",
)
class Prop520Adversary(Adversary):
    """Prop 5.20: k-phase exemption chase with binary search.

    ``budget`` is the victim's volume budget m; the interactive query
    total the process forces (O(k log m) budget-capped simulations plus
    its own descents) tracks the finished instance size linearly for
    fixed k, giving the Ω̃(n) curve.
    """

    name = "prop520/hierarchical-thc(2)"
    default_victim = "hierarchical-thc(2)/recursive"
    k = 2

    def run(self, budget: object) -> AdversaryRun:
        m = int(budget)
        outcome = duel_hierarchical(self.make_victim(), k=self.k, volume_budget=m)
        return AdversaryRun(
            adversary=self.name,
            algorithm=self.victim,
            budget=m,
            n=outcome.instance.graph.num_nodes,
            queries=outcome.transcript.queries,
            defeated=outcome.defeated,
            upheld=outcome.defeated,
            instance=outcome.instance,
            transcript=outcome.transcript,
            detail={
                "k": self.k,
                "volume_budget": m,
                "simulations": outcome.simulations,
                "phase_log": list(outcome.phase_log),
            },
        )

    def verify(self, run: AdversaryRun, backend=None) -> bool:
        from repro.model.implicit import as_oracle
        from repro.model.runner import run_algorithm
        from repro.problems.hierarchical_thc import HierarchicalTHC

        instance = run.instance
        if run.transcript.replay(as_oracle(instance, mode="reference")):
            return False
        if run.transcript.replay(as_oracle(instance, mode="compiled")):
            return False
        result = run_algorithm(
            instance,
            self.make_victim(),
            max_volume=run.detail["volume_budget"],
            backend=backend,
        )
        violations = HierarchicalTHC(self.k).validate(instance, result.outputs)
        return bool(violations) == run.defeated
