"""Communication-complexity lower bounds via disjointness (Section 2.5).

Theorem 2.9 (Eden–Rosenbaum): if ``(E, g)`` embeds a function f and every
query can be answered with ≤ B bits of Alice↔Bob communication, then any
algorithm computing g needs Ω(R(f)/B) queries.  Proposition 4.9
instantiates this for BalancedTree with f = disjointness (R(disj) = Ω(N),
Theorem 2.10 / Kalyanasundaram–Schnitger): in the Figure 5 embedding only
leaf labels depend on (a, b) — coordinate i's pair (u_i, w_i) needs
exactly the two bits (a_i, b_i) — so every query costs ≤ 2 bits and any
algorithm solving BalancedTree needs Ω(N) = Ω(n) queries.

:class:`TwoPartyReferee` executes a probe algorithm on E(a, b) while
keeping Alice's and Bob's books: each time a query's *response* depends on
an (a_i, b_i) the referee charges the two bits (once per coordinate per
direction, since both parties cache what they learned — standard protocol
bookkeeping).  The referee is built on the engine's
:class:`~repro.adversary.engine.RecordingOracle`: the full interaction is
a replayable :class:`~repro.adversary.engine.Transcript`, and the bit
charge is a pure function of the transcript
(:func:`bits_from_transcript`), so the accounting itself is auditable
after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.adversary.base import Adversary, AdversaryRun
from repro.adversary.engine import RecordingOracle, Transcript
from repro.graphs.generators import disjointness_embedding
from repro.graphs.labelings import BALANCED, Instance
from repro.model.implicit import as_oracle
from repro.model.oracle import GraphOracle, NodeInfo
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import (
    RandomnessContext,
    TapeStore,
)
from repro.registry import register_adversary


def charge_bits(
    revealed: Iterable[int], coordinate_of: Dict[int, int]
) -> int:
    """Theorem 2.9 bookkeeping: 2 bits per first-revealed coordinate.

    Answering for a leaf reveals its labels ⇒ needs a_i and b_i: Bob
    sends b_i to Alice and Alice sends a_i to Bob, once per coordinate
    (both parties cache what they learned).
    """
    alice_knows: Set[int] = set()
    bob_knows: Set[int] = set()
    bits = 0
    for node in revealed:
        coord = coordinate_of.get(node)
        if coord is None:
            continue
        if coord not in alice_knows:
            alice_knows.add(coord)
            bits += 1  # Bob sends b_i to Alice
        if coord not in bob_knows:
            bob_knows.add(coord)
            bits += 1  # Alice sends a_i to Bob
    return bits


def bits_from_transcript(
    transcript: Transcript, coordinate_of: Dict[int, int]
) -> int:
    """Re-derive the communication charge from a recorded transcript."""
    return charge_bits(transcript.revealed_nodes(), coordinate_of)


class TwoPartyReferee(RecordingOracle):
    """Records the interaction on E(a, b) and charges bits as it goes."""

    def __init__(self, instance: Instance, inner: Optional[GraphOracle] = None):
        super().__init__(
            inner if inner is not None else as_oracle(
                instance, mode="reference"
            ),
            Transcript(
                adversary="prop49/balanced-tree",
                n=instance.n,
                meta={"instance": instance.name},
            ),
        )
        self._coordinate_of: Dict[int, int] = instance.meta["coordinate_of"]
        self.bits_exchanged = 0
        self._alice_knows: Set[int] = set()  # coordinates of b Alice learned
        self._bob_knows: Set[int] = set()  # coordinates of a Bob learned

    def node_info(self, node_id: int) -> NodeInfo:
        self._charge(node_id)
        return super().node_info(node_id)

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        endpoint = super().resolve(node_id, port)
        if endpoint is not None:
            self._charge(endpoint)
        return endpoint

    def _charge(self, node_id: int) -> None:
        """Answering for a leaf reveals its labels ⇒ needs a_i and b_i."""
        coord = self._coordinate_of.get(node_id)
        if coord is None:
            return
        if coord not in self._alice_knows:
            self._alice_knows.add(coord)
            self.bits_exchanged += 1  # Bob sends b_i to Alice
        if coord not in self._bob_knows:
            self._bob_knows.add(coord)
            self.bits_exchanged += 1  # Alice sends a_i to Bob


@dataclass
class TwoPartyRun:
    """One simulated execution with its communication transcript."""

    queries: int
    bits_exchanged: int
    output: object
    g_value: int
    disj_value: int
    transcript: Optional[Transcript] = None
    instance: Optional[Instance] = None

    @property
    def correct(self) -> bool:
        return self.g_value == self.disj_value


def simulate_two_party(
    algorithm: ProbeAlgorithm,
    a: Sequence[int],
    b: Sequence[int],
    seed: int = 0,
) -> TwoPartyRun:
    """Alice and Bob jointly run ``algorithm`` from the root of E(a, b).

    ``g(E(a, b))`` is read off the root's output: (B, ·) ⇔ the labeling is
    globally compatible ⇔ disj(a, b) = 1 (Proposition 4.9).  The bits
    exchanged upper-bound the communication of the induced protocol, so
    over many (a, b) the query count obeys queries ≥ bits/2.
    """
    instance = disjointness_embedding(a, b)
    referee = TwoPartyReferee(instance)
    root = instance.meta["root"]
    tapes = TapeStore(seed) if algorithm.is_randomized else None
    view = ProbeView(
        referee,
        root,
        # ProbeView binds its visited-set predicate to the context.
        RandomnessContext(tapes, algorithm.randomness, root),
    )
    output = algorithm.run(view)
    g_value = 1 if isinstance(output, tuple) and output[0] == BALANCED else 0
    referee.transcript.meta.update(
        {"algorithm": algorithm.name, "a": list(a), "b": list(b)}
    )
    return TwoPartyRun(
        queries=view.queries,
        bits_exchanged=referee.bits_exchanged,
        output=output,
        g_value=g_value,
        disj_value=instance.meta["disjoint"],
        transcript=referee.transcript,
        instance=instance,
    )


def communication_cost_of_query_plan(run: TwoPartyRun) -> float:
    """Theorem 2.9's accounting: queries ≥ bits / B with B = 2."""
    return run.bits_exchanged / 2.0


# Budgets are exponents (N = 2^budget); cap them so a stray value from
# another adversary's grid (e.g. prop313's n=120) is rejected instead of
# materializing a 2^120-element input.
MAX_LOG_N = 16


def _referee_inputs(log_n: int):
    """The pinned (a, b) pair for budget 2^log_n (deterministic)."""
    import random

    if not 1 <= log_n <= MAX_LOG_N:
        raise ValueError(
            f"prop49 budgets are exponents log2(N) in [1, {MAX_LOG_N}]; "
            f"got {log_n}"
        )
    n = 2**log_n
    rnd = random.Random(log_n)
    a = [rnd.randint(0, 1) for _ in range(n)]
    b = [rnd.randint(0, 1) for _ in range(n)]
    return a, b


@register_adversary(
    "prop49/balanced-tree",
    problem="balanced-tree",
    bound="R-VOL(BalancedTree) = Ω(n) (via R(disj) = Ω(N))",
    victim="balanced-tree/full-gather",
    quick=(3, 4, 5),
    full=(3, 4, 5, 6, 7),
    expected_fit=("n",),
    candidates=("log n", "n^{1/2}", "n"),
    description="Prop 4.9: two-party disjointness referee on E(a, b).",
)
class Prop49Referee(Adversary):
    """Prop 4.9: two-party disjointness referee on E(a, b).

    ``budget`` is log₂ N (the disjointness instance length); the referee
    charges 2 bits per revealed coordinate, so a correct solver exchanges
    2N bits — linear in the n ≈ 4N nodes of the embedding — and Theorem
    2.9's ``queries ≥ bits/2`` accounting must hold on every run.
    """

    name = "prop49/balanced-tree"
    default_victim = "balanced-tree/full-gather"

    def run(self, budget: object) -> AdversaryRun:
        log_n = int(budget)
        a, b = _referee_inputs(log_n)
        two_party = simulate_two_party(self.make_victim(), a, b)
        upheld = (
            two_party.correct
            and two_party.queries >= two_party.bits_exchanged / 2.0
        )
        return AdversaryRun(
            adversary=self.name,
            algorithm=self.victim,
            budget=log_n,
            n=two_party.instance.graph.num_nodes,
            queries=two_party.queries,
            bits=two_party.bits_exchanged,
            defeated=False,  # a referee audits; it never rigs the input
            upheld=upheld,
            instance=two_party.instance,
            transcript=two_party.transcript,
            detail={
                "N": 2**log_n,
                "a": a,
                "b": b,
                "g_value": two_party.g_value,
                "disj_value": two_party.disj_value,
                "output": repr(two_party.output),
            },
        )

    def verify(self, run: AdversaryRun, backend=None) -> bool:
        from repro.exec.backends import get_backend

        instance = run.instance
        if run.transcript.replay(as_oracle(instance, mode="reference")):
            return False
        if run.transcript.replay(as_oracle(instance, mode="compiled")):
            return False
        # The transcript alone must account for the charged bits.
        if (
            bits_from_transcript(run.transcript, instance.meta["coordinate_of"])
            != run.bits
        ):
            return False
        # Re-run from the root on the finished instance through the
        # ordinary backend machinery: output and query count reproduce.
        root = instance.meta["root"]
        result = get_backend(backend).run(
            instance, self.make_victim(), nodes=[root]
        )
        if repr(result.outputs[root]) != run.detail["output"]:
            return False
        return result.profiles[root].queries == run.queries
