"""The interactive-adversary engine: one oracle protocol for every process P.

The paper's lower bounds (Propositions 3.13, 4.9 via Eden-Rosenbaum
disjointness, 5.20) are *interactive games*: an adversary answers an
algorithm's probe queries while (lazily) deciding what the input graph is.
Before this module each adversary hand-rolled its own lazy growth, oracle
interception and bookkeeping; now they share one engine with three pieces:

* :class:`Transcript` — an ordered, serializable record of every oracle
  answer given during the interaction.  A transcript can be **replayed**
  against any :class:`~repro.model.oracle.GraphOracle` over the finished
  instance (``StaticOracle`` or ``CompiledOracle``) and must reproduce
  every answer bitwise — replay is the executable ground truth that the
  interaction was consistent with a single concrete input.
* :class:`InteractiveOracle` — the lazy-growth base class.  Nodes are
  materialized on demand with **degree-commit semantics**: a node's port
  set (hence its degree and label) is fixed the moment the node is
  created, so everything an algorithm is told during the interaction is
  already true of the final instance.  :meth:`InteractiveOracle.finalized`
  enforces **monotone finalize**: completion may only hang new structure
  off dangling committed ports, and the whole transcript is replayed
  against the finished instance before it is handed out.
* :class:`RecordingOracle` — transcript recording over an *existing*
  oracle, for referee-style adversaries (the two-party disjointness
  simulation) whose instance is fixed but whose bookkeeping is driven by
  which answers the algorithm extracted.

Golden-transcript regression tests and the cross-engine conformance suite
live in ``tests/adversary/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graphs.labelings import Instance, Labeling, NodeLabel
from repro.graphs.port_graph import PortGraph
from repro.model.implicit import as_oracle
from repro.model.oracle import GraphOracle, NodeInfo


class AdversaryEngineError(RuntimeError):
    """An adversary violated the engine's protocol (commit/finalize rules)."""


# ----------------------------------------------------------------------
# transcripts
# ----------------------------------------------------------------------
_LABEL_FIELDS = tuple(f.name for f in fields(NodeLabel))


def canonical_label(label: NodeLabel) -> Tuple[Tuple[str, object], ...]:
    """A hashable, order-stable snapshot of a label's non-⊥ fields.

    Fields are sorted by name, so snapshots compare equal no matter
    whether they were recorded live or deserialized from JSON.
    Snapshotting at record time matters: :class:`NodeInfo` holds a live
    reference to the label, so an adversary that mutated a revealed label
    during finalization would otherwise corrupt the evidence it is
    checked against.
    """
    return tuple(
        sorted(
            (name, getattr(label, name))
            for name in _LABEL_FIELDS
            if getattr(label, name) is not None
        )
    )


@dataclass(frozen=True)
class InfoEvent:
    """One ``node_info`` answer: the node's committed degree/label/ports."""

    node: int
    degree: int
    ports: Tuple[int, ...]
    label: Tuple[Tuple[str, object], ...]

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "info",
            "node": self.node,
            "degree": self.degree,
            "ports": list(self.ports),
            "label": {name: value for name, value in self.label},
        }


@dataclass(frozen=True)
class ResolveEvent:
    """One ``resolve`` answer: the endpoint behind ``(node, port)``."""

    node: int
    port: int
    endpoint: Optional[int]

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "resolve",
            "node": self.node,
            "port": self.port,
            "endpoint": self.endpoint,
        }


TranscriptEvent = Union[InfoEvent, ResolveEvent]

TRANSCRIPT_SCHEMA = "repro-adversary-transcript"
TRANSCRIPT_SCHEMA_VERSION = 1


@dataclass
class Transcript:
    """Every oracle answer of one interactive run, in order.

    ``meta`` carries the replay context (adversary name, budget, victim
    algorithm, ...) — anything needed to regenerate the transcript; it is
    serialized but not compared during replay.
    """

    adversary: str
    n: int
    events: List[TranscriptEvent] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    # -- recording ------------------------------------------------------
    def record_info(self, info: NodeInfo) -> None:
        self.events.append(
            InfoEvent(
                node=info.node_id,
                degree=info.degree,
                ports=tuple(info.ports),
                label=canonical_label(info.label),
            )
        )

    def record_resolve(
        self, node: int, port: int, endpoint: Optional[int]
    ) -> None:
        self.events.append(ResolveEvent(node=node, port=port, endpoint=endpoint))

    # -- accounting -----------------------------------------------------
    @property
    def queries(self) -> int:
        """Number of recorded ``resolve`` answers (the model's queries)."""
        return sum(1 for e in self.events if isinstance(e, ResolveEvent))

    def revealed_nodes(self) -> List[int]:
        """Node ids in first-reveal order (info answers + resolved endpoints)."""
        seen: Dict[int, None] = {}
        for event in self.events:
            if isinstance(event, InfoEvent):
                seen.setdefault(event.node, None)
            elif event.endpoint is not None:
                seen.setdefault(event.endpoint, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.events)

    # -- replay ---------------------------------------------------------
    def replay(self, oracle: GraphOracle) -> List[str]:
        """Re-ask every recorded question; return the divergences.

        An empty list certifies that ``oracle`` (typically the finished
        instance's ``StaticOracle`` or ``CompiledOracle``) answers every
        recorded query exactly as the interactive adversary did.
        """
        divergences: List[str] = []
        for index, event in enumerate(self.events):
            if isinstance(event, InfoEvent):
                info = oracle.node_info(event.node)
                got = InfoEvent(
                    node=info.node_id,
                    degree=info.degree,
                    ports=tuple(info.ports),
                    label=canonical_label(info.label),
                )
                if got != event:
                    divergences.append(
                        f"event {index}: info({event.node}) diverged: "
                        f"recorded {event.payload()}, replayed {got.payload()}"
                    )
            else:
                endpoint = oracle.resolve(event.node, event.port)
                if endpoint != event.endpoint:
                    divergences.append(
                        f"event {index}: resolve({event.node}, {event.port}) "
                        f"diverged: recorded {event.endpoint}, "
                        f"replayed {endpoint}"
                    )
        return divergences

    def replay_exact(self, oracle: GraphOracle) -> None:
        """Replay and raise :class:`AdversaryEngineError` on any divergence."""
        divergences = self.replay(oracle)
        if divergences:
            preview = "; ".join(divergences[:3])
            raise AdversaryEngineError(
                f"transcript replay diverged on {len(divergences)} of "
                f"{len(self.events)} events: {preview}"
            )

    # -- serialization --------------------------------------------------
    def payload(self) -> Dict[str, object]:
        return {
            "schema": TRANSCRIPT_SCHEMA,
            "schema_version": TRANSCRIPT_SCHEMA_VERSION,
            "adversary": self.adversary,
            "n": self.n,
            "meta": self.meta,
            "events": [event.payload() for event in self.events],
        }

    def to_json(self) -> str:
        """The canonical byte-stable serialization (golden-file format)."""
        return json.dumps(self.payload(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Transcript":
        if payload.get("schema") != TRANSCRIPT_SCHEMA:
            raise ValueError(
                f"not a {TRANSCRIPT_SCHEMA} payload: {payload.get('schema')!r}"
            )
        events: List[TranscriptEvent] = []
        for entry in payload["events"]:
            if entry["kind"] == "info":
                events.append(
                    InfoEvent(
                        node=entry["node"],
                        degree=entry["degree"],
                        ports=tuple(entry["ports"]),
                        label=tuple(sorted(entry["label"].items())),
                    )
                )
            elif entry["kind"] == "resolve":
                events.append(
                    ResolveEvent(
                        node=entry["node"],
                        port=entry["port"],
                        endpoint=entry["endpoint"],
                    )
                )
            else:
                raise ValueError(f"unknown event kind {entry['kind']!r}")
        return cls(
            adversary=payload["adversary"],
            n=payload["n"],
            events=events,
            meta=dict(payload.get("meta", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "Transcript":
        return cls.from_payload(json.loads(text))


def transcripts_equal(first: Transcript, second: Transcript) -> bool:
    """Event-wise equality between two transcripts."""
    return first.events == second.events


# ----------------------------------------------------------------------
# recording over an existing oracle (referee-style adversaries)
# ----------------------------------------------------------------------
class RecordingOracle:
    """A :class:`GraphOracle` wrapper that records every answer it gives."""

    def __init__(self, inner: GraphOracle, transcript: Transcript) -> None:
        self._inner = inner
        self.transcript = transcript

    @property
    def n(self) -> int:
        return self._inner.n

    def node_info(self, node_id: int) -> NodeInfo:
        info = self._inner.node_info(node_id)
        self.transcript.record_info(info)
        return info

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        endpoint = self._inner.resolve(node_id, port)
        self.transcript.record_resolve(node_id, port, endpoint)
        return endpoint


# ----------------------------------------------------------------------
# lazy-growth adversaries
# ----------------------------------------------------------------------
class InteractiveOracle:
    """Base class for adversaries that grow the instance under the probe.

    Subclasses implement :meth:`materialize` — what hangs behind a
    committed-but-dangling port the first time it is resolved — and their
    own ``finalize``-style method, which closes every dangling committed
    port and then calls :meth:`finalized`.

    The engine enforces the two invariants every proof in the paper leans
    on:

    * **degree commit** — :meth:`create_node` fixes the node's port set
      and label immediately; ``node_info`` answers are derived from that
      commitment only, so no later growth can contradict an answer
      already given;
    * **monotone finalize** — :meth:`finalized` verifies that every
      committed port got connected, validates the port-graph invariants,
      and replays the full transcript against the finished instance's
      :class:`~repro.model.oracle.StaticOracle`; any divergence raises
      :class:`AdversaryEngineError` instead of returning a bogus witness.
    """

    adversary_name = "interactive-adversary"

    def __init__(self, n: int, max_degree: int = 3) -> None:
        self._n = n
        self.graph = PortGraph(max_degree=max_degree)
        self.labeling = Labeling()
        self.committed: Dict[int, Tuple[int, ...]] = {}
        self._next_id = 1
        self._finalized = False
        self.transcript = Transcript(adversary=self.adversary_name, n=n)

    # -- GraphOracle interface ------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def node_info(self, node_id: int) -> NodeInfo:
        self._check_live()
        info = self.committed_info(node_id)
        self.transcript.record_info(info)
        return info

    def resolve(self, node_id: int, port: int) -> Optional[int]:
        self._check_live()
        if port not in self.committed.get(node_id, ()):
            endpoint: Optional[int] = None
        else:
            existing = self.graph.neighbor_at(node_id, port)
            endpoint = (
                existing
                if existing is not None
                else self.materialize(node_id, port)
            )
        self.transcript.record_resolve(node_id, port, endpoint)
        return endpoint

    # -- construction helpers for subclasses ----------------------------
    def committed_info(self, node_id: int) -> NodeInfo:
        """The node's committed answer (no transcript event)."""
        try:
            ports = self.committed[node_id]
        except KeyError:
            raise AdversaryEngineError(
                f"node {node_id} was never created by this adversary"
            ) from None
        return NodeInfo(
            node_id=node_id,
            degree=len(ports),
            label=self.labeling.get(node_id),
            ports=ports,
        )

    def create_node(self, label: NodeLabel, ports: Sequence[int]) -> int:
        """A fresh node committed to exactly ``ports`` (and ``label``)."""
        if self._finalized:
            raise AdversaryEngineError("cannot create nodes after finalize")
        node = self._next_id
        self._next_id += 1
        self.graph.add_node(node)
        self.labeling[node] = label
        self.committed[node] = tuple(ports)
        for port in ports:
            self.graph.reserve_port(node, port)
        return node

    def connect(self, u: int, u_port: int, v: int, v_port: int) -> None:
        """Wire two committed ports together."""
        for node, port in ((u, u_port), (v, v_port)):
            if port not in self.committed.get(node, ()):
                raise AdversaryEngineError(
                    f"port {port} of node {node} was never committed"
                )
        self.graph.add_edge(u, u_port, v, v_port)

    def materialize(self, node_id: int, port: int) -> int:
        """What appears behind a dangling committed port on first resolve."""
        raise NotImplementedError

    # -- finalization ----------------------------------------------------
    @property
    def is_finalized(self) -> bool:
        return self._finalized

    def finalized(
        self, name: str, meta: Optional[Dict[str, object]] = None
    ) -> Instance:
        """Seal the instance: commit checks, validation, transcript replay.

        Call this *after* the subclass closed every dangling committed
        port.  The finished instance is the ground-truth witness: the
        transcript is replayed against its ``StaticOracle`` and any
        divergence (a violated commitment, a non-monotone completion)
        raises instead of returning the instance.
        """
        if self._finalized:
            raise AdversaryEngineError("instance already finalized")
        for node, ports in self.committed.items():
            if self.graph.num_ports(node) != len(ports):
                raise AdversaryEngineError(
                    f"node {node} grew ports beyond its commitment"
                )
            for port in ports:
                if self.graph.neighbor_at(node, port) is None:
                    raise AdversaryEngineError(
                        f"committed port {port} of node {node} left dangling "
                        f"by finalize"
                    )
        self.graph.validate()
        instance = Instance(
            graph=self.graph,
            labeling=self.labeling,
            n=self._n,
            name=name,
            meta=dict(meta or {}),
        )
        self.transcript.replay_exact(as_oracle(instance, mode="reference"))
        self._finalized = True
        return instance

    # -- internal --------------------------------------------------------
    def _check_live(self) -> None:
        if self._finalized:
            raise AdversaryEngineError(
                "the interactive oracle is finalized; query the finished "
                "instance through StaticOracle/CompiledOracle instead"
            )
