"""First-class adversaries: the uniform surface over the three processes.

A registered adversary (see :func:`repro.registry.register_adversary`)
wraps one lower-bound game behind a uniform interface:

* :meth:`Adversary.run` plays the game at one budget-grid point and
  returns an :class:`AdversaryRun` — the measured query/bit counts, the
  verdict, the finished witness instance, and the full
  :class:`~repro.adversary.engine.Transcript`;
* :meth:`Adversary.verify` re-derives the interactive verdict from the
  finished instance alone (replaying the transcript and re-running the
  victim algorithm through the ordinary execution backends, compiled
  fast path included) — the conformance property the test suite and the
  ``repro adversary`` CLI gate on;
* :func:`sweep_adversary` runs a whole budget grid and fits the measured
  cost curve against the entry's expected Ω-class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.engine import Transcript
from repro.graphs.labelings import Instance
from repro.model.probe import ProbeAlgorithm


@dataclass
class AdversaryRun:
    """One play of a lower-bound game at one budget point."""

    adversary: str
    algorithm: str
    budget: object
    n: int  # nodes of the finished witness instance
    queries: int  # interactive oracle queries answered
    defeated: bool
    upheld: bool  # the lower-bound dichotomy held at this point
    bits: Optional[int] = None  # two-party games only
    elapsed: float = 0.0
    instance: Optional[Instance] = None
    transcript: Optional[Transcript] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def point(self) -> Dict[str, object]:
        """The JSON-able artifact row for this run."""
        return {
            "budget": _param_repr(self.budget),
            "n": self.n,
            "queries": self.queries,
            "bits": self.bits,
            "defeated": self.defeated,
            "upheld": self.upheld,
            "elapsed": self.elapsed,
        }


def _param_repr(param: object) -> object:
    return param if isinstance(param, (int, float, str)) else repr(param)


class Adversary:
    """Base class for registered interactive adversaries.

    ``victim`` is the registered name of the deterministic algorithm the
    game is played against by default; constructors accept an override so
    ``repro adversary run --algorithm`` can pit any compatible solver
    against the process.
    """

    name: str = "adversary"
    default_victim: str = ""

    def __init__(self, victim: Optional[str] = None) -> None:
        self.victim = victim or self.default_victim

    def make_victim(self) -> ProbeAlgorithm:
        from repro.registry import ALGORITHMS, load_components

        load_components()
        entry = ALGORITHMS.get(self.victim)
        if entry.randomized:
            raise ValueError(
                f"{self.name} concerns deterministic algorithms; "
                f"{entry.name!r} is randomized"
            )
        return entry.make()

    def run(self, budget: object) -> AdversaryRun:
        raise NotImplementedError

    def verify(self, run: AdversaryRun, backend=None) -> bool:
        """Reproduce the interactive verdict from the finished instance.

        Implementations must (a) replay ``run.transcript`` against the
        finished instance and (b) re-run the victim algorithm on it via
        the given execution ``backend`` (``"reference"`` selects the
        uncompiled engine), returning ``True`` iff every interactive
        observation is reproduced.
        """
        raise NotImplementedError

    def timed_run(self, budget: object) -> AdversaryRun:
        started = time.perf_counter()
        run = self.run(budget)
        run.elapsed = time.perf_counter() - started
        return run


def sweep_adversary(entry, grid: str = "quick", progress=None):
    """Run one registered adversary over a budget grid.

    Returns ``(runs, fit)`` where ``fit`` maps the measured query counts
    (and bit counts, for two-party games) against the finished-instance
    sizes — the Ω-regression the bench artifact and CI gate on.
    """
    from repro.analysis.complexity_fit import fit_growth

    adversary = entry.make()
    runs: List[AdversaryRun] = []
    for budget in entry.params(grid):
        run = adversary.timed_run(budget)
        runs.append(run)
        if progress is not None:
            progress(
                f"  {entry.name} budget={run.point()['budget']}: "
                f"n={run.n} queries={run.queries} "
                f"{'upheld' if run.upheld else 'FAILED'}"
            )
    ns = [run.n for run in runs]
    queries_fit = (
        fit_growth(ns, [run.queries for run in runs], entry.candidates).best
        if len(runs) >= 2
        else None
    )
    bits = [run.bits for run in runs]
    bits_fit = (
        fit_growth(ns, bits, entry.candidates).best
        if len(runs) >= 2 and all(b is not None for b in bits)
        else None
    )
    return runs, {"queries_fit": queries_fit, "bits_fit": bits_fit}


def sweep_records(entries, grid: str = "quick", progress=None):
    """Sweep several registered adversaries; one artifact record each.

    The single code path behind both ``repro adversary sweep`` and the
    bench artifact's ``lower_bounds`` section, so the two surfaces can
    never drift apart.
    """
    records: List[Dict[str, object]] = []
    for entry in entries:
        runs, fit = sweep_adversary(entry, grid, progress=progress)
        records.append(adversary_record(entry, runs, fit))
    return records


def adversary_record(entry, runs, fit) -> Dict[str, object]:
    """The ``lower_bounds`` artifact record for one swept adversary."""
    ok = (
        all(run.upheld for run in runs)
        and fit["queries_fit"] in entry.expected_fit
        and (fit["bits_fit"] is None or fit["bits_fit"] in entry.expected_fit)
    )
    return {
        "adversary": entry.name,
        "problem": entry.problem,
        "algorithm": runs[0].algorithm if runs else entry.victim,
        "bound": entry.bound,
        "expected_fit": list(entry.expected_fit),
        "points": [run.point() for run in runs],
        "queries_fit": fit["queries_fit"],
        "bits_fit": fit["bits_fit"],
        "ok": ok,
        "wall_time": sum(run.elapsed for run in runs),
    }
