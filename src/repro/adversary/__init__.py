"""Interactive lower-bound adversaries (Propositions 3.13, 4.9, 5.20).

The engine (:mod:`repro.adversary.engine`) provides the shared
interactive-oracle protocol — lazy materialization with degree-commit
semantics, monotone finalize, and replayable transcripts; the per-result
modules implement the paper's three processes on top of it and register
them as first-class components (``repro adversary run/sweep``, the
``lower_bounds`` section of the bench artifact).
"""

from repro.adversary.base import Adversary, AdversaryRun, sweep_adversary
from repro.adversary.engine import (
    AdversaryEngineError,
    InfoEvent,
    InteractiveOracle,
    RecordingOracle,
    ResolveEvent,
    Transcript,
    transcripts_equal,
)

__all__ = [
    "Adversary",
    "AdversaryEngineError",
    "AdversaryRun",
    "InfoEvent",
    "InteractiveOracle",
    "RecordingOracle",
    "ResolveEvent",
    "Transcript",
    "sweep_adversary",
    "transcripts_equal",
]
