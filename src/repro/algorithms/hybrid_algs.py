"""Hybrid-THC(k) algorithms (Section 6).

Theorem 6.3's upper bounds:

* :class:`HybridDistanceSolver` — distance O(log n): solve every level-1
  BalancedTree component with the Proposition 4.8 machinery and let every
  node at level ≥ 2 go exempt (lawful because a BalancedTree instance is
  always *solvable*, so χout(RC) ∈ {B, U} at level 2 and X above).
* :class:`HybridWaypointSolver` — randomized volume Θ̃(n^{1/k}): the
  waypoint-gated Algorithm 2, with level-1 components solved by bounded
  full gather (components larger than the volume budget decline
  unanimously, which Definition 6.1 permits).
* :class:`HybridRecursiveSolver` — the deterministic counterpart.
* :class:`HybridFullGather` — volume O(n).
"""

from __future__ import annotations

import functools
import math
from typing import List, Optional

from repro.graphs.labelings import DECLINE, EXEMPT
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.model.views import ProbeTopology
from repro.algorithms.balanced_tree_algs import BalancedTreeDistanceSolver
from repro.algorithms.generic import (
    FullGatherAlgorithm,
    ball_to_instance,
)
from repro.algorithms.hierarchical_algs import (
    RecursiveHTHC,
    WaypointHTHC,
)
from repro.problems.balanced_tree import (
    _is_output_pair,
    reference_solution as balanced_reference,
)
from repro.problems.hybrid_thc import reference_solution as hybrid_reference
from repro.model.views import Ball
from repro.registry import register_algorithm


@register_algorithm(
    "hybrid-thc(2)/distance", problem="hybrid-thc(2)", defaults={"k": 2}
)
class HybridDistanceSolver(ProbeAlgorithm):
    """Distance O(log n): level-1 answers BalancedTree, the rest go X."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.name = f"hybrid-thc({k})/distance"
        self._balanced = BalancedTreeDistanceSolver()

    def run(self, view: ProbeView):
        lvl = view.start_info.label.level
        if lvl is None or lvl >= 2:
            return EXEMPT
        return self._balanced.run(view)


def gather_level_one_component(
    view: ProbeView, start: int, cap: int, max_nodes: int
) -> Optional[Ball]:
    """BFS over the level-1 nodes reachable from ``start``.

    Returns the gathered ball or None if the component exceeds
    ``max_nodes`` (the caller then declines it).  Only explicit-level-1
    nodes are expanded, so the gather never leaks into the THC scaffold.
    """
    ball = Ball(center=start, radius=max_nodes)
    ball.info[start] = view.info(start)
    ball.distance[start] = 0
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for port in view.info(u).ports:
                info = view.query(u, port)
                if info is None:
                    continue
                if info.label.level != 1:
                    continue
                ball.adjacency.setdefault(u, {})[port] = info.node_id
                if info.node_id in ball.distance:
                    continue
                if len(ball.distance) + 1 > max_nodes:
                    return None
                ball.distance[info.node_id] = ball.distance[u] + 1
                ball.info[info.node_id] = info
                nxt.append(info.node_id)
        frontier = nxt
    return ball


class _HybridTHCMixin:
    """Level-1 handling and exemption predicate for Hybrid solvers.

    Mixed into the hierarchical solver classes: level-1 components are
    BalancedTree instances, solved by bounded gather; the level-2
    exemption predicate is "RC answered a (β, p) pair" (Definition 6.1).
    """

    def component_budget(self, view: ProbeView) -> int:
        """Max level-1 component size we solve rather than decline."""
        n = max(2, view.n)
        return max(32, math.ceil(8 * n ** (1.0 / self.k)))

    def _solve_level_one(self, view, topo, v):
        ball = gather_level_one_component(
            view, v, self.k, self.component_budget(view)
        )
        if ball is None:
            return DECLINE
        local = ball_to_instance(ball, view.n)
        return balanced_reference(local)[v]

    def _rc_supports_exemption(self, rc_value, lvl: int) -> bool:
        if lvl == 2:
            # Definition 6.1: level-2 exemption needs χout(RC) ∈ {B, U}.
            return _is_output_pair(rc_value)
        return super()._rc_supports_exemption(rc_value, lvl)


@register_algorithm(
    "hybrid-thc(2)/recursive", problem="hybrid-thc(2)", defaults={"k": 2}
)
class HybridRecursiveSolver(_HybridTHCMixin, RecursiveHTHC):
    """Deterministic Algorithm-2 analogue for Hybrid-THC(k)."""

    def __init__(self, k: int) -> None:
        super().__init__(k)
        self.name = f"hybrid-thc({k})/recursive"

    def run(self, view: ProbeView):
        # Hybrid levels are explicit input labels.
        lvl = view.start_info.label.level
        if lvl is None:
            return EXEMPT
        if lvl > self.k:
            return EXEMPT
        self._memo = {}
        topo = ProbeTopology(view)
        return self._solve(view, topo, view.start, lvl)

    def fallback(self, view: ProbeView):
        lvl = view.start_info.label.level
        return DECLINE if lvl == 1 else EXEMPT


@register_algorithm(
    "hybrid-thc(2)/waypoint",
    problem="hybrid-thc(2)",
    defaults={"k": 2},
    seed=5,
)
class HybridWaypointSolver(_HybridTHCMixin, WaypointHTHC):
    """Prop 5.14's waypoint gating applied to Hybrid-THC(k)."""

    randomness = RandomnessModel.PRIVATE

    def __init__(self, k: int, factor: float = 1.0, c: float = 3.0) -> None:
        super().__init__(k, factor=factor, c=c)
        self.name = f"hybrid-thc({k})/waypoint"

    def run(self, view: ProbeView):
        lvl = view.start_info.label.level
        if lvl is None or lvl > self.k:
            return EXEMPT
        self._memo = {}
        topo = ProbeTopology(view)
        return self._solve(view, topo, view.start, lvl)

    def fallback(self, view: ProbeView):
        lvl = view.start_info.label.level
        return DECLINE if lvl == 1 else EXEMPT


@register_algorithm(
    "hybrid-thc(2)/full-gather", problem="hybrid-thc(2)", defaults={"k": 2}
)
class HybridFullGather(FullGatherAlgorithm):
    """Volume O(n): gather everything and run the global reference."""

    def __init__(self, k: int) -> None:
        super().__init__(
            functools.partial(hybrid_reference, k=k),
            name=f"hybrid-thc({k})/full-gather",
        )
