"""Algorithms for the classic landscape problems (Figures 1–2, §7.3).

* :class:`ColeVishkinColoring` — 3-coloring a cycle in Θ(log* n) distance
  *and* volume (class B of Figure 1; Section 1.2 notes the volume class
  coincides with the distance class in this regime).
* :class:`MISFromColoring` — maximal independent set on a cycle via the
  3-coloring (still Θ(log* n)).
* :class:`TwoColoringGather` — proper 2-coloring of an even cycle: a
  genuinely global problem, Θ(n) distance and volume (class D).
* :class:`RelayProbeSolver` — Example 7.6: O(log n) probes where CONGEST
  needs Ω(n/B) rounds.
* :class:`RelayCongest` — the pipelined CONGEST protocol whose round count
  exhibits the Ω(n/B) bottleneck at the bridge edge.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.model.congest import CongestAlgorithm, Message
from repro.model.oracle import NodeInfo
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.registry import register_algorithm

# Cycle port convention (builders.cycle_graph): 1 = predecessor, 2 = successor.
_PREV, _NEXT = 1, 2


def cv_iterations(id_bits: int) -> int:
    """Iterations of Cole–Vishkin reduction until colors fit in 3 bits.

    One step maps an ℓ-bit color to one of at most 2ℓ values; the fixed
    point is ℓ = 3 (colors 0..5).  The count is Θ(log* of the initial
    bit-length).
    """
    iterations = 0
    bits = max(3, id_bits)
    while bits > 3:
        bits = max(3, (bits - 1).bit_length() + 1)
        iterations += 1
    return iterations


def _cv_step(own: int, successor: int) -> int:
    """One Cole–Vishkin color-reduction step on a directed cycle."""
    diff = own ^ successor
    i = (diff & -diff).bit_length() - 1  # lowest differing bit index
    return 2 * i + ((own >> i) & 1)


@register_algorithm("cycle/cole-vishkin", problem="cycle-3-coloring")
class ColeVishkinColoring(ProbeAlgorithm):
    """Θ(log* n) 3-coloring of a cycle (Cole–Vishkin + shift-down).

    The node gathers the forward chain of IDs it transitively depends on
    (length T + O(1), T = cv_iterations) plus a short backward chain, then
    simulates the synchronous algorithm locally:

    1. colors start as IDs;
    2. T Cole–Vishkin steps against the successor's color — after step t,
       the color of position j depends on IDs j..j+T−t transitively;
    3. three reduction rounds eliminating colors 5, 4, 3: a node with the
       eliminated color picks the least color unused by its two neighbors.

    Both the distance and the volume cost are Θ(log* n) — the class-B
    collapse of Figure 2.
    """

    name = "cycle/cole-vishkin"

    def __init__(self, id_bits: Optional[int] = None) -> None:
        self.id_bits = id_bits

    def run(self, view: ProbeView):
        id_bits = self.id_bits or (max(8, (4 * view.n).bit_length()))
        t_cv = cv_iterations(id_bits)
        back, forward = 4, t_cv + 8
        # Gather the chain: positions -back .. +forward relative to start.
        chain_ids: Dict[int, int] = {0: view.start}
        node = view.start
        for j in range(1, forward + 1):
            info = view.query(node, _NEXT)
            if info is None:  # not a cycle; bail out
                return 0
            chain_ids[j] = info.node_id
            node = info.node_id
            if info.node_id == view.start:
                break  # tiny cycle: we have wrapped around
        node = view.start
        for j in range(1, back + 1):
            info = view.query(node, _PREV)
            if info is None:
                return 0
            chain_ids[-j] = info.node_id
            node = info.node_id

        length = view.n  # exact cycle length (n nodes on a cycle)

        def id_at(pos: int) -> int:
            """ID at relative position pos, using wraparound on tiny cycles."""
            if pos in chain_ids:
                return chain_ids[pos]
            return chain_ids[pos % length]

        # Step 2: T CV iterations.  color[t][j] for j in a shrinking window.
        def color_after(t: int, pos: int) -> int:
            if t == 0:
                return id_at(pos)
            return _cv_step(color_after(t - 1, pos), color_after(t - 1, pos + 1))

        # Step 3: shift-down of colors 5, 4, 3 → {0, 1, 2}.
        def final_color(pos: int, stage: int) -> int:
            if stage == 0:
                return color_after(t_cv, pos)
            c = final_color(pos, stage - 1)
            eliminate = 6 - stage  # stages 1,2,3 eliminate 5,4,3
            if c != eliminate:
                return c
            left = final_color(pos - 1, stage - 1)
            right = final_color(pos + 1, stage - 1)
            return min({0, 1, 2} - {left, right})

        return final_color(0, 3)


@register_algorithm("cycle/mis", problem="mis")
class MISFromColoring(ProbeAlgorithm):
    """MIS on a cycle from the 3-coloring: color classes join greedily.

    A node joins iff its color is 0, or no smaller-colored neighbor is in
    the set already — resolvable from the final colors of positions ±2.
    """

    name = "cycle/mis"

    def __init__(self, id_bits: Optional[int] = None) -> None:
        self._coloring = ColeVishkinColoring(id_bits)

    def run(self, view: ProbeView):
        # Collect final colors of positions -2..2 by simulating the
        # coloring from each of those nodes' perspectives.  We reuse the
        # coloring algorithm on shifted views via fresh walks.
        colors: Dict[int, int] = {}
        node_at: Dict[int, int] = {0: view.start}
        node = view.start
        for j in range(1, 3):
            info = view.query(node, _NEXT)
            node_at[j] = info.node_id
            node = info.node_id
        node = view.start
        for j in range(1, 3):
            info = view.query(node, _PREV)
            node_at[-j] = info.node_id
            node = info.node_id
        for pos in range(-2, 3):
            colors[pos] = _SubwalkColoring(self._coloring, node_at[pos]).run(view)

        # Greedy by color class: v joins iff no smaller-colored neighbor
        # joins.  With colors in {0, 1, 2} the recursion bottoms out within
        # the ±2 window (a strictly decreasing color chain has length ≤ 3).
        def joined(pos: int) -> bool:
            c = colors[pos]
            if c == 0:
                return True
            for nbr in (pos - 1, pos + 1):
                if nbr in colors and colors[nbr] < c and joined(nbr):
                    return False
            return True

        return 1 if joined(0) else 0


class _SubwalkColoring:
    """Run the coloring algorithm 'as if' started at another node.

    The probe model allows this: the outer execution has already visited
    the target node, and further queries are issued through the same view
    (costs accrue to the outer execution, as they should).
    """

    def __init__(self, coloring: ColeVishkinColoring, start: int) -> None:
        self._coloring = coloring
        self._start = start

    def run(self, view: ProbeView):
        proxy = _ShiftedView(view, self._start)
        return self._coloring.run(proxy)


class _ShiftedView:
    """A ProbeView proxy whose ``start`` is a different visited node."""

    def __init__(self, view: ProbeView, start: int) -> None:
        self._view = view
        self._start = start

    @property
    def start(self) -> int:
        return self._start

    @property
    def start_info(self):
        return self._view.info(self._start)

    @property
    def n(self) -> int:
        return self._view.n

    def query(self, node_id: int, port: int):
        return self._view.query(node_id, port)

    def info(self, node_id: int):
        return self._view.info(node_id)

    def random_bit(self, node_id: int, index: int) -> int:
        return self._view.random_bit(node_id, index)


@register_algorithm("cycle/2-coloring", problem="cycle-2-coloring")
class TwoColoringGather(ProbeAlgorithm):
    """Proper 2-coloring of an even cycle: walk the whole cycle (Θ(n)).

    The color is the parity of the node's distance (along successor
    edges) from the minimum-ID node — a global anchor every node agrees
    on.  No o(n)-distance algorithm exists (class D), making this the
    Figure 1/2 "global" specimen.
    """

    name = "cycle/2-coloring"

    def run(self, view: ProbeView):
        ids = [view.start]
        node = view.start
        while True:
            info = view.query(node, _NEXT)
            if info is None:
                return 0
            if info.node_id == view.start:
                break
            ids.append(info.node_id)
            node = info.node_id
        anchor = min(range(len(ids)), key=lambda i: ids[i])
        # distance from anchor to position 0 going forward
        return (len(ids) - anchor) % 2


@register_algorithm("relay/probe", problem="relay")
class RelayProbeSolver(ProbeAlgorithm):
    """Example 7.6 with O(log n) probes: up, across the bridge, down.

    Left-tree leaves compute their heap index from their ID, climb to the
    left root (depth hops on port 1), cross the bridge (port 3), and
    descend the right tree following the index bits.  All other nodes
    output None (the problem only constrains left leaves).
    """

    name = "relay/probe"

    def run(self, view: ProbeView):
        n = view.n
        # n = 2(2^{depth+1} - 1)
        depth = int(math.log2(n / 2 + 1)) - 1
        half = 2 ** (depth + 1) - 1
        me = view.start
        if me > half:  # right tree: no output required
            return None
        if not (2**depth <= me <= 2 ** (depth + 1) - 1):
            return None  # internal left-tree node: no output required
        index = me - 2**depth
        # climb to the left root
        node = me
        for _ in range(depth):
            info = view.query(node, 1)
            node = info.node_id
        # cross the bridge
        info = view.query(node, 3)
        node = info.node_id
        # descend the right tree by index bits (most significant first)
        for level in range(depth):
            bit = (index >> (depth - 1 - level)) & 1
            at_root = level == 0
            port = (1 if bit == 0 else 2) if at_root else (2 if bit == 0 else 3)
            info = view.query(node, port)
            node = info.node_id
        return view.info(node).label.bit


class RelayCongest(CongestAlgorithm):
    """Pipelined CONGEST relay: every bit crosses the single bridge edge.

    Right-tree nodes flood (index, bit) pairs upward; the right root
    pushes them over the bridge; left-tree nodes route them down by index
    range.  Message capacity ⌊B / pair_bits⌋ pairs per edge per round
    makes the bridge the bottleneck: rounds ≈ N·pair_bits/B + O(depth),
    the Ω(n/B) behaviour of Example 7.6.
    """

    name = "relay/congest"

    def __init__(self, depth: int, id_bits: int, bandwidth: int) -> None:
        self.depth = depth
        self.id_bits = id_bits
        self.pair_bits = id_bits + 1
        self.bandwidth = bandwidth

    def init_state(self, info: NodeInfo, n: int) -> dict:
        half = 2 ** (self.depth + 1) - 1
        me = info.node_id
        in_right = me > half
        rel = me - half if in_right else me
        is_leaf = 2**self.depth <= rel <= 2 ** (self.depth + 1) - 1
        is_root = rel == 1
        state = {
            "info": info,
            "n": n,
            "half": half,
            "in_right": in_right,
            "rel": rel,
            "is_leaf": is_leaf,
            "is_root": is_root,
            "queue": [],
            "received": {},
            "deadline": None,
        }
        if in_right and is_leaf:
            index = rel - 2**self.depth
            state["queue"].append((index, info.label.bit))
        return state

    def _route_port(self, state, index: int) -> int:
        """Left tree: which child port leads toward leaf ``index``."""
        rel = state["rel"]
        depth_of_rel = rel.bit_length() - 1
        bit = (index >> (self.depth - 1 - depth_of_rel)) & 1
        if state["is_root"]:
            return 1 if bit == 0 else 2
        return 2 if bit == 0 else 3

    def step(self, state, round_index, inbox):
        info = state["info"]
        for port, msg in inbox.items():
            for index, bit in msg.payload:
                if state["in_right"] or not state["is_leaf"]:
                    state["queue"].append((index, bit))
                else:
                    state["received"][index] = bit
        # A left leaf halts once it has its own bit.
        if not state["in_right"] and state["is_leaf"]:
            index = state["rel"] - 2**self.depth
            if index in state["received"]:
                return {}, state["received"][index]
            return {}, None
        # forward queued pairs, bandwidth-limited per edge
        out: Dict[int, Message] = {}
        if state["queue"]:
            batches: Dict[int, List[Tuple[int, int]]] = {}
            remaining = []
            for index, bit in state["queue"]:
                port = self._out_port(state, index)
                if port is None:
                    continue
                batches.setdefault(port, [])
                batches[port].append((index, bit))
            state["queue"] = []
            for port, pairs in batches.items():
                take = max(1, self._pairs_per_message())
                send_now, defer = pairs[:take], pairs[take:]
                out[port] = Message(
                    payload=tuple(send_now),
                    bits=self.pair_bits * len(send_now),
                )
                state["queue"].extend(defer)
        # Internal nodes never "output"; they halt via the round cap.  To
        # let the simulator terminate, internal nodes output once idle for
        # a long stretch — handled by the runner's max_rounds in benches.
        return out, None

    def _pairs_per_message(self) -> int:
        return max(1, self.bandwidth // self.pair_bits)

    def _out_port(self, state, index: int) -> Optional[int]:
        info = state["info"]
        if state["in_right"]:
            # send upward: toward the right root, then over the bridge
            if state["is_root"]:
                return 3  # bridge
            return 1  # parent
        # left tree: route downward by index
        if state["is_leaf"]:
            return None
        return self._route_port(state, index)
