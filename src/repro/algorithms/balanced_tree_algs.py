"""BalancedTree algorithms (Section 4 and Observation 7.4).

* :class:`BalancedTreeDistanceSolver` — Proposition 4.8: deterministic
  distance O(log n).  The node explores its G_T descendants down to the
  nearest-leaf depth d; by Lemma 4.6 an unbalanced subtree exposes an
  incompatible witness within that depth, and a fully compatible
  exploration certifies the subtree is a complete (balanced) tree.
* :class:`BalancedTreeFullGather` — volume O(n) (tight by Prop 4.9: even
  randomized algorithms need Ω(n) queries, via disjointness).
* :class:`BalancedTreeCongestFlood` — Observation 7.4: O(log n) rounds of
  CONGEST with O(log n)-bit messages, by flooding defect notices *upward*
  through G_T.  Together with Prop 4.9 this realizes the ∆^{Θ(T)} gap
  between CONGEST time and volume.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.graphs.labelings import BALANCED, UNBALANCED
from repro.graphs.tree_structure import (
    is_consistent,
    is_leaf,
    left_child_node,
    right_child_node,
)
from repro.model.congest import CongestAlgorithm, Message
from repro.model.oracle import NodeInfo
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.views import ProbeTopology
from repro.algorithms.generic import FullGatherAlgorithm
from repro.problems.balanced_tree import is_compatible, reference_solution
from repro.registry import register_algorithm


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


@register_algorithm("balanced-tree/distance", problem="balanced-tree")
class BalancedTreeDistanceSolver(ProbeAlgorithm):
    """Proposition 4.8: deterministic distance O(log n).

    Output rules (matching Definition 4.3 and Lemma 4.7):

    * inconsistent → (B, ⊥) (unconstrained; the paper's choice);
    * incompatible → (U, ⊥);
    * compatible leaf → (B, P(v));
    * compatible internal → explore descendants to the nearest-leaf depth
      d; if any explored node is incompatible, output (U, port toward the
      nearest/leftmost one), else (B, P(v)).

    Lemma 4.6 makes the depth-d horizon sound: if the subtree is not a
    complete tree of depth d, an incompatible node exists at depth ≤ d;
    conversely a fully compatible exploration to depth d implies the
    subtree *is* complete (the lateral-connectivity claim), so nothing is
    hidden deeper.
    """

    name = "balanced-tree/distance"

    def run(self, view: ProbeView):
        topo = ProbeTopology(view)
        start = view.start
        if not is_consistent(topo, start):
            return (BALANCED, None)
        if not is_compatible(topo, start):
            return (UNBALANCED, None)
        label = view.start_info.label
        if is_leaf(topo, start):
            return (BALANCED, label.parent)

        # Compatible internal: BFS down LC/RC edges layer by layer, in
        # lexicographic order, until the first layer containing a leaf;
        # check compatibility of everything explored (including that
        # layer).  Cap at log n + 2 layers (Lemma 3.8 guarantees a leaf).
        limit = _log2_ceil(view.n) + 2
        frontier: List[Tuple[int, Optional[int]]] = [(start, None)]
        # (node, first-hop port from start)
        leaf_layer_reached = False
        for _depth in range(limit + 1):
            next_frontier: List[Tuple[int, Optional[int]]] = []
            layer_has_leaf = False
            for u, first_port in frontier:
                if u != start and not is_compatible(topo, u):
                    return (UNBALANCED, first_port)
                if is_leaf(topo, u):
                    layer_has_leaf = True
                    continue
                u_label = view.info(u).label
                for port_attr, child in (
                    ("left_child", left_child_node(topo, u)),
                    ("right_child", right_child_node(topo, u)),
                ):
                    if child is None:
                        continue
                    hop = (
                        getattr(u_label, port_attr)
                        if u == start
                        else first_port
                    )
                    next_frontier.append((child, hop))
            if layer_has_leaf:
                leaf_layer_reached = True
                # Still must check the remainder of this layer's nodes'
                # compatibility — done above as the layer was scanned.
                break
            if not next_frontier:
                break
            frontier = next_frontier
        if not leaf_layer_reached and frontier:
            # No leaf within the horizon: malformed (cyclic) region.  Fall
            # back to full exploration to stay correct.
            from repro.algorithms.generic import ball_to_instance, gather_component

            ball = gather_component(view)
            local = ball_to_instance(ball, view.n)
            return reference_solution(local)[start]
        return (BALANCED, label.parent)


@register_algorithm("balanced-tree/full-gather", problem="balanced-tree")
class BalancedTreeFullGather(FullGatherAlgorithm):
    """Volume O(n) (optimal up to constants by Proposition 4.9)."""

    def __init__(self) -> None:
        super().__init__(reference_solution, name="balanced-tree/full-gather")


# ----------------------------------------------------------------------
# Observation 7.4: BalancedTree in O(log n) CONGEST rounds
# ----------------------------------------------------------------------
class BalancedTreeCongestFlood(CongestAlgorithm):
    """Flood defects up G_T; decide after ~log n rounds.

    Round plan (Observation 7.4's sketch, made concrete):

    1. send own label to all neighbors;
    2. send one's port→neighbor-ID map (O(Δ log n) bits);
    3. compute ID-verified internality (children's parent ports must lead
       back) and broadcast it;
    4. classify (internal / leaf / inconsistent), evaluate Definition 4.2
       compatibility from the collected two-hop information, and start
    5..4+⌈log n⌉+1: defect flooding — a node that is incompatible, or has
       received a defect notice from a G_T child, notifies its G_T parent.

    At the end: incompatible → (U, ⊥); leaves → (B, P(v)); internal nodes
    that heard a defect from below → (U, port of a complaining child);
    otherwise (B, P(v)).  Message sizes are O(Δ log n) = O(log n) bits for
    constant Δ.
    """

    name = "balanced-tree/congest-flood"

    def __init__(self, id_bits: int) -> None:
        self.id_bits = id_bits

    # -- helpers over the collected 2-hop information -------------------
    def init_state(self, info: NodeInfo, n: int) -> dict:
        return {
            "info": info,
            "n": n,
            "rounds_of_flooding": _log2_ceil(n) + 2,
            "labels": {},  # neighbor port -> (id, label)
            "neighbor_ids": {},  # neighbor port -> {their port: id}
            "neighbor_internal": {},  # neighbor port -> bool
            "defect_ports": set(),  # child ports that complained
        }

    def step(self, state, round_index, inbox):
        info: NodeInfo = state["info"]
        label = info.label
        label_bits = 8 * 8  # 8 small port fields, generously 8 bits each
        if round_index == 1:
            message = Message(
                payload=("label", info.node_id, label),
                bits=label_bits + self.id_bits,
            )
            return {port: message for port in info.ports}, None
        if round_index == 2:
            for port, msg in inbox.items():
                _, node_id, their_label = msg.payload
                state["labels"][port] = (node_id, their_label)
            id_map = {
                port: state["labels"][port][0] for port in state["labels"]
            }
            message = Message(
                payload=("ids", id_map),
                bits=self.id_bits * max(1, len(id_map)) + 8,
            )
            return {port: message for port in state["labels"]}, None
        if round_index == 3:
            for port, msg in inbox.items():
                _, id_map = msg.payload
                state["neighbor_ids"][port] = id_map
            state["internal"] = self._is_internal(state)
            message = Message(
                payload=("status", state["internal"]), bits=2
            )
            return {port: message for port in state["labels"]}, None
        if round_index == 4:
            for port, msg in inbox.items():
                _, internal = msg.payload
                state["neighbor_internal"][port] = internal
            # Broadcast the 2-hop status map so neighbors can classify our
            # classification (a leaf must check its lateral neighbors are
            # leaves, which needs *their* parents' internality).
            status_map = dict(state["neighbor_internal"])
            message = Message(
                payload=("status2", state["internal"], status_map),
                bits=2 * max(1, len(status_map)) + 4,
            )
            return {port: message for port in state["labels"]}, None
        if round_index == 5:
            for port, msg in inbox.items():
                _, internal, status_map = msg.payload
                state["neighbor_status_maps"] = state.get(
                    "neighbor_status_maps", {}
                )
                state["neighbor_status_maps"][port] = status_map
            state["leaf"] = (
                not state["internal"]
                and label.parent is not None
                and state["neighbor_internal"].get(label.parent) is True
            )
            state["consistent"] = state["internal"] or state["leaf"]
            state["compatible"] = (
                self._is_compatible(state) if state["consistent"] else None
            )
            return self._flood_step(state, inbox={})
        if round_index < 5 + state["rounds_of_flooding"]:
            return self._flood_step(state, inbox)
        # final round: decide
        for port, msg in inbox.items():
            if msg.payload == "defect":
                state["defect_ports"].add(port)
        return {}, self._decide(state)

    # -- internal ---------------------------------------------------------
    def _resolved(self, state, port) -> Optional[int]:
        entry = state["labels"].get(port)
        return None if entry is None else entry[0]

    def _label_of(self, state, port):
        entry = state["labels"].get(port)
        return None if entry is None else entry[1]

    def _is_internal(self, state) -> bool:
        """Definition 3.3 internality, ID-verified via neighbor port maps."""
        label = state["info"].label
        me = state["info"].node_id
        if label.left_child is None or label.right_child is None:
            return False
        if label.left_child == label.right_child:
            return False
        if label.parent in (label.left_child, label.right_child):
            return False
        for port in (label.left_child, label.right_child):
            their = self._label_of(state, port)
            if their is None or their.parent is None:
                return False
            their_ids = state["neighbor_ids"].get(port, {})
            if their_ids.get(their.parent) != me:
                return False
        return True

    def _is_compatible(self, state) -> bool:
        """Definition 4.2 over the collected two-hop information."""
        label = state["info"].label
        internal = state["internal"]
        me = state["info"].node_id

        def nbr_internal(port) -> Optional[bool]:
            return state["neighbor_internal"].get(port)

        def their_ids(port) -> dict:
            return state["neighbor_ids"].get(port, {})

        def their_label(port):
            return self._label_of(state, port)

        for side, port in (("L", label.left_neighbor), ("R", label.right_neighbor)):
            if port is None:
                continue
            tl = their_label(port)
            if tl is None:
                return False
            # type-preserving
            if internal and not nbr_internal(port):
                return False
            if state["leaf"] and not self._nbr_is_leaf(state, port):
                return False
            # agreement: their opposite lateral pointer names us
            opposite = tl.right_neighbor if side == "L" else tl.left_neighbor
            if opposite is None or their_ids(port).get(opposite) != me:
                return False
        if internal:
            lc, rc = label.left_child, label.right_child
            lcl, rcl = their_label(lc), their_label(rc)
            lc_id = self._resolved(state, lc)
            rc_id = self._resolved(state, rc)
            # siblings
            if (
                lcl.right_neighbor is None
                or their_ids(lc).get(lcl.right_neighbor) != rc_id
            ):
                return False
            if (
                rcl.left_neighbor is None
                or their_ids(rc).get(rcl.left_neighbor) != lc_id
            ):
                return False
            # persistence: RN(RC(v)) = LC(RN(v)) and mirror
            rn, ln = label.right_neighbor, label.left_neighbor
            if rn is not None:
                rnl = their_label(rn)
                lc_of_rn = (
                    their_ids(rn).get(rnl.left_child) if rnl.left_child else None
                )
                rn_of_rc = (
                    their_ids(rc).get(rcl.right_neighbor)
                    if rcl.right_neighbor
                    else None
                )
                if rn_of_rc != lc_of_rn or lc_of_rn is None:
                    return False
            if ln is not None:
                lnl = their_label(ln)
                rc_of_ln = (
                    their_ids(ln).get(lnl.right_child) if lnl.right_child else None
                )
                ln_of_lc = (
                    their_ids(lc).get(lcl.left_neighbor)
                    if lcl.left_neighbor
                    else None
                )
                if ln_of_lc != rc_of_ln or rc_of_ln is None:
                    return False
        return True

    def _nbr_is_leaf(self, state, port) -> bool:
        """Is the node behind ``port`` a leaf (Def 3.3)?  Uses 2-hop data."""
        if state["neighbor_internal"].get(port) is not False:
            return False
        their = self._label_of(state, port)
        if their is None or their.parent is None:
            return False
        status_map = state.get("neighbor_status_maps", {}).get(port, {})
        return status_map.get(their.parent) is True

    def _flood_step(self, state, inbox):
        label = state["info"].label
        for port, msg in inbox.items():
            if msg.payload == "defect":
                state["defect_ports"].add(port)
        should_complain = False
        if state["consistent"] and state["compatible"] is False:
            should_complain = True
        child_ports = {label.left_child, label.right_child}
        if state["defect_ports"] & child_ports:
            should_complain = True
        out = {}
        if (
            should_complain
            and label.parent is not None
            and not state.get("complained", False)
            and self._label_of(state, label.parent) is not None
        ):
            out[label.parent] = Message(payload="defect", bits=2)
            state["complained"] = True
        return out, None

    def _decide(self, state):
        label = state["info"].label
        if not state["consistent"]:
            return (BALANCED, None)
        if state["compatible"] is False:
            return (UNBALANCED, None)
        if state["leaf"]:
            return (BALANCED, label.parent)
        complaining = sorted(
            state["defect_ports"] & {label.left_child, label.right_child}
        )
        if complaining:
            return (UNBALANCED, complaining[0])
        return (BALANCED, label.parent)
