"""Generic algorithm building blocks shared by all problems.

The most important one is :class:`FullGatherAlgorithm`: the trivial
"volume O(n)" upper bound of Section 1.2 — explore the whole connected
component, reconstruct it as a local instance, run a global reference
solver, and output one's own part.  Every problem's D-VOL = O(n) row in
Table 1 is realized this way.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.graphs.labelings import Instance, Labeling
from repro.graphs.port_graph import PortGraph
from repro.model.batched import gather_kernel
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.views import Ball, gather_ball


def gather_component(view: ProbeView) -> Ball:
    """Explore the start node's entire connected component."""
    # Radius n always exhausts a component of at most n nodes.
    return gather_ball(view, max(1, view.n))


def ball_to_instance(ball: Ball, n: int, name: str = "gathered") -> Instance:
    """Reconstruct a gathered ball as a standalone :class:`Instance`.

    The reconstruction preserves node IDs, port numbers and labels, so any
    instance-level solver (e.g. the reference solutions) runs on it
    unchanged.  Ports leading outside the ball stay dangling, which is the
    correct local view: the algorithm genuinely does not know what is
    there.
    """
    max_port = 1
    for node, ports in ball.adjacency.items():
        if ports:
            max_port = max(max_port, max(ports))
    for info in ball.info.values():
        if info.ports:
            max_port = max(max_port, max(info.ports))
    graph = PortGraph(max_degree=max(max_port, 1))
    labeling = Labeling()
    for node, info in ball.info.items():
        graph.add_node(node)
        labeling[node] = info.label.copy()
        for port in info.ports:
            graph.reserve_port(node, port)
    seen: Set[frozenset] = set()
    for node, ports in ball.adjacency.items():
        for port, nbr in ports.items():
            if nbr not in ball.info:
                continue
            key = frozenset((node, nbr))
            if key in seen:
                continue
            seen.add(key)
            back = ball.adjacency.get(nbr, {})
            back_port = next(
                (p for p, target in back.items() if target == node), None
            )
            if back_port is None:
                # The reverse port was never probed; recover it from the
                # graph's symmetric structure by probing is not possible
                # here, so skip (cannot happen after a full gather).
                continue
            graph.add_edge(node, port, nbr, back_port)
    return Instance(graph=graph, labeling=labeling, n=n, name=name)


class FullGatherAlgorithm(ProbeAlgorithm):
    """Gather the whole component; solve globally; answer for oneself.

    ``reference`` maps a reconstructed :class:`Instance` to a full output
    dict; the algorithm returns the start node's entry.  Volume is the
    component size — the generic O(n) bound every LCL admits.
    """

    def __init__(self, reference: Callable[[Instance], Dict[int, object]],
                 name: str = "full-gather") -> None:
        self._reference = reference
        self.name = name

    def run(self, view: ProbeView):
        ball = gather_component(view)
        local = ball_to_instance(ball, view.n)
        outputs = self._reference(local)
        return outputs[view.start]

    def run_node_batch(self, oracle, nodes):
        """Whole-run batch over the flat-array CSR kernel.

        The kernel's :meth:`~repro.model.batched.CsrGatherKernel.ball`
        replicates the scalar gather bit-for-bit (content *and*
        insertion orders), so the reconstructed local instance — and
        therefore the reference solve — is identical to the scalar
        path's; only the per-query engine bookkeeping is skipped.
        """
        kernel = gather_kernel(oracle)
        if kernel is None:
            return None
        radius = max(1, oracle.n)
        triples = []
        for node in nodes:
            ball, profile = kernel.ball(node, radius)
            local = ball_to_instance(ball, oracle.n)
            outputs = self._reference(local)
            triples.append((node, outputs[node], profile))
        return triples
