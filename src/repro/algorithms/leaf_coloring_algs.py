"""LeafColoring algorithms (Section 3).

Three upper bounds from Theorem 3.6, plus the secret-randomness variant
discussed in Section 7.4:

* :class:`LeafColoringDistanceSolver` — Proposition 3.9's deterministic
  O(log n)-distance algorithm (nearest leftmost descendant leaf).
* :class:`RWtoLeaf` — Algorithm 1: the randomized O(log n)-volume downward
  random walk steered by each visited node's *private* bit, with the
  revisit-flip rule for the (unique) G_T cycle and the Remark 3.11
  truncation.
* :class:`LeafColoringFullGather` — the trivial O(n)-volume deterministic
  solver (tight by Proposition 3.13).
* :class:`SecretRWtoLeaf` — the same walk steered only by the *initiator's*
  tape.  Walks from different nodes no longer merge, so it only solves the
  promise variant where all leaves share a color (Section 7.4's example of
  secret randomness helping).
"""

from __future__ import annotations

import math

from repro.graphs.tree_structure import (
    is_internal,
    is_leaf,
    left_child_node,
    right_child_node,
)
from repro.model.probe import ProbeAlgorithm, ProbeView
from repro.model.randomness import RandomnessModel
from repro.model.views import ProbeTopology
from repro.algorithms.generic import FullGatherAlgorithm
from repro.problems.leaf_coloring import reference_solution
from repro.registry import register_algorithm


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


@register_algorithm("leaf-coloring/distance", problem="leaf-coloring")
class LeafColoringDistanceSolver(ProbeAlgorithm):
    """Proposition 3.9: deterministic distance O(log n).

    A non-internal node echoes its input color.  An internal node explores
    its G_T descendants breadth-first to the nearest leaf (at depth
    d ≤ log n by Lemma 3.8) and outputs that leaf's input color, breaking
    ties toward the lexicographically least LC/RC sequence.  The suffix
    property of that tie-break makes parent and child choose leaves on a
    common path, which is exactly the induction in the proposition's proof.
    """

    name = "leaf-coloring/distance"

    def run(self, view: ProbeView):
        topo = ProbeTopology(view)
        start = view.start
        if not is_internal(topo, start):
            return view.start_info.label.color
        limit = _log2_ceil(view.n) + 1
        # Breadth-first by layers; expansion order encodes LC < RC.
        frontier = [start]
        seen = {start}
        for _ in range(limit):
            next_frontier = []
            for u in frontier:
                for child in (
                    left_child_node(topo, u),
                    right_child_node(topo, u),
                ):
                    if child is None or child in seen:
                        continue
                    seen.add(child)
                    if is_leaf(topo, child):
                        return view.info(child).label.color
                    if is_internal(topo, child):
                        next_frontier.append(child)
            if not next_frontier:
                break
            frontier = next_frontier
        # No leaf within the limit (cannot happen on well-formed inputs,
        # Lemma 3.8); echo the input color as a safe fallback.
        return view.start_info.label.color


@register_algorithm("leaf-coloring/rw-to-leaf", problem="leaf-coloring", seed=7)
class RWtoLeaf(ProbeAlgorithm):
    """Algorithm 1: randomized volume O(log n) with high probability.

    The walk starts at the initiating node and repeatedly steps to the
    left or right child according to bit ``r_v(0)`` of the *current* node
    ``v`` — so every walk passing through ``v`` takes the same turn and
    all walks merge toward a common leaf (the key to validity).  If the
    walk returns to its starting node (possible only on the unique cycle
    of the component, Observation 3.7), the bit is flipped, which steers
    the walk off the cycle.  The step count is capped at
    ``cap_factor · log n`` (Remark 3.11); the proof of Proposition 3.10
    shows 16 log n steps suffice with probability 1 − O(1/n³) per node.
    """

    name = "leaf-coloring/rw-to-leaf"
    randomness = RandomnessModel.PRIVATE

    def __init__(self, cap_factor: int = 32) -> None:
        self.cap_factor = cap_factor

    def _bit(self, view: ProbeView, node: int) -> int:
        return view.random_bit(node, 0)

    def run(self, view: ProbeView):
        topo = ProbeTopology(view)
        start = view.start
        if not is_internal(topo, start):
            return view.start_info.label.color
        max_steps = self.cap_factor * _log2_ceil(view.n) + 8
        current = start
        for step in range(max_steps):
            bit = self._bit(view, current)
            if current == start and step > 0:
                # Line 4: the walk revisited its origin; take the other
                # child to leave the cycle.
                bit = 1 - bit
            nxt = (
                left_child_node(topo, current)
                if bit == 0
                else right_child_node(topo, current)
            )
            if nxt is None:
                # Current was internal, so both children exist; ``None``
                # can only mean a malformed instance — echo input.
                return view.info(current).label.color
            if not is_internal(topo, nxt):
                # Leaf or inconsistent: RWtoLeaf returns its input color.
                return view.info(nxt).label.color
            current = nxt
        return self.fallback(view)

    def fallback(self, view: ProbeView):
        return view.start_info.label.color


@register_algorithm(
    "leaf-coloring/secret-rw",
    problem="leaf-coloring",
    seed=7,
    families=("leaf-coloring-hard",),
)
class SecretRWtoLeaf(RWtoLeaf):
    """RWtoLeaf steered by the initiator's own tape only (Section 7.4).

    Uses bit ``r_{v0}(step)`` instead of ``r_v(0)``: legal under secret
    randomness, but walks from different nodes no longer coordinate, so
    internal nodes may reach *different* leaves.  On promise instances
    (all leaves share χ0) that is still correct; on general instances it
    is not — the gap the paper highlights.
    """

    name = "leaf-coloring/secret-rw"
    randomness = RandomnessModel.SECRET

    def run(self, view: ProbeView):
        self._step_counter = 0
        return super().run(view)

    def _bit(self, view: ProbeView, node: int) -> int:
        bit = view.random_bit(view.start, self._step_counter)
        self._step_counter += 1
        return bit


@register_algorithm("leaf-coloring/full-gather", problem="leaf-coloring")
class LeafColoringFullGather(FullGatherAlgorithm):
    """Deterministic volume O(n): gather everything, solve globally."""

    def __init__(self) -> None:
        super().__init__(reference_solution, name="leaf-coloring/full-gather")
